"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that the package can also be installed in fully offline environments
where pip falls back to the legacy (non-PEP-517) code path.
"""

from setuptools import setup

setup()
