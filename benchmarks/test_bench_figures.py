"""Benchmarks regenerating Figures 7, 12, 13, 14 and 15 of the paper.

Each benchmark regenerates the figure's data series at a laptop budget and
asserts the qualitative shape the paper reports:

* Figure 7  — clockwise and anti-clockwise orders bias logical X vs Z errors
  in opposite directions; Google's order beats the trivial order;
* Figure 12 — AlphaSyndrome is competitive with Google's schedule and ahead
  of the trivial order on the rotated surface code;
* Figure 13 — AlphaSyndrome is not worse than the IBM-style monomial order
  on a bivariate bicycle code;
* Figure 14 — the advantage over lowest-depth persists as the physical error
  rate is scaled down;
* Figure 15 — data series exist for both AlphaSyndrome and Google under a
  non-uniform noise model.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_RESULTS, run_once
from repro.experiments import (
    render_table,
    run_figure7,
    run_figure12,
    run_figure13,
    run_figure14,
    run_figure15,
    write_results,
)


class TestFigure7:
    def test_order_bias(self, benchmark, bench_budget):
        rows = run_once(benchmark, run_figure7, bench_budget)
        write_results("figure7", rows, output_dir=BENCH_RESULTS)
        print()
        print(render_table(rows))
        by_schedule = {row["schedule"]: row for row in rows}
        google = by_schedule["google"]
        trivial = by_schedule["trivial"]
        assert google["overall"] <= trivial["overall"]
        clockwise = by_schedule["clockwise"]
        anticlockwise = by_schedule["anticlockwise"]
        # Opposite bias directions (the defining observation of Figure 7).
        clockwise_bias = clockwise["err_z"] - clockwise["err_x"]
        anticlockwise_bias = anticlockwise["err_z"] - anticlockwise["err_x"]
        assert clockwise_bias >= anticlockwise_bias


class TestFigure12:
    def test_surface_code_comparison(self, benchmark, bench_budget):
        rows = run_once(benchmark, run_figure12, bench_budget, codes=["rotated_surface_d3"])
        write_results("figure12", rows, output_dir=BENCH_RESULTS)
        print()
        print(render_table(rows))
        by_schedule = {row["schedule"]: row for row in rows}
        assert by_schedule["google"]["overall"] <= by_schedule["trivial"]["overall"]
        # AlphaSyndrome should stay within striking distance of Google even
        # at this tiny search budget (paper: it matches Google).
        assert by_schedule["alphasyndrome"]["overall"] <= 3 * by_schedule["trivial"]["overall"] + 0.05


class TestFigure13:
    def test_bb_code_comparison(self, benchmark, quick_budget):
        rows = run_once(benchmark, run_figure13, quick_budget, code_name="bb_18")
        write_results("figure13", rows, output_dir=BENCH_RESULTS)
        print()
        print(render_table(rows))
        assert {row["schedule"] for row in rows} == {"alphasyndrome", "ibm"}
        for row in rows:
            assert 0.0 <= row["overall"] <= 1.0


class TestFigure14:
    def test_error_rate_scaling(self, benchmark, quick_budget):
        rows = run_once(
            benchmark,
            run_figure14,
            quick_budget,
            codes=[("hexagonal_color_d3", "unionfind")],
            error_rates=[1e-2, 1e-3],
        )
        write_results("figure14", rows, output_dir=BENCH_RESULTS)
        print()
        print(render_table(rows))
        by_rate = {row["physical_error"]: row for row in rows}
        # Logical error rates fall as the physical error rate falls, for both
        # the synthesised and the baseline schedules.
        assert by_rate[1e-3]["alpha_overall"] <= by_rate[1e-2]["alpha_overall"]
        assert by_rate[1e-3]["lowest_overall"] <= by_rate[1e-2]["lowest_overall"]


class TestFigure15:
    def test_non_uniform_noise(self, benchmark, bench_budget):
        rows = run_once(benchmark, run_figure15, bench_budget, codes=["rotated_surface_d3"])
        write_results("figure15", rows, output_dir=BENCH_RESULTS)
        print()
        print(render_table(rows))
        by_schedule = {row["schedule"]: row for row in rows}
        assert set(by_schedule) == {"alphasyndrome", "google"}
        for row in rows:
            assert 0.0 <= row["overall"] <= 1.0
