"""Micro-benchmarks of the substrate components and design-choice ablations.

These benchmarks time the individual stages of the pipeline (DEM extraction,
sampling, each decoder) and exercise the design choices called out in
DESIGN.md for ablation: MCTS subtree reuse on/off, evaluation objective, and
rollout shot budget.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.api import codes, decoders
from repro.circuits import build_memory_experiment
from repro.core import MCTSConfig, PartitionMCTS, ScheduleEvaluator
from repro.noise import brisbane_noise
from repro.scheduling import checks_of_code, google_surface_schedule, lowest_depth_schedule
from repro.sim import build_detector_error_model, sample_detector_error_model
from repro.sim.frames import FrameSampler, TableauSampler


@pytest.fixture(scope="module")
def surface_circuit():
    code = codes.build("surface:d=3")
    experiment = build_memory_experiment(
        code, google_surface_schedule(code), brisbane_noise(), basis="Z"
    )
    return experiment.circuit


@pytest.fixture(scope="module")
def surface_dem(surface_circuit):
    return build_detector_error_model(surface_circuit)


@pytest.fixture(scope="module")
def surface_d5_dem():
    """d=5 surface code with d noisy rounds — the standard memory-experiment
    scale the paper's evaluation loop pays for on every MCTS rollout."""
    code = codes.build("surface:d=5")
    experiment = build_memory_experiment(
        code, lowest_depth_schedule(code), brisbane_noise(), basis="Z", noisy_rounds=5
    )
    return build_detector_error_model(experiment.circuit)


class TestComponentThroughput:
    def test_dem_extraction_surface_d3(self, benchmark):
        code = codes.build("surface:d=3")
        experiment = build_memory_experiment(
            code, google_surface_schedule(code), brisbane_noise(), basis="Z"
        )
        dem = benchmark(build_detector_error_model, experiment.circuit)
        assert dem.num_mechanisms > 0

    def test_dem_extraction_color_d5(self, benchmark):
        code = codes.build("color:d=5")
        experiment = build_memory_experiment(
            code, lowest_depth_schedule(code), brisbane_noise(), basis="Z"
        )
        dem = benchmark.pedantic(
            build_detector_error_model, args=(experiment.circuit,), rounds=1, iterations=1
        )
        assert dem.num_detectors == 2 * code.num_stabilizers

    def test_sampler_throughput(self, benchmark, surface_dem):
        batch = benchmark(sample_detector_error_model, surface_dem, 2000, seed=0)
        assert batch.num_shots == 2000

    def test_sampler_packed_throughput_d5(self, benchmark, surface_d5_dem):
        batch = benchmark(
            sample_detector_error_model, surface_d5_dem, 2048, seed=0, backend="packed"
        )
        assert batch.num_shots == 2048

    def test_sampler_packed_vs_dense_speedup_d5(self, surface_d5_dem):
        """Acceptance: the bit-packed sampler is >= 5x the dense int64 path
        at a d=5-scale DEM while remaining bit-identical for a fixed stream.

        Timed with a best-of-N ``perf_counter`` loop (not the ``benchmark``
        fixture) so the check also executes under ``--benchmark-disable``
        quick mode in CI.  The full >=5x gate only arms when
        ``REPRO_BENCH_ASSERT_SPEEDUP`` is set (the dedicated bench-quick CI
        job); in the ordinary test matrix, where a noisy shared runner could
        compress a wall-clock ratio, it relaxes to "packed is faster".
        Locally the measured ratio is ~15x.
        """
        shots = 2048

        dense = sample_detector_error_model(surface_d5_dem, shots, seed=11, backend="dense")
        packed = sample_detector_error_model(surface_d5_dem, shots, seed=11, backend="packed")
        assert np.array_equal(dense.faults, packed.faults)
        assert np.array_equal(dense.detectors, packed.detectors)
        assert np.array_equal(dense.observables, packed.observables)

        def best_of(func, repeats=9):
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                func()
                times.append(time.perf_counter() - start)
            return min(times)

        dense_time = best_of(
            lambda: sample_detector_error_model(surface_d5_dem, shots, seed=11, backend="dense")
        )
        packed_time = best_of(
            lambda: sample_detector_error_model(surface_d5_dem, shots, seed=11, backend="packed")
        )
        speedup = dense_time / packed_time
        print(f"\nsampler d=5: dense {dense_time * 1e3:.1f}ms "
              f"packed {packed_time * 1e3:.1f}ms speedup {speedup:.1f}x")
        required = 5.0 if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") else 1.0
        assert speedup >= required

    def test_frame_sampler_throughput(self, benchmark, surface_circuit):
        sampler = FrameSampler(surface_circuit)
        batch = benchmark(sampler.sample, 4096, seed=0)
        assert batch.detectors.shape == (4096, surface_circuit.num_detectors)

    def test_frame_vs_tableau_speedup_d3(self, surface_circuit):
        """Acceptance: batched Pauli-frame propagation is >= 5x a per-shot
        stabilizer-tableau run of the same circuit at a realistic batch size.

        The frame propagator carries all shots as packed uint64 words and
        makes one vectorised pass per instruction; the tableau sampler pays
        a full CHP simulation per shot.  Timed with best-of-N
        ``perf_counter`` loops so the check also executes under
        ``--benchmark-disable`` quick mode in CI; the hard >=5x gate arms
        only under ``REPRO_BENCH_ASSERT_SPEEDUP`` (the bench-quick CI job)
        and relaxes to "frames are faster" in the ordinary matrix.  Locally
        the measured ratio is ~7000x, so the floor has enormous slack.
        """
        frames = FrameSampler(surface_circuit)
        tableau = TableauSampler(surface_circuit)
        shots, tableau_shots = 4096, 8

        batch = frames.sample(shots, seed=0)
        assert batch.detectors.shape == (shots, surface_circuit.num_detectors)

        def best_of(func, repeats=5):
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                func()
                times.append(time.perf_counter() - start)
            return min(times)

        frame_time = best_of(lambda: frames.sample(shots, seed=0)) / shots
        tableau_time = best_of(
            lambda: tableau.sample(tableau_shots, seed=0), repeats=3
        ) / tableau_shots
        speedup = tableau_time / frame_time
        print(f"\nframes d=3: {1 / frame_time / 1e3:.0f} kshots/s vs tableau "
              f"{1 / tableau_time:.0f} shots/s, speedup {speedup:.0f}x")
        required = 5.0 if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") else 1.0
        assert speedup >= required

    @pytest.mark.parametrize("decoder_name", ["mwpm", "bposd"])
    def test_decoder_batch_vs_loop_speedup(self, surface_dem, decoder_name):
        """Acceptance: the batch-first decoder stack is >= 5x a naive
        per-shot ``decode`` loop for MWPM and BP+OSD at a realistic batch
        size, while staying bit-identical to that loop.

        The gain comes from the shared packed-dedup front end (a 4096-shot
        d=3 batch at Brisbane rates collapses to ~200 unique syndromes)
        plus each decoder's vectorised unique-block path (enumerated-pairing
        matching, reduceat-segmented BP).  Timed with best-of-N
        ``perf_counter`` loops so the check also executes under
        ``--benchmark-disable`` quick mode; the hard >=5x gate arms only
        under ``REPRO_BENCH_ASSERT_SPEEDUP`` (the bench-quick CI job) and
        relaxes to "batch is faster" in the ordinary matrix.  Locally the
        measured ratios are ~40x (mwpm) and ~12x (bposd).
        """
        shots = 4096
        decoder = decoders.build(decoder_name)(surface_dem)
        batch = sample_detector_error_model(surface_dem, shots, seed=1)
        loop_slice = batch.detectors[:128]

        reference = np.array(
            [decoder.decode(syndrome) for syndrome in loop_slice], dtype=np.uint8
        )
        assert np.array_equal(decoder.decode_batch(batch.detectors)[:128], reference)

        def best_of(func, repeats=5):
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                func()
                times.append(time.perf_counter() - start)
            return min(times)

        loop_time = best_of(
            lambda: [decoder.decode(syndrome) for syndrome in loop_slice], repeats=3
        ) / len(loop_slice)
        batch_time = best_of(lambda: decoder.decode_batch(batch.detectors)) / shots
        speedup = loop_time / batch_time
        print(f"\n{decoder_name} d=3 {shots} shots: loop {1 / loop_time / 1e3:.1f} "
              f"kshots/s batch {1 / batch_time / 1e3:.1f} kshots/s speedup {speedup:.1f}x")
        required = 5.0 if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") else 1.0
        assert speedup >= required

    @pytest.mark.parametrize("decoder_name", ["mwpm", "unionfind", "bposd", "lookup"])
    def test_decoder_throughput(self, benchmark, surface_dem, decoder_name):
        decoder = decoders.build(decoder_name)(surface_dem)
        batch = sample_detector_error_model(surface_dem, 200, seed=1)
        predictions = benchmark.pedantic(
            decoder.decode_batch, args=(batch.detectors,), rounds=1, iterations=1
        )
        assert predictions.shape == batch.observables.shape

    def test_lookup_decode_batch_vectorized(self, benchmark, surface_dem):
        """Micro-benchmark of the NumPy-indexed LookupDecoder.decode_batch.

        The vectorised path packs syndromes into uint64 keys and resolves
        the whole batch with one searchsorted; the assertion pins it to the
        per-shot reference on a slice of the batch.
        """
        decoder = decoders.build("lookup")(surface_dem)
        batch = sample_detector_error_model(surface_dem, 20000, seed=2)
        predictions = benchmark(decoder.decode_batch, batch.detectors)
        reference = np.array(
            [decoder.decode(syndrome) for syndrome in batch.detectors[:200]], dtype=np.uint8
        )
        assert np.array_equal(predictions[:200], reference)


class TestAblations:
    def _search(self, *, reuse: bool, objective: str = "inverse", shots: int = 80) -> tuple:
        code = codes.build("steane")
        evaluator = ScheduleEvaluator(
            code=code,
            noise=brisbane_noise(),
            decoder_factory=decoders.build("lookup"),
            shots=shots,
            seed=0,
            objective=objective,
        )
        checks = tuple(c for c in checks_of_code(code) if c.pauli == "X")
        search = PartitionMCTS(
            evaluator=evaluator,
            checks=checks,
            compose=lambda schedule: _complete(code, schedule),
            config=MCTSConfig(iterations_per_step=3, seed=0, reuse_subtree=reuse),
        )
        schedule, _ = search.search()
        return schedule, search.evaluations_used

    def test_ablation_subtree_reuse(self, benchmark):
        _, evaluations_with_reuse = benchmark.pedantic(
            self._search, kwargs={"reuse": True}, rounds=1, iterations=1
        )
        _, evaluations_without = self._search(reuse=False)
        assert evaluations_with_reuse <= evaluations_without

    def test_ablation_objective(self, benchmark):
        schedule, _ = benchmark.pedantic(
            self._search, kwargs={"reuse": True, "objective": "neg_log"}, rounds=1, iterations=1
        )
        schedule.validate(require_complete=False)

    def test_ablation_rollout_shots(self, benchmark):
        schedule, _ = benchmark.pedantic(
            self._search, kwargs={"reuse": True, "shots": 30}, rounds=1, iterations=1
        )
        schedule.validate(require_complete=False)


def _complete(code, partial):
    """Complete a partial (X-partition) schedule with the Z checks appended
    in lowest-depth order so the evaluator always sees a full round."""
    from repro.scheduling import lowest_depth_schedule

    full = partial.copy()
    offset = full.depth
    baseline = lowest_depth_schedule(code)
    for check, tick in baseline.assignment.items():
        if check not in full.assignment and check.pauli == "Z":
            full.assignment[check] = tick + offset
    return full
