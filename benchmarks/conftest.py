"""Shared configuration for the benchmark harness.

Every paper asset (Tables 2-4, Figures 7, 12-15) has a matching benchmark
module that regenerates its rows through the same experiment drivers the CLI
uses, at a laptop-sized budget.  ``benchmark.pedantic(..., rounds=1)`` is
used throughout because a single regeneration is already the interesting
unit of work; the value of the harness is the printed rows plus the timing,
not statistical timing precision.

Paper-scale numbers are obtained by re-running the drivers through
``python -m repro.experiments <asset> --shots ... --iterations ...``.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentBudget

#: Where the benchmark harness drops its rendered rows.  Deliberately NOT
#: ``results/`` — that directory is the suite artifact store owned by
#: ``repro experiments run`` (quick budgets, resumable JSONL logs), and the
#: bench-budget rows would silently clobber its rendered views.
BENCH_RESULTS = "results/bench"


@pytest.fixture(scope="session")
def bench_budget() -> ExperimentBudget:
    """Budget used by all asset benchmarks (small but non-trivial)."""
    return ExperimentBudget(
        shots=200,
        synthesis_shots=80,
        iterations_per_step=2,
        max_evaluations=8,
        seed=0,
    )


@pytest.fixture(scope="session")
def quick_budget() -> ExperimentBudget:
    """Smaller budget for the benchmarks that synthesise several codes."""
    return ExperimentBudget(
        shots=120,
        synthesis_shots=60,
        iterations_per_step=1,
        max_evaluations=4,
        seed=0,
    )


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
