"""Benchmarks regenerating Tables 2, 3 and 4 of the paper.

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark prints the
regenerated rows (visible with ``-s``) and checks the paper's qualitative
claims at reduced statistics:

* Table 2 — AlphaSyndrome's overall logical error rate is no worse than the
  lowest-depth baseline on most instances, at (usually) larger depth;
* Table 3 — running a smaller AlphaSyndrome-scheduled code needs less
  space-time volume than a larger lowest-depth baseline code;
* Table 4 — schedules compiled for a decoder tend to win when tested with
  that same decoder.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_RESULTS, run_once
from repro.experiments import render_table, run_table2, run_table3, run_table4, write_results


class TestTable2:
    def test_table2_quick_instances(self, benchmark, bench_budget):
        rows = run_once(benchmark, run_table2, bench_budget)
        assert rows, "table 2 produced no rows"
        write_results("table2", rows, output_dir=BENCH_RESULTS)
        print()
        print(render_table(rows))
        wins = sum(1 for row in rows if row["alpha_overall"] <= row["lowest_overall"])
        # Even at this tiny search budget AlphaSyndrome should win on at
        # least some instances; the paper-scale margins are recorded in
        # EXPERIMENTS.md.
        assert wins >= 1

    def test_table2_depth_tradeoff(self, benchmark, quick_budget):
        rows = run_once(
            benchmark,
            run_table2,
            quick_budget,
            instances=[("hexagonal_color_d3", "unionfind")],
        )
        row = rows[0]
        # The synthesised schedule trades depth for reliability, exactly as in
        # the paper: it is never shallower than the depth-optimal baseline.
        assert row["alpha_depth"] >= row["lowest_depth"]


class TestTable3:
    def test_table3_space_time_volume(self, benchmark, bench_budget):
        rows = run_once(benchmark, run_table3, bench_budget)
        assert rows
        write_results("table3", rows, output_dir=BENCH_RESULTS)
        print()
        print(render_table(rows))
        for row in rows:
            assert row["alpha_volume"] < row["baseline_volume"]
            assert 0.0 < row["volume_reduction"] < 1.0


class TestTable4:
    def test_table4_cross_decoder(self, benchmark, bench_budget):
        rows = run_once(benchmark, run_table4, bench_budget, instances=["hexagonal_color_d3"])
        assert rows
        write_results("table4", rows, output_dir=BENCH_RESULTS)
        print()
        print(render_table(rows))
        row = rows[0]
        for test_decoder in ("bposd", "unionfind"):
            for compile_decoder in ("bposd", "unionfind"):
                value = row[f"test_{test_decoder}_compile_{compile_decoder}"]
                assert 0.0 <= value <= 1.0
