"""Figure drivers: Figures 7, 12, 13, 14 and 15 of the paper.

Each driver returns the data series that the corresponding figure plots
(logical X / Z error rates per schedule); no plotting library is required —
the rows are written as text/JSON by ``python -m repro.experiments``.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentBudget,
    evaluate_schedule,
    get_code,
    synthesize,
)
from repro.noise import brisbane_noise, non_uniform_noise, scaled_noise
from repro.scheduling import (
    anticlockwise_surface_schedule,
    clockwise_surface_schedule,
    google_surface_schedule,
    ibm_bb_schedule,
    lowest_depth_schedule,
    trivial_schedule,
)

__all__ = [
    "run_figure7",
    "run_figure12",
    "run_figure13",
    "run_figure14",
    "run_figure15",
    "FIGURE12_CODES",
    "FIGURE14_SWEEP",
]

#: Rotated surface codes compared against Google's schedule in Figure 12.
FIGURE12_CODES: list[str] = [
    "rotated_surface_d3",
    "rotated_surface_d5",
    "rotated_surface_d7",
    "rotated_surface_d9",
    "rotated_surface_5x9",
]

#: Physical error rates swept in Figure 14.
FIGURE14_SWEEP: list[float] = [1e-2, 1e-3, 1e-4, 1e-5]


def run_figure7(budget: ExperimentBudget | None = None) -> list[dict]:
    """Figure 7: clockwise vs anti-clockwise order bias on the d=3 surface code."""
    budget = budget or ExperimentBudget()
    code = get_code("rotated_surface_d3")
    noise = brisbane_noise()
    rows = []
    for label, schedule in (
        ("clockwise", clockwise_surface_schedule(code)),
        ("anticlockwise", anticlockwise_surface_schedule(code)),
        ("google", google_surface_schedule(code)),
        ("trivial", trivial_schedule(code)),
    ):
        rates = evaluate_schedule(code, schedule, "mwpm", noise, budget)
        rows.append(
            {
                "schedule": label,
                "err_x": rates.error_x,
                "err_z": rates.error_z,
                "overall": rates.overall,
                "depth": schedule.depth,
            }
        )
    return rows


def run_figure12(
    budget: ExperimentBudget | None = None, *, codes: list[str] | None = None
) -> list[dict]:
    """Figure 12: AlphaSyndrome vs Google vs trivial on rotated surface codes."""
    budget = budget or ExperimentBudget()
    codes = codes or FIGURE12_CODES[:1]
    noise = brisbane_noise()
    rows = []
    for code_name in codes:
        code = get_code(code_name)
        synthesis = synthesize(code, "mwpm", noise, budget)
        schedules = {
            "alphasyndrome": synthesis.schedule,
            "google": google_surface_schedule(code),
            "trivial": trivial_schedule(code),
        }
        for label, schedule in schedules.items():
            rates = evaluate_schedule(code, schedule, "mwpm", noise, budget)
            rows.append(
                {
                    "code": code_name,
                    "schedule": label,
                    "err_x": rates.error_x,
                    "err_z": rates.error_z,
                    "overall": rates.overall,
                    "depth": schedule.depth,
                }
            )
    return rows


def run_figure13(
    budget: ExperimentBudget | None = None, *, code_name: str = "bb_72_12_6"
) -> list[dict]:
    """Figure 13: AlphaSyndrome vs IBM's schedule on a bivariate bicycle code.

    ``code_name`` defaults to the paper's ``[[72,12,6]]`` instance; the test
    suite and the default benchmark budget use the smaller ``bb_18`` instance
    because the pure-Python DEM extraction for the full code takes minutes.
    """
    budget = budget or ExperimentBudget()
    code = get_code(code_name)
    noise = brisbane_noise()
    rows = []
    for decoder in ("bposd", "unionfind"):
        synthesis = synthesize(code, decoder, noise, budget)
        for label, schedule in (
            ("alphasyndrome", synthesis.schedule),
            ("ibm", ibm_bb_schedule(code)),
        ):
            rates = evaluate_schedule(code, schedule, decoder, noise, budget)
            rows.append(
                {
                    "decoder": decoder,
                    "schedule": label,
                    "err_x": rates.error_x,
                    "err_z": rates.error_z,
                    "overall": rates.overall,
                    "depth": schedule.depth,
                }
            )
    return rows


def run_figure14(
    budget: ExperimentBudget | None = None,
    *,
    codes: list[tuple[str, str]] | None = None,
    error_rates: list[float] | None = None,
) -> list[dict]:
    """Figure 14: behaviour as the physical error rate is scaled down."""
    budget = budget or ExperimentBudget()
    codes = codes or [("hexagonal_color_d3", "unionfind")]
    error_rates = error_rates or FIGURE14_SWEEP[:3]
    rows = []
    for code_name, decoder in codes:
        code = get_code(code_name)
        for physical_error in error_rates:
            noise = scaled_noise(physical_error)
            synthesis = synthesize(code, decoder, noise, budget)
            alpha_rates = evaluate_schedule(
                code, synthesis.schedule, decoder, noise, budget
            )
            baseline = lowest_depth_schedule(code)
            baseline_rates = evaluate_schedule(code, baseline, decoder, noise, budget)
            rows.append(
                {
                    "code": code_name,
                    "decoder": decoder,
                    "physical_error": physical_error,
                    "alpha_overall": alpha_rates.overall,
                    "lowest_overall": baseline_rates.overall,
                    "reduction": (
                        1.0 - alpha_rates.overall / baseline_rates.overall
                        if baseline_rates.overall > 0
                        else 0.0
                    ),
                }
            )
    return rows


def run_figure15(
    budget: ExperimentBudget | None = None, *, codes: list[str] | None = None
) -> list[dict]:
    """Figure 15: non-uniform ancilla noise, AlphaSyndrome vs Google's schedule."""
    budget = budget or ExperimentBudget()
    codes = codes or ["rotated_surface_d3"]
    rows = []
    for code_name in codes:
        code = get_code(code_name)
        ancillas = [code.num_qubits + s for s in range(code.num_stabilizers)]
        noise = non_uniform_noise(ancillas, variance=0.6, seed=budget.stage_seed("noise"))
        synthesis = synthesize(code, "mwpm", noise, budget)
        for label, schedule in (
            ("alphasyndrome", synthesis.schedule),
            ("google", google_surface_schedule(code)),
        ):
            rates = evaluate_schedule(code, schedule, "mwpm", noise, budget)
            rows.append(
                {
                    "code": code_name,
                    "schedule": label,
                    "err_x": rates.error_x,
                    "err_z": rates.error_z,
                    "overall": rates.overall,
                    "depth": schedule.depth,
                }
            )
    return rows
