"""Figure drivers: Figures 7, 12, 13, 14 and 15 of the paper.

Each figure is declared as an :class:`~repro.experiments.suite
.ExperimentSuite` whose rows are the data series the figure plots (logical
X / Z error rates per schedule); no plotting library is required — the rows
are written as text/JSON by ``repro experiments run`` (or the legacy
``python -m repro.experiments``).  The ``run_figure*`` functions keep the
historical driver signatures, now suite-backed.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.common import ExperimentBudget
from repro.experiments.suite import (
    ExperimentRow,
    ExperimentRun,
    RowView,
    SuiteConfig,
    SuiteRunner,
    register_suite,
    synthesis_scheduler,
)

__all__ = [
    "run_figure7",
    "run_figure12",
    "run_figure13",
    "run_figure14",
    "run_figure15",
    "FIGURE12_CODES",
    "FIGURE14_SWEEP",
    "figure7_rows",
    "figure12_rows",
    "figure13_rows",
    "figure14_rows",
    "figure15_rows",
]

#: Rotated surface codes compared against Google's schedule in Figure 12.
FIGURE12_CODES: list[str] = [
    "rotated_surface_d3",
    "rotated_surface_d5",
    "rotated_surface_d7",
    "rotated_surface_d9",
    "rotated_surface_5x9",
]

#: Physical error rates swept in Figure 14.
FIGURE14_SWEEP: list[float] = [1e-2, 1e-3, 1e-4, 1e-5]

#: Figure 7's fixed hand-crafted schedules (label -> scheduler spec).
FIGURE7_SCHEDULES: list[tuple[str, str]] = [
    ("clockwise", "clockwise"),
    ("anticlockwise", "anticlockwise"),
    ("google", "google"),
    ("trivial", "trivial"),
]


def _derive_rates(view: RowView, *, fields: dict) -> dict:
    """Shared figure-row derivation: fixed fields + rates of the ``eval`` run."""
    rates = view.rates("eval")
    row = dict(fields)
    row.update(
        {
            "err_x": rates.error_x,
            "err_z": rates.error_z,
            "overall": rates.overall,
            "depth": view.depth("eval"),
        }
    )
    return row


def _rates_row(
    key: str, spec, fields: dict
) -> ExperimentRow:
    return ExperimentRow(
        key=key,
        runs=(ExperimentRun("eval", spec),),
        derive=partial(_derive_rates, fields=fields),
    )


# ----------------------------------------------------------------------
# Figure 7: schedule-order bias on the d=3 surface code
# ----------------------------------------------------------------------
def figure7_rows(config: SuiteConfig) -> list[ExperimentRow]:
    """Clockwise vs anti-clockwise vs Google vs trivial on ``rotated_surface_d3``."""
    return [
        _rates_row(
            f"rotated_surface_d3/{label}",
            config.spec(code="rotated_surface_d3", decoder="mwpm", scheduler=scheduler),
            {"schedule": label},
        )
        for label, scheduler in FIGURE7_SCHEDULES
    ]


@register_suite("figure7", help="Schedule-order bias: four fixed orders on the d=3 surface code")
def _figure7_suite(config: SuiteConfig) -> list[ExperimentRow]:
    return figure7_rows(config)


def run_figure7(budget: ExperimentBudget | None = None) -> list[dict]:
    """Figure 7: clockwise vs anti-clockwise order bias on the d=3 surface code."""
    config = SuiteConfig.from_experiment_budget(budget or ExperimentBudget())
    return SuiteRunner(config).run_rows(figure7_rows(config))


# ----------------------------------------------------------------------
# Figure 12: AlphaSyndrome vs Google vs trivial on rotated surface codes
# ----------------------------------------------------------------------
def figure12_rows(
    config: SuiteConfig, *, codes: list[str] | None = None
) -> list[ExperimentRow]:
    if codes is None:
        codes = FIGURE12_CODES if not config.quick else FIGURE12_CODES[:1]
    rows = []
    for code_name in codes:
        for label, scheduler in (
            ("alphasyndrome", synthesis_scheduler()),
            ("google", "google"),
            ("trivial", "trivial"),
        ):
            rows.append(
                _rates_row(
                    f"{code_name}/{label}",
                    config.spec(code=code_name, decoder="mwpm", scheduler=scheduler),
                    {"code": code_name, "schedule": label},
                )
            )
    return rows


@register_suite("figure12", help="AlphaSyndrome vs Google vs trivial on rotated surface codes")
def _figure12_suite(config: SuiteConfig) -> list[ExperimentRow]:
    return figure12_rows(config)


def run_figure12(
    budget: ExperimentBudget | None = None, *, codes: list[str] | None = None
) -> list[dict]:
    """Figure 12: AlphaSyndrome vs Google vs trivial on rotated surface codes."""
    config = SuiteConfig.from_experiment_budget(budget or ExperimentBudget())
    return SuiteRunner(config).run_rows(
        figure12_rows(config, codes=codes or FIGURE12_CODES[:1])
    )


# ----------------------------------------------------------------------
# Figure 13: AlphaSyndrome vs IBM's schedule on a bivariate bicycle code
# ----------------------------------------------------------------------
def figure13_rows(
    config: SuiteConfig, *, code_name: str | None = None
) -> list[ExperimentRow]:
    """Quick mode uses the small ``bb_18`` instance; full mode the paper's
    ``[[72,12,6]]`` code (whose pure-Python DEM extraction takes minutes)."""
    if code_name is None:
        code_name = "bb_18" if config.quick else "bb_72_12_6"
    rows = []
    for decoder in ("bposd", "unionfind"):
        for label, scheduler in (
            ("alphasyndrome", synthesis_scheduler()),
            ("ibm", "ibm_bb"),
        ):
            rows.append(
                _rates_row(
                    f"{code_name}/{decoder}/{label}",
                    config.spec(code=code_name, decoder=decoder, scheduler=scheduler),
                    {"decoder": decoder, "schedule": label},
                )
            )
    return rows


@register_suite("figure13", help="AlphaSyndrome vs IBM's schedule on a bivariate bicycle code")
def _figure13_suite(config: SuiteConfig) -> list[ExperimentRow]:
    return figure13_rows(config)


def run_figure13(
    budget: ExperimentBudget | None = None, *, code_name: str = "bb_72_12_6"
) -> list[dict]:
    """Figure 13: AlphaSyndrome vs IBM's schedule on a bivariate bicycle code.

    ``code_name`` defaults to the paper's ``[[72,12,6]]`` instance; the test
    suite and the quick suite mode use the smaller ``bb_18`` instance
    because the pure-Python DEM extraction for the full code takes minutes.
    """
    config = SuiteConfig.from_experiment_budget(budget or ExperimentBudget())
    return SuiteRunner(config).run_rows(figure13_rows(config, code_name=code_name))


# ----------------------------------------------------------------------
# Figure 14: behaviour as the physical error rate is scaled down
# ----------------------------------------------------------------------
def _derive_figure14(view: RowView, *, physical_error: float) -> dict:
    alpha = view.rates("alpha")
    lowest = view.rates("lowest")
    return {
        "code": view.spec("alpha").code,
        "decoder": view.spec("alpha").decoder,
        "physical_error": physical_error,
        "alpha_overall": alpha.overall,
        "lowest_overall": lowest.overall,
        "reduction": (
            1.0 - alpha.overall / lowest.overall if lowest.overall > 0 else 0.0
        ),
    }


def figure14_rows(
    config: SuiteConfig,
    *,
    codes: list[tuple[str, str]] | None = None,
    error_rates: list[float] | None = None,
) -> list[ExperimentRow]:
    codes = codes or [("hexagonal_color_d3", "unionfind")]
    if error_rates is None:
        error_rates = FIGURE14_SWEEP[:3] if config.quick else FIGURE14_SWEEP
    rows = []
    for code_name, decoder in codes:
        for physical_error in error_rates:
            noise = f"scaled:p={physical_error!r}"
            rows.append(
                ExperimentRow(
                    key=f"{code_name}/{decoder}/p={physical_error!r}",
                    runs=(
                        ExperimentRun(
                            "alpha",
                            config.spec(
                                code=code_name,
                                decoder=decoder,
                                noise=noise,
                                scheduler=synthesis_scheduler(),
                            ),
                        ),
                        ExperimentRun(
                            "lowest",
                            config.spec(
                                code=code_name,
                                decoder=decoder,
                                noise=noise,
                                scheduler="lowest_depth",
                            ),
                        ),
                    ),
                    derive=partial(_derive_figure14, physical_error=physical_error),
                )
            )
    return rows


@register_suite("figure14", help="AlphaSyndrome vs lowest-depth across physical error rates")
def _figure14_suite(config: SuiteConfig) -> list[ExperimentRow]:
    return figure14_rows(config)


def run_figure14(
    budget: ExperimentBudget | None = None,
    *,
    codes: list[tuple[str, str]] | None = None,
    error_rates: list[float] | None = None,
) -> list[dict]:
    """Figure 14: behaviour as the physical error rate is scaled down."""
    config = SuiteConfig.from_experiment_budget(budget or ExperimentBudget())
    return SuiteRunner(config).run_rows(
        figure14_rows(config, codes=codes, error_rates=error_rates or FIGURE14_SWEEP[:3])
    )


# ----------------------------------------------------------------------
# Figure 15: non-uniform ancilla noise
# ----------------------------------------------------------------------
def figure15_rows(
    config: SuiteConfig, *, codes: list[str] | None = None
) -> list[ExperimentRow]:
    codes = codes or ["rotated_surface_d3"]
    # The legacy drivers drew the per-ancilla noise profile from the
    # "noise" stage stream; the registry's `nonuniform` builder re-derives
    # the same profile from the integer stage seed in the spec string.
    noise = f"nonuniform:variance=0.6,seed={config.stage_seed('noise')}"
    rows = []
    for code_name in codes:
        for label, scheduler in (
            ("alphasyndrome", synthesis_scheduler()),
            ("google", "google"),
        ):
            rows.append(
                _rates_row(
                    f"{code_name}/{label}",
                    config.spec(
                        code=code_name, decoder="mwpm", noise=noise, scheduler=scheduler
                    ),
                    {"code": code_name, "schedule": label},
                )
            )
    return rows


@register_suite("figure15", help="Non-uniform ancilla noise: AlphaSyndrome vs Google's schedule")
def _figure15_suite(config: SuiteConfig) -> list[ExperimentRow]:
    return figure15_rows(config)


def run_figure15(
    budget: ExperimentBudget | None = None, *, codes: list[str] | None = None
) -> list[dict]:
    """Figure 15: non-uniform ancilla noise, AlphaSyndrome vs Google's schedule."""
    config = SuiteConfig.from_experiment_budget(budget or ExperimentBudget())
    return SuiteRunner(config).run_rows(figure15_rows(config, codes=codes))
