"""Versioned on-disk artifact store for the experiment suites.

Each suite owns three files under one results directory (default
``results/``), the JSONL row store and the two rendered views next to each
other::

    results/
      table2.jsonl   one record per completed row: fingerprint + row + runs
      table2.txt     rendered fixed-width table (``render_table``)
      table2.json    rendered row dictionaries (``write_results``)

The JSONL store is the *resume log*: records are appended (and flushed) as
each row completes, so a killed run keeps everything it finished.  On the
next run, rows whose :func:`row_fingerprint` already appears in the store
are replayed from disk instead of re-executed — zero resampling.  The
fingerprint covers the suite name, the row key and the canonical payload of
every :class:`~repro.api.spec.RunSpec` the row executes
(:func:`repro.api.spec.canonical_spec`: ``workers`` dropped, defaults
normalised), so a budget or spec change re-runs exactly the rows it
affects, while moving between machines with different core counts does
not.

``ARTIFACT_VERSION`` is folded into every record *and* every fingerprint;
bumping it orphans all stored rows at once when the row semantics change.
Torn trailing lines (a record cut mid-write by a kill) are skipped on
load, so that row simply re-runs.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.api.spec import canonical_spec
from repro.experiments.common import render_table, write_results

__all__ = ["ARTIFACT_VERSION", "ArtifactStore", "row_fingerprint"]

#: Bump when the record schema or row semantics change; stored rows from
#: other versions stop matching and are re-run.
ARTIFACT_VERSION = 1


def row_fingerprint(suite: str, key: str, runs: "list[tuple[str, dict]]") -> str:
    """Content fingerprint of one suite row: the resume key of its record.

    ``runs`` is the row's ``(run name, RunSpec payload)`` list; payloads are
    normalised through :func:`repro.api.spec.canonical_spec` so execution
    details (``workers``) never force a re-run and old records keep
    matching when spec fields grow defaults.
    """
    payload = {
        "v": ARTIFACT_VERSION,
        "suite": suite,
        "key": key,
        "runs": [{"name": name, "spec": canonical_spec(spec)} for name, spec in runs],
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ArtifactStore:
    """One results directory of suite artifacts (JSONL rows + rendered views)."""

    def __init__(self, root: str | Path = "results") -> None:
        self.root = Path(root)

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def rows_path(self, suite: str) -> Path:
        return self.root / f"{suite}.jsonl"

    def text_path(self, suite: str) -> Path:
        return self.root / f"{suite}.txt"

    def json_path(self, suite: str) -> Path:
        return self.root / f"{suite}.json"

    # ------------------------------------------------------------------
    # Row store
    # ------------------------------------------------------------------
    def load(self, suite: str) -> "dict[str, dict]":
        """Stored records of ``suite`` keyed by fingerprint, in file order.

        Unreadable lines (torn trailing writes) and records from other
        artifact versions are skipped — those rows re-run.  Duplicate
        fingerprints keep the latest record.
        """
        path = self.rows_path(suite)
        records: dict[str, dict] = {}
        if not path.exists():
            return records
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(payload, dict) or payload.get("v") != ARTIFACT_VERSION:
                continue
            fingerprint = payload.get("fingerprint")
            if isinstance(fingerprint, str) and isinstance(payload.get("row"), dict):
                records[fingerprint] = payload
        return records

    def latest_rows(self, suite: str) -> "list[dict]":
        """The most recent stored row per row *key*, in append order.

        The log may hold several records per key (the same row re-run under
        different budgets/configs has a different fingerprint); rendering
        all of them would duplicate every row.  Keeping only the latest
        record per key — each key ordered by its latest appearance —
        reproduces the most recent run's view of the suite.
        """
        by_key: dict[str, dict] = {}
        for record in self.load(suite).values():
            key = record.get("key")
            if isinstance(key, str):
                by_key.pop(key, None)  # re-insert so order tracks the latest run
                by_key[key] = record
        return [record["row"] for record in by_key.values()]

    def append(self, suite: str, record: dict) -> None:
        """Append one completed-row ``record`` to the suite's JSONL log.

        The record is stamped with :data:`ARTIFACT_VERSION` and flushed
        immediately, so an interrupted run loses at most the row in flight.
        """
        path = self.rows_path(suite)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as handle:
            handle.write(json.dumps({"v": ARTIFACT_VERSION, **record}) + "\n")
            handle.flush()

    # ------------------------------------------------------------------
    # Rendered views
    # ------------------------------------------------------------------
    def render(self, suite: str, rows: "list[dict]") -> "tuple[Path, Path]":
        """(Re)write the rendered text/JSON views; returns their paths.

        Delegates to :func:`repro.experiments.common.write_results`, the one
        renderer the golden-file tests pin, so the suite-backed artifacts
        can never drift from the historical format.
        """
        text_path = write_results(suite, rows, output_dir=self.root)
        return text_path, self.json_path(suite)

    def render_text(self, rows: "list[dict]") -> str:
        """Rendered fixed-width table of ``rows`` (no file writes)."""
        return render_table(rows)
