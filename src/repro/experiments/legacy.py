"""Legacy pre-``repro.api`` experiment drivers (deprecated shim).

These are the hand-rolled loops that produced the paper's tables and
figures before the declarative suites in :mod:`repro.experiments.suite`
existed: every driver builds its own seed streams from an
:class:`~repro.experiments.common.ExperimentBudget` and calls
:func:`repro.sim.estimate_logical_error_rates` directly, bypassing the
Pipeline, the worker pool, the chunk cache and the adaptive budgets.

They are kept for one release, for two reasons:

* as a migration shim — external callers of
  ``repro.experiments.common.compare_with_lowest_depth`` et al. keep
  working (with a :class:`DeprecationWarning`);
* as the *reference implementation* that
  ``tests/test_suite_equivalence.py`` pins the suite-backed drivers
  against, row for row and bit for bit.

Do not add new call sites; use the suites (``repro experiments run`` or
:func:`repro.experiments.suite.run_suite`).
"""

from __future__ import annotations

import warnings

from repro.analysis import estimate_space_time, space_time_reduction
from repro.api.registries import decoders
from repro.codes.base import StabilizerCode
from repro.core import AlphaSyndrome, SynthesisResult
from repro.experiments.common import ExperimentBudget, get_code
from repro.noise import NoiseModel, brisbane_noise, non_uniform_noise, scaled_noise
from repro.scheduling import (
    anticlockwise_surface_schedule,
    clockwise_surface_schedule,
    google_surface_schedule,
    ibm_bb_schedule,
    lowest_depth_schedule,
    trivial_schedule,
)
from repro.sim import LogicalErrorRates, estimate_logical_error_rates

__all__ = [
    "baseline_rows",
    "compare_with_lowest_depth",
    "evaluate_schedule",
    "run_figure7",
    "run_figure12",
    "run_figure13",
    "run_figure14",
    "run_figure15",
    "run_table2",
    "run_table3",
    "run_table4",
    "synthesize",
]


def _warn_deprecated(name: str) -> None:
    warnings.warn(
        f"repro.experiments.legacy.{name} is the deprecated pre-suite driver "
        "path; use the suite-backed drivers (repro.experiments.run_* or "
        "`repro experiments run`) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def synthesize(
    code: StabilizerCode,
    decoder: str,
    noise: NoiseModel,
    budget: ExperimentBudget,
) -> SynthesisResult:
    """Run AlphaSyndrome for ``code`` under ``noise`` targeting ``decoder``."""
    _warn_deprecated("synthesize")
    alpha = AlphaSyndrome(
        code=code,
        noise=noise,
        decoder_factory=decoders.build(decoder),
        shots=budget.synthesis_shots,
        mcts_config=budget.mcts_config(),
        seed=budget.stage_seed("synthesis"),
    )
    return alpha.synthesize()


def evaluate_schedule(
    code: StabilizerCode,
    schedule,
    decoder: str,
    noise: NoiseModel,
    budget: ExperimentBudget,
) -> LogicalErrorRates:
    """Estimate the logical error rates of an explicit schedule."""
    _warn_deprecated("evaluate_schedule")
    return estimate_logical_error_rates(
        code,
        schedule,
        noise,
        decoders.build(decoder),
        shots=budget.shots,
        seed=budget.stage_stream("evaluation"),
    )


def compare_with_lowest_depth(
    code_name: str,
    decoder: str,
    budget: ExperimentBudget,
    *,
    noise: NoiseModel | None = None,
) -> dict:
    """One Table-2-style row: AlphaSyndrome vs the lowest-depth baseline."""
    _warn_deprecated("compare_with_lowest_depth")
    code = get_code(code_name)
    noise = noise or brisbane_noise()
    result = synthesize(code, decoder, noise, budget)
    alpha_rates = evaluate_schedule(code, result.schedule, decoder, noise, budget)
    baseline = lowest_depth_schedule(code)
    baseline_rates = evaluate_schedule(code, baseline, decoder, noise, budget)
    reduction = 0.0
    if baseline_rates.overall > 0:
        reduction = 1.0 - alpha_rates.overall / baseline_rates.overall
    return {
        "code": code_name,
        "n": code.num_qubits,
        "k": code.num_logical_qubits,
        "d": code.declared_distance,
        "decoder": decoder,
        "alpha_err_x": alpha_rates.error_x,
        "alpha_err_z": alpha_rates.error_z,
        "alpha_overall": alpha_rates.overall,
        "alpha_depth": result.schedule.depth,
        "lowest_err_x": baseline_rates.error_x,
        "lowest_err_z": baseline_rates.error_z,
        "lowest_overall": baseline_rates.overall,
        "lowest_depth": baseline.depth,
        "overall_reduction": reduction,
    }


def baseline_rows(code_name: str, decoder: str, budget: ExperimentBudget) -> dict:
    """Trivial vs lowest-depth comparison (no synthesis), used in sanity rows."""
    _warn_deprecated("baseline_rows")
    code = get_code(code_name)
    noise = brisbane_noise()
    rows = {}
    for label, schedule in (
        ("trivial", trivial_schedule(code)),
        ("lowest", lowest_depth_schedule(code)),
    ):
        rates = evaluate_schedule(code, schedule, decoder, noise, budget)
        rows[label] = rates
    return rows


# ----------------------------------------------------------------------
# Table drivers (the pre-suite loops, verbatim)
# ----------------------------------------------------------------------
def run_table2(
    budget: ExperimentBudget | None = None,
    *,
    instances: list[tuple[str, str]] | None = None,
) -> list[dict]:
    """Legacy Table 2 driver (use the ``table2`` suite instead)."""
    from repro.experiments.table2 import TABLE2_QUICK_INSTANCES

    _warn_deprecated("run_table2")
    budget = budget or ExperimentBudget()
    instances = instances or TABLE2_QUICK_INSTANCES
    rows = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for code_name, decoder in instances:
            rows.append(compare_with_lowest_depth(code_name, decoder, budget))
    return rows


def run_table3(
    budget: ExperimentBudget | None = None,
    *,
    pairs: list[tuple[str, str, str, str]] | None = None,
) -> list[dict]:
    """Legacy Table 3 driver (use the ``table3`` suite instead)."""
    from repro.experiments.table3 import TABLE3_PAIRS

    _warn_deprecated("run_table3")
    budget = budget or ExperimentBudget()
    pairs = pairs or TABLE3_PAIRS
    noise = brisbane_noise()
    rows = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for family, alpha_name, baseline_name, decoder in pairs:
            alpha_code = get_code(alpha_name)
            baseline_code = get_code(baseline_name)
            synthesis = synthesize(alpha_code, decoder, noise, budget)
            alpha_rates = evaluate_schedule(
                alpha_code, synthesis.schedule, decoder, noise, budget
            )
            baseline_schedule = lowest_depth_schedule(baseline_code)
            baseline_rates = evaluate_schedule(
                baseline_code, baseline_schedule, decoder, noise, budget
            )
            alpha_estimate = estimate_space_time(
                alpha_code, synthesis.schedule.depth, logical_error_rate=alpha_rates.overall
            )
            baseline_estimate = estimate_space_time(
                baseline_code,
                baseline_schedule.depth,
                logical_error_rate=baseline_rates.overall,
            )
            rows.append(
                {
                    "family": family,
                    "decoder": decoder,
                    "alpha_code": alpha_name,
                    "alpha_error": alpha_rates.overall,
                    "alpha_depth": synthesis.schedule.depth,
                    "alpha_time_us": alpha_estimate.round_time_us,
                    "alpha_volume": alpha_estimate.volume_us_qubits,
                    "baseline_code": baseline_name,
                    "baseline_error": baseline_rates.overall,
                    "baseline_depth": baseline_schedule.depth,
                    "baseline_time_us": baseline_estimate.round_time_us,
                    "baseline_volume": baseline_estimate.volume_us_qubits,
                    "volume_reduction": space_time_reduction(
                        alpha_estimate, baseline_estimate
                    ),
                }
            )
    return rows


def run_table4(
    budget: ExperimentBudget | None = None,
    *,
    instances: list[str] | None = None,
    decoders: tuple[str, str] = ("bposd", "unionfind"),
) -> list[dict]:
    """Legacy Table 4 driver (use the ``table4`` suite instead)."""
    from repro.experiments.table4 import TABLE4_INSTANCES

    _warn_deprecated("run_table4")
    budget = budget or ExperimentBudget()
    instances = instances or TABLE4_INSTANCES[:2]
    noise = brisbane_noise()
    rows = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for code_name in instances:
            code = get_code(code_name)
            schedules = {
                decoder: synthesize(code, decoder, noise, budget).schedule
                for decoder in decoders
            }
            row: dict = {"code": code_name}
            for test_decoder in decoders:
                for compile_decoder in decoders:
                    rates = evaluate_schedule(
                        code, schedules[compile_decoder], test_decoder, noise, budget
                    )
                    row[f"test_{test_decoder}_compile_{compile_decoder}"] = rates.overall
            for test_decoder in decoders:
                same = row[f"test_{test_decoder}_compile_{test_decoder}"]
                other = [d for d in decoders if d != test_decoder][0]
                cross = row[f"test_{test_decoder}_compile_{other}"]
                row[f"reduction_{test_decoder}"] = (
                    1.0 - same / cross if cross > 0 else 0.0
                )
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure drivers (the pre-suite loops, verbatim)
# ----------------------------------------------------------------------
def run_figure7(budget: ExperimentBudget | None = None) -> list[dict]:
    """Legacy Figure 7 driver (use the ``figure7`` suite instead)."""
    _warn_deprecated("run_figure7")
    budget = budget or ExperimentBudget()
    code = get_code("rotated_surface_d3")
    noise = brisbane_noise()
    rows = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for label, schedule in (
            ("clockwise", clockwise_surface_schedule(code)),
            ("anticlockwise", anticlockwise_surface_schedule(code)),
            ("google", google_surface_schedule(code)),
            ("trivial", trivial_schedule(code)),
        ):
            rates = evaluate_schedule(code, schedule, "mwpm", noise, budget)
            rows.append(
                {
                    "schedule": label,
                    "err_x": rates.error_x,
                    "err_z": rates.error_z,
                    "overall": rates.overall,
                    "depth": schedule.depth,
                }
            )
    return rows


def run_figure12(
    budget: ExperimentBudget | None = None, *, codes: list[str] | None = None
) -> list[dict]:
    """Legacy Figure 12 driver (use the ``figure12`` suite instead)."""
    from repro.experiments.figures import FIGURE12_CODES

    _warn_deprecated("run_figure12")
    budget = budget or ExperimentBudget()
    codes = codes or FIGURE12_CODES[:1]
    noise = brisbane_noise()
    rows = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for code_name in codes:
            code = get_code(code_name)
            synthesis = synthesize(code, "mwpm", noise, budget)
            schedules = {
                "alphasyndrome": synthesis.schedule,
                "google": google_surface_schedule(code),
                "trivial": trivial_schedule(code),
            }
            for label, schedule in schedules.items():
                rates = evaluate_schedule(code, schedule, "mwpm", noise, budget)
                rows.append(
                    {
                        "code": code_name,
                        "schedule": label,
                        "err_x": rates.error_x,
                        "err_z": rates.error_z,
                        "overall": rates.overall,
                        "depth": schedule.depth,
                    }
                )
    return rows


def run_figure13(
    budget: ExperimentBudget | None = None, *, code_name: str = "bb_72_12_6"
) -> list[dict]:
    """Legacy Figure 13 driver (use the ``figure13`` suite instead)."""
    _warn_deprecated("run_figure13")
    budget = budget or ExperimentBudget()
    code = get_code(code_name)
    noise = brisbane_noise()
    rows = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for decoder in ("bposd", "unionfind"):
            synthesis = synthesize(code, decoder, noise, budget)
            for label, schedule in (
                ("alphasyndrome", synthesis.schedule),
                ("ibm", ibm_bb_schedule(code)),
            ):
                rates = evaluate_schedule(code, schedule, decoder, noise, budget)
                rows.append(
                    {
                        "decoder": decoder,
                        "schedule": label,
                        "err_x": rates.error_x,
                        "err_z": rates.error_z,
                        "overall": rates.overall,
                        "depth": schedule.depth,
                    }
                )
    return rows


def run_figure14(
    budget: ExperimentBudget | None = None,
    *,
    codes: list[tuple[str, str]] | None = None,
    error_rates: list[float] | None = None,
) -> list[dict]:
    """Legacy Figure 14 driver (use the ``figure14`` suite instead)."""
    from repro.experiments.figures import FIGURE14_SWEEP

    _warn_deprecated("run_figure14")
    budget = budget or ExperimentBudget()
    codes = codes or [("hexagonal_color_d3", "unionfind")]
    error_rates = error_rates or FIGURE14_SWEEP[:3]
    rows = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for code_name, decoder in codes:
            code = get_code(code_name)
            for physical_error in error_rates:
                noise = scaled_noise(physical_error)
                synthesis = synthesize(code, decoder, noise, budget)
                alpha_rates = evaluate_schedule(
                    code, synthesis.schedule, decoder, noise, budget
                )
                baseline = lowest_depth_schedule(code)
                baseline_rates = evaluate_schedule(code, baseline, decoder, noise, budget)
                rows.append(
                    {
                        "code": code_name,
                        "decoder": decoder,
                        "physical_error": physical_error,
                        "alpha_overall": alpha_rates.overall,
                        "lowest_overall": baseline_rates.overall,
                        "reduction": (
                            1.0 - alpha_rates.overall / baseline_rates.overall
                            if baseline_rates.overall > 0
                            else 0.0
                        ),
                    }
                )
    return rows


def run_figure15(
    budget: ExperimentBudget | None = None, *, codes: list[str] | None = None
) -> list[dict]:
    """Legacy Figure 15 driver (use the ``figure15`` suite instead)."""
    _warn_deprecated("run_figure15")
    budget = budget or ExperimentBudget()
    codes = codes or ["rotated_surface_d3"]
    rows = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for code_name in codes:
            code = get_code(code_name)
            ancillas = [code.num_qubits + s for s in range(code.num_stabilizers)]
            noise = non_uniform_noise(
                ancillas, variance=0.6, seed=budget.stage_seed("noise")
            )
            synthesis = synthesize(code, "mwpm", noise, budget)
            for label, schedule in (
                ("alphasyndrome", synthesis.schedule),
                ("google", google_surface_schedule(code)),
            ):
                rates = evaluate_schedule(code, schedule, "mwpm", noise, budget)
                rows.append(
                    {
                        "code": code_name,
                        "schedule": label,
                        "err_x": rates.error_x,
                        "err_z": rates.error_z,
                        "overall": rates.overall,
                        "depth": schedule.depth,
                    }
                )
    return rows
