"""Declarative experiment suites on the ``repro.api`` stack.

This module collapses the historical two-stack split of the repository —
the scale machinery (worker-invariant sharding, the content-addressed
chunk cache, adaptive precision budgets, resumable sweeps) on one side and
the hand-rolled paper-table drivers on the other — into one abstraction:

:class:`ExperimentRow`
    one output row of a paper table/figure, expressed as a tuple of named
    :class:`~repro.api.spec.RunSpec` executions plus a ``derive`` callable
    that folds the executed pipelines into the published row dictionary.

:class:`ExperimentSuite`
    a named, registered builder mapping a :class:`SuiteConfig` (budget,
    seed, quick/full, workers) to the suite's rows.  The paper assets
    (``table2`` ... ``figure15``) register themselves via
    :func:`register_suite` from their declaration modules.

:class:`SuiteRunner`
    executes suites through :class:`repro.api.Pipeline` — every run gets
    the pool-sharded hot path (``workers``), the chunk cache and the
    adaptive stopping rule for free — memoises AlphaSyndrome syntheses on
    :class:`SynthSpec` so rows that evaluate one synthesised schedule under
    several decoders search once, and resumes completed rows from the
    :class:`~repro.experiments.artifacts.ArtifactStore` with zero
    resampling.

Determinism contract: every evaluation spec carries
``eval_stage="evaluation"``, so its sampling streams are derived from
``named_stream(seed, "evaluation")`` — exactly the stage stream the legacy
drivers (:mod:`repro.experiments.legacy`) consumed.  At fixed seeds and
quick budgets the suite output is therefore **bit-identical** to the
legacy output (pinned by ``tests/test_suite_equivalence.py``), for every
worker count.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path
from types import SimpleNamespace

from repro.api.pipeline import Pipeline, RunResult
from repro.api.registries import schedulers
from repro.api.registry import parse_spec
from repro.api.spec import Budget, RunSpec
from repro.experiments.artifacts import ArtifactStore, row_fingerprint
from repro.seeding import stage_seed
from repro.sim.estimator import LogicalErrorRates

__all__ = [
    "EVALUATION_STAGE",
    "QUICK_BUDGET",
    "ExperimentRow",
    "ExperimentRun",
    "ExperimentSuite",
    "RowOutcome",
    "RowView",
    "SUITES",
    "SuiteConfig",
    "SuiteResult",
    "SuiteRowError",
    "SuiteRunner",
    "SynthSpec",
    "available_suites",
    "comparison_row",
    "get_suite",
    "register_suite",
    "run_suite",
    "synthesis_scheduler",
]

#: Budget reproducing the legacy ``ExperimentBudget`` defaults — the
#: laptop-sized "quick" rendition of the paper's tables.  Paper-scale runs
#: raise the numbers (and usually set ``target_rse``).
QUICK_BUDGET = Budget(
    shots=400, synthesis_shots=150, iterations_per_step=4, max_evaluations=24
)

#: Seeding stage named by every suite evaluation spec; matches the legacy
#: ``ExperimentBudget.stage_stream("evaluation")`` derivation bit for bit.
EVALUATION_STAGE = "evaluation"


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SuiteConfig:
    """Suite-wide execution knobs: budget, seed, quick/full and workers.

    ``budget.target_rse`` switches every evaluation to adaptive
    precision-targeted sampling (see :class:`repro.api.Budget`); with it
    unset the suite reproduces the fixed-shot legacy output bit for bit.
    ``workers`` pools the sampling/decoding hot path and the synthesis
    evaluator — it never changes any number.
    """

    budget: Budget = QUICK_BUDGET
    seed: int | None = 0
    quick: bool = True
    workers: int = 1

    @classmethod
    def from_experiment_budget(
        cls, budget, *, quick: bool = True, workers: int = 1
    ) -> "SuiteConfig":
        """Translate a legacy :class:`ExperimentBudget` into a SuiteConfig."""
        return cls(
            budget=Budget(
                shots=budget.shots,
                synthesis_shots=budget.synthesis_shots,
                iterations_per_step=budget.iterations_per_step,
                max_evaluations=budget.max_evaluations,
            ),
            seed=budget.seed,
            quick=quick,
            workers=workers,
        )

    def replace(self, **changes) -> "SuiteConfig":
        """Return a copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def spec(self, **overrides) -> RunSpec:
        """An evaluation RunSpec carrying this config's budget/seed/workers."""
        return RunSpec(
            budget=self.budget,
            seed=self.seed,
            workers=self.workers,
            eval_stage=EVALUATION_STAGE,
            **overrides,
        )

    def stage_seed(self, stage: str) -> int | None:
        """Integer stage seed for spec strings (e.g. the Figure 15 noise)."""
        return stage_seed(self.seed, stage)


def synthesis_scheduler(compile_decoder: str | None = None) -> str:
    """The AlphaSyndrome scheduler spec, optionally compiled cross-decoder.

    ``compile_decoder=None`` synthesises against the run's own decoder;
    naming one produces Table 4's cross cells, e.g.
    ``"alphasyndrome:compile_decoder=bposd"`` evaluated with
    ``decoder="unionfind"``.
    """
    if compile_decoder is None:
        return "alphasyndrome"
    return f"alphasyndrome:compile_decoder={compile_decoder}"


# ----------------------------------------------------------------------
# The synthesis-spec variant
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SynthSpec:
    """What uniquely determines one AlphaSyndrome search.

    The synthesis-only variant of :class:`RunSpec`: the code, the noise,
    the decoder the schedule is *compiled for* (which Table 4 decouples
    from the decoder that evaluates it), the search budget and the seed.
    The runner memoises :class:`~repro.core.SynthesisResult` objects on
    this key, so a suite that evaluates one synthesised schedule in many
    cells (Table 4's 2x2 matrix, Figure 12's schedule comparison) searches
    once per distinct SynthSpec — exactly like the legacy drivers'
    hand-rolled loops, but derived from the specs instead of re-coded per
    table.
    """

    code: str
    decoder: str
    noise: str = "brisbane"
    synthesis_shots: int = 300
    iterations_per_step: int = 4
    max_evaluations: int | None = None
    seed: int | None = 0
    #: Canonical scheduler spec (compile_decoder resolved into ``decoder``,
    #: remaining arguments — e.g. ``rollout_batch`` — kept sorted) so two
    #: different search configurations can never share a memo slot.
    scheduler: str = "alphasyndrome"

    @classmethod
    def from_run_spec(cls, spec: RunSpec) -> "SynthSpec | None":
        """The synthesis key of ``spec`` (``None`` for fixed schedulers)."""
        name, positional, keyword = parse_spec(spec.scheduler)
        if name not in schedulers or schedulers.entry(name).name != "alphasyndrome":
            return None
        if positional:
            # Positional scheduler arguments have no canonical spelling;
            # skip sharing rather than risk keying two searches together.
            return None
        keyword = dict(keyword)
        compile_decoder = keyword.pop("compile_decoder", spec.decoder)
        extra = ",".join(f"{key}={keyword[key]}" for key in sorted(keyword))
        return cls(
            code=spec.code,
            decoder=str(compile_decoder),
            noise=spec.noise,
            synthesis_shots=spec.budget.synthesis_shots,
            iterations_per_step=spec.budget.iterations_per_step,
            max_evaluations=spec.budget.max_evaluations,
            seed=spec.seed,
            scheduler="alphasyndrome" + (f":{extra}" if extra else ""),
        )


# ----------------------------------------------------------------------
# Rows
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentRun:
    """One named RunSpec execution inside a row (a 'cell')."""

    name: str
    spec: RunSpec


@dataclass(frozen=True)
class ExperimentRow:
    """One published table/figure row: named runs plus a derivation.

    ``derive`` receives a :class:`RowView` over the executed pipelines and
    returns the row dictionary in its published key order (the renderer
    takes column order from the first row).
    """

    key: str
    runs: "tuple[ExperimentRun, ...]"
    derive: "Callable[[RowView], dict]"

    def __post_init__(self) -> None:
        names = [run.name for run in self.runs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate run names in row {self.key!r}: {names}")

    def run_payloads(self) -> "list[tuple[str, dict]]":
        """``(name, spec payload)`` pairs for fingerprinting."""
        return [(run.name, run.spec.to_dict()) for run in self.runs]


class RowView:
    """Executed pipelines of one row, as seen by its ``derive`` callable."""

    def __init__(self, row: ExperimentRow, pipelines: "dict[str, Pipeline]") -> None:
        self._row = row
        self._pipelines = pipelines

    def pipeline(self, name: str) -> Pipeline:
        """The executed :class:`Pipeline` of run ``name`` (full stage access)."""
        return self._pipelines[name]

    def spec(self, name: str) -> RunSpec:
        """The :class:`RunSpec` run ``name`` executed."""
        return self._pipelines[name].spec

    def code(self, name: str):
        """The constructed code object of run ``name`` (n/k/d columns)."""
        return self._pipelines[name].code

    def rates(self, name: str):
        """The measured :class:`~repro.sim.LogicalErrorRates` of run ``name``."""
        return self._pipelines[name].rates

    def depth(self, name: str) -> int:
        """The schedule depth of run ``name``."""
        return self._pipelines[name].schedule.depth

    def result(self, name: str) -> RunResult:
        """The terminal :class:`RunResult` of run ``name``."""
        return self._pipelines[name].result


def comparison_row(
    code: str,
    decoder: str,
    config: SuiteConfig,
    *,
    noise: str = "brisbane",
    key: str | None = None,
) -> ExperimentRow:
    """AlphaSyndrome vs lowest-depth on one (code, decoder): Table 2's shape."""
    return ExperimentRow(
        key=key or f"{code}/{decoder}",
        runs=(
            ExperimentRun(
                "alpha",
                config.spec(
                    code=code, noise=noise, decoder=decoder, scheduler=synthesis_scheduler()
                ),
            ),
            ExperimentRun(
                "lowest",
                config.spec(
                    code=code, noise=noise, decoder=decoder, scheduler="lowest_depth"
                ),
            ),
        ),
        derive=_derive_comparison,
    )


def _derive_comparison(view: RowView) -> dict:
    code = view.code("alpha")
    spec = view.spec("alpha")
    alpha = view.rates("alpha")
    lowest = view.rates("lowest")
    reduction = 0.0
    if lowest.overall > 0:
        reduction = 1.0 - alpha.overall / lowest.overall
    return {
        "code": spec.code,
        "n": code.num_qubits,
        "k": code.num_logical_qubits,
        "d": code.declared_distance,
        "decoder": spec.decoder,
        "alpha_err_x": alpha.error_x,
        "alpha_err_z": alpha.error_z,
        "alpha_overall": alpha.overall,
        "alpha_depth": view.depth("alpha"),
        "lowest_err_x": lowest.error_x,
        "lowest_err_z": lowest.error_z,
        "lowest_overall": lowest.overall,
        "lowest_depth": view.depth("lowest"),
        "overall_reduction": reduction,
    }


# ----------------------------------------------------------------------
# Suite registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentSuite:
    """A named builder of rows (one per paper table/figure)."""

    name: str
    build: "Callable[[SuiteConfig], Iterable[ExperimentRow]]"
    help: str = ""

    def rows(self, config: SuiteConfig) -> "list[ExperimentRow]":
        """The suite's rows under ``config`` (builder output, materialised)."""
        return list(self.build(config))


#: Registered suites by name.  Populated by the declaration modules
#: (``repro.experiments.table2`` ...), which ``repro.experiments`` imports —
#: import the package, not this module, to see them all.
SUITES: "dict[str, ExperimentSuite]" = {}


def register_suite(name: str, *, help: str = "") -> Callable:
    """Decorator registering a row builder as the suite ``name``."""

    def decorator(build: Callable) -> Callable:
        if name in SUITES:
            raise ValueError(f"duplicate experiment suite {name!r}")
        SUITES[name] = ExperimentSuite(name=name, build=build, help=help)
        return build

    return decorator


def get_suite(name: str) -> ExperimentSuite:
    """Resolve a registered suite by name.

    Raises
    ------
    KeyError
        If no suite of that name is registered (the message lists what is).
    """
    try:
        return SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment suite {name!r}; available: {', '.join(available_suites())}"
        ) from None


def available_suites() -> "list[str]":
    """Sorted names of every registered suite."""
    return sorted(SUITES)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
class SuiteRowError(RuntimeError):
    """A suite row failed.  Rows completed before it remain in the store."""

    def __init__(self, suite: str, key: str, error: BaseException) -> None:
        super().__init__(f"suite {suite!r} row {key!r} failed: {error}")
        self.suite = suite
        self.key = key
        self.error = error


@dataclass
class RowOutcome:
    """One completed (or store-replayed) row of a suite run."""

    key: str
    fingerprint: str
    row: dict
    results: "list[dict]" = field(default_factory=list)
    loaded: bool = False

    def _adaptive_sum(self, field_name: str) -> int:
        return sum(
            (result.get("adaptive") or {}).get(field_name, 0) for result in self.results
        )

    @property
    def cache_hits(self) -> int:
        """Chunk-cache replays across the row's runs (adaptive mode only)."""
        return self._adaptive_sum("cache_hits")

    @property
    def fresh_chunks(self) -> int:
        """Freshly sampled chunks across the row's runs (adaptive mode only)."""
        return self._adaptive_sum("fresh_chunks")

    def record(self) -> dict:
        """The artifact-store record of this outcome."""
        return {
            "key": self.key,
            "fingerprint": self.fingerprint,
            "row": self.row,
            "runs": self.results,
        }


@dataclass
class SuiteResult:
    """All row outcomes of one suite run plus the written artifact paths."""

    suite: str
    config: SuiteConfig
    outcomes: "list[RowOutcome]"
    rows_path: Path | None = None
    text_path: Path | None = None
    json_path: Path | None = None

    @property
    def rows(self) -> "list[dict]":
        """The published row dictionaries, in suite order."""
        return [outcome.row for outcome in self.outcomes]

    @property
    def executed(self) -> "list[RowOutcome]":
        """Outcomes that actually ran this time (not replayed from the store)."""
        return [outcome for outcome in self.outcomes if not outcome.loaded]

    @property
    def resumed(self) -> "list[RowOutcome]":
        """Outcomes replayed from the artifact store without re-execution."""
        return [outcome for outcome in self.outcomes if outcome.loaded]

    @property
    def cache_hits(self) -> int:
        """Chunk-cache replays summed over the executed rows (adaptive mode)."""
        return sum(outcome.cache_hits for outcome in self.executed)

    @property
    def fresh_chunks(self) -> int:
        """Freshly sampled chunks summed over the executed rows (adaptive mode)."""
        return sum(outcome.fresh_chunks for outcome in self.executed)

    def summary(self) -> str:
        """One-line human summary: row counts plus cache counters when adaptive."""
        parts = [
            f"{self.suite}: {len(self.outcomes)} rows"
            f" ({len(self.executed)} run, {len(self.resumed)} resumed)"
        ]
        if any((result.get("adaptive")) for o in self.executed for result in o.results):
            parts.append(
                f"cache_hits={self.cache_hits} fresh_chunks={self.fresh_chunks}"
            )
        return " ".join(parts)


class _RemoteRun:
    """Duck-typed stand-in for an executed :class:`Pipeline` in server mode.

    Built from a ``repro serve`` RunResult payload; exposes exactly the
    attributes :class:`RowView` reaches for (``spec``, ``code``, ``rates``,
    ``schedule.depth``, ``result``).  The reconstructed
    :class:`RunResult` round-trips to the served payload bit for bit, so
    artifact-store rows are identical whichever mode produced them.
    """

    def __init__(self, spec: RunSpec, payload: dict) -> None:
        self.spec = spec
        adaptive = payload.get("adaptive")
        shots_by_basis = converged = None
        if adaptive is not None:
            shots_by_basis = {
                basis: entry["shots"] for basis, entry in adaptive["bases"].items()
            }
            converged = adaptive["converged"]
        self.rates = LogicalErrorRates(
            error_x=payload["error_x"],
            error_z=payload["error_z"],
            shots=payload["shots"],
            depth=payload["depth"],
            shots_by_basis=shots_by_basis,
            converged=converged,
        )
        self.schedule = SimpleNamespace(depth=payload["depth"])
        self.result = RunResult(
            spec=spec,
            rates=self.rates,
            depth=payload["depth"],
            synthesis_evaluations=payload.get("synthesis_evaluations"),
            baseline_overall=payload.get("baseline_overall"),
            adaptive=adaptive,
        )

    @property
    def code(self):
        """The constructed code object (built locally; codes are cheap)."""
        from repro.api import registries

        return registries.codes.build(self.spec.code)


class SuiteRunner:
    """Executes suite rows: cached, parallel, adaptive and resumable.

    Parameters
    ----------
    config:
        The :class:`SuiteConfig` every row builder receives.
    cache:
        Optional :class:`repro.cache.ResultCache` (or its directory) handed
        to every pipeline; adaptive runs resume/refine chunk summaries from
        it with zero resampling of converged points.
    store:
        Optional :class:`~repro.experiments.artifacts.ArtifactStore` (or
        its directory).  With a store, completed rows are appended as they
        finish and replayed on the next run instead of re-executed.
    server:
        Optional ``repro serve`` endpoint (URL string or
        :class:`repro.serve.client.ServeClient`).  With a server, rows are
        not executed in this process: every cell is submitted as a job
        (identical cells across suites coalesce server-side) and results
        stream back — bit-identical to local execution, so resumed stores
        mix freely with either mode.
    """

    def __init__(
        self,
        config: SuiteConfig | None = None,
        *,
        cache=None,
        store=None,
        server=None,
        server_timeout: float = 900.0,
    ) -> None:
        self.config = config or SuiteConfig()
        if isinstance(cache, (str, Path)):
            from repro.cache import ResultCache

            cache = ResultCache(cache)
        self.cache = cache
        if isinstance(store, (str, Path)):
            store = ArtifactStore(store)
        self.store: ArtifactStore | None = store
        if isinstance(server, str):
            from repro.serve.client import ServeClient

            server = ServeClient(server)
        self.server = server
        self.server_timeout = server_timeout
        #: SynthesisResult memo shared by every row this runner executes.
        self._syntheses: dict = {}

    @property
    def synthesis_searches(self) -> int:
        """Distinct AlphaSyndrome searches performed so far."""
        return len(self._syntheses)

    # ------------------------------------------------------------------
    def run_row(self, row: ExperimentRow) -> "tuple[dict, list[RunResult]]":
        """Execute one row's pipelines and derive its published dictionary."""
        if self.server is not None:
            return self._run_row_remote(row)
        pipelines: dict[str, Pipeline] = {}
        for run in row.runs:
            pipeline = Pipeline(run.spec, cache=self.cache)
            synth_key = SynthSpec.from_run_spec(run.spec)
            if synth_key is not None:
                if synth_key in self._syntheses:
                    # cached_property honours pre-seeded instance state:
                    # identical (deterministic) searches are never repeated.
                    pipeline.__dict__["_scheduled"] = self._syntheses[synth_key]
                else:
                    self._syntheses[synth_key] = pipeline._scheduled
            pipeline.run()
            pipelines[run.name] = pipeline
        view = RowView(row, pipelines)
        return row.derive(view), [pipelines[run.name].result for run in row.runs]

    def _run_row_remote(self, row: ExperimentRow) -> "tuple[dict, list[RunResult]]":
        """Run one row against the configured server.

        Every cell is submitted before any result is awaited, so the
        server's worker fleet runs a row's cells concurrently (and
        deduplicates cells shared with other rows or other clients).
        """
        job_ids = {
            run.name: self.server.submit(run.spec)["job"]["id"] for run in row.runs
        }
        remotes = {
            run.name: _RemoteRun(
                run.spec,
                self.server.result(job_ids[run.name], timeout=self.server_timeout),
            )
            for run in row.runs
        }
        view = RowView(row, remotes)
        return row.derive(view), [remotes[run.name].result for run in row.runs]

    def run_rows(self, rows: "Iterable[ExperimentRow]") -> "list[dict]":
        """Execute ``rows`` (no store) and return their dictionaries."""
        return [self.run_row(row)[0] for row in rows]

    def run(self, suite: "ExperimentSuite | str", *, resume: bool = True) -> SuiteResult:
        """Run one suite end to end, resuming completed rows from the store."""
        if isinstance(suite, str):
            suite = get_suite(suite)
        rows = suite.rows(self.config)
        stored = self.store.load(suite.name) if (self.store is not None and resume) else {}
        outcomes: list[RowOutcome] = []
        for row in rows:
            fingerprint = row_fingerprint(suite.name, row.key, row.run_payloads())
            record = stored.get(fingerprint)
            if record is not None:
                outcomes.append(
                    RowOutcome(
                        key=row.key,
                        fingerprint=fingerprint,
                        row=record["row"],
                        results=record.get("runs", []),
                        loaded=True,
                    )
                )
                continue
            try:
                row_dict, results = self.run_row(row)
            except Exception as error:
                raise SuiteRowError(suite.name, row.key, error) from error
            outcome = RowOutcome(
                key=row.key,
                fingerprint=fingerprint,
                row=row_dict,
                results=[result.to_dict() for result in results],
            )
            if self.store is not None:
                self.store.append(suite.name, outcome.record())
            outcomes.append(outcome)
        result = SuiteResult(suite=suite.name, config=self.config, outcomes=outcomes)
        if self.store is not None:
            result.rows_path = self.store.rows_path(suite.name)
            result.text_path, result.json_path = self.store.render(suite.name, result.rows)
        return result


def run_suite(
    suite: "ExperimentSuite | str",
    config: SuiteConfig | None = None,
    *,
    cache=None,
    store=None,
    resume: bool = True,
) -> SuiteResult:
    """One-call convenience wrapper around :class:`SuiteRunner`."""
    return SuiteRunner(config, cache=cache, store=store).run(suite, resume=resume)
