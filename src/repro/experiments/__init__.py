"""Experiment suites that regenerate every table and figure of the paper.

The paper assets are declared as :class:`~repro.experiments.suite
.ExperimentSuite` objects (importing this package registers all of them in
:data:`~repro.experiments.suite.SUITES`) and executed through the
``repro.api`` stack — worker pools, the chunk cache, adaptive precision
targets and resumable artifact stores all apply.  Entry points:

* ``repro experiments run table2 --quick`` (the CLI);
* :func:`repro.experiments.suite.run_suite` (programmatic);
* the historical ``run_table2(budget)`` drivers below (suite-backed).
"""

from repro.experiments.common import ExperimentBudget, render_table, write_results
from repro.experiments.figures import (
    run_figure7,
    run_figure12,
    run_figure13,
    run_figure14,
    run_figure15,
)
from repro.experiments.suite import (
    SUITES,
    ExperimentRow,
    ExperimentRun,
    ExperimentSuite,
    SuiteConfig,
    SuiteResult,
    SuiteRowError,
    SuiteRunner,
    available_suites,
    get_suite,
    register_suite,
    run_suite,
)
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.threshold import run_threshold, threshold_crossing

#: Legacy-shaped registry used by ``python -m repro.experiments <asset>``
#: and external callers: asset name -> suite-backed driver function.
EXPERIMENTS = {
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "figure7": run_figure7,
    "figure12": run_figure12,
    "figure13": run_figure13,
    "figure14": run_figure14,
    "figure15": run_figure15,
    "threshold": run_threshold,
}

__all__ = [
    "ExperimentBudget",
    "EXPERIMENTS",
    "SUITES",
    "ExperimentRow",
    "ExperimentRun",
    "ExperimentSuite",
    "SuiteConfig",
    "SuiteResult",
    "SuiteRowError",
    "SuiteRunner",
    "available_suites",
    "get_suite",
    "register_suite",
    "render_table",
    "run_suite",
    "write_results",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_figure7",
    "run_figure12",
    "run_figure13",
    "run_figure14",
    "run_figure15",
    "run_threshold",
    "threshold_crossing",
]
