"""Experiment drivers that regenerate every table and figure of the paper."""

from repro.experiments.common import ExperimentBudget, render_table, write_results
from repro.experiments.figures import (
    run_figure7,
    run_figure12,
    run_figure13,
    run_figure14,
    run_figure15,
)
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4

#: Registry used by ``python -m repro.experiments <asset>``.
EXPERIMENTS = {
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "figure7": run_figure7,
    "figure12": run_figure12,
    "figure13": run_figure13,
    "figure14": run_figure14,
    "figure15": run_figure15,
}

__all__ = [
    "ExperimentBudget",
    "EXPERIMENTS",
    "render_table",
    "write_results",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_figure7",
    "run_figure12",
    "run_figure13",
    "run_figure14",
    "run_figure15",
]
