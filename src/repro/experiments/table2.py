"""Table 2: AlphaSyndrome vs lowest-depth schedules across code families.

The paper's table spans 26 code/decoder instances over five families
(hexagonal colour, square-octagonal colour, hyperbolic colour, hyperbolic
surface, defect surface).  ``TABLE2_FULL_INSTANCES`` lists the full sweep in
this reproduction (hyperbolic families substituted as documented in
DESIGN.md); ``TABLE2_QUICK_INSTANCES`` is the subset exercised by the
default benchmark budget.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentBudget, compare_with_lowest_depth

__all__ = ["TABLE2_FULL_INSTANCES", "TABLE2_QUICK_INSTANCES", "run_table2"]

#: (code registry name, decoder) pairs mirroring the paper's Table 2 rows.
TABLE2_FULL_INSTANCES: list[tuple[str, str]] = [
    # Hexagonal colour codes.
    ("hexagonal_color_d3", "bposd"),
    ("hexagonal_color_d3", "unionfind"),
    ("hexagonal_color_d5", "bposd"),
    ("hexagonal_color_d5", "unionfind"),
    ("hexagonal_color_d7", "bposd"),
    ("hexagonal_color_d7", "unionfind"),
    ("hexagonal_color_d9", "bposd"),
    ("hexagonal_color_d9", "unionfind"),
    # Square-octagonal colour codes (substituted family, see DESIGN.md).
    ("square_octagonal_d3", "bposd"),
    ("square_octagonal_d3", "unionfind"),
    ("square_octagonal_d5", "bposd"),
    ("square_octagonal_d5", "unionfind"),
    ("square_octagonal_d7", "bposd"),
    ("square_octagonal_d7", "unionfind"),
    # Hyperbolic colour codes (substituted with HGP codes).
    ("hyperbolic_color_k4", "unionfind"),
    ("hyperbolic_color_k8", "unionfind"),
    ("hyperbolic_color_k16", "unionfind"),
    # Hyperbolic surface codes (substituted with HGP / toric codes).
    ("hyperbolic_surface_k4", "mwpm"),
    ("hyperbolic_surface_toric3", "mwpm"),
    ("hyperbolic_surface_toric4", "mwpm"),
    ("hyperbolic_surface_k16", "mwpm"),
    # Defect surface codes.
    ("defect_surface_d5", "mwpm"),
    ("defect_surface_d7", "mwpm"),
]

#: Small subset used by the default benchmark budget.
TABLE2_QUICK_INSTANCES: list[tuple[str, str]] = [
    ("hexagonal_color_d3", "unionfind"),
    ("hexagonal_color_d3", "bposd"),
    ("square_octagonal_d3", "unionfind"),
    ("hyperbolic_color_k4", "unionfind"),
    ("defect_surface_d5", "mwpm"),
]


def run_table2(
    budget: ExperimentBudget | None = None,
    *,
    instances: list[tuple[str, str]] | None = None,
) -> list[dict]:
    """Regenerate Table 2 rows (logical error rates and depths)."""
    budget = budget or ExperimentBudget()
    instances = instances or TABLE2_QUICK_INSTANCES
    rows = []
    for code_name, decoder in instances:
        rows.append(compare_with_lowest_depth(code_name, decoder, budget))
    return rows
