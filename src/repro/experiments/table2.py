"""Table 2: AlphaSyndrome vs lowest-depth schedules across code families.

The paper's table spans 26 code/decoder instances over five families
(hexagonal colour, square-octagonal colour, hyperbolic colour, hyperbolic
surface, defect surface).  ``TABLE2_FULL_INSTANCES`` lists the full sweep in
this reproduction (hyperbolic families substituted as documented in
DESIGN.md); ``TABLE2_QUICK_INSTANCES`` is the subset exercised by the
default quick budget.

Declared as the ``table2`` :class:`~repro.experiments.suite.ExperimentSuite`
— every instance is one :func:`~repro.experiments.suite.comparison_row`
(an ``alphasyndrome`` run plus a ``lowest_depth`` run) — and executed
through the Pipeline/cache/adaptive stack by ``repro experiments run
table2``.  :func:`run_table2` keeps the historical driver signature.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentBudget
from repro.experiments.suite import (
    ExperimentRow,
    SuiteConfig,
    SuiteRunner,
    comparison_row,
    register_suite,
)

__all__ = [
    "TABLE2_FULL_INSTANCES",
    "TABLE2_QUICK_INSTANCES",
    "run_table2",
    "table2_rows",
]

#: (code registry name, decoder) pairs mirroring the paper's Table 2 rows.
TABLE2_FULL_INSTANCES: list[tuple[str, str]] = [
    # Hexagonal colour codes.
    ("hexagonal_color_d3", "bposd"),
    ("hexagonal_color_d3", "unionfind"),
    ("hexagonal_color_d5", "bposd"),
    ("hexagonal_color_d5", "unionfind"),
    ("hexagonal_color_d7", "bposd"),
    ("hexagonal_color_d7", "unionfind"),
    ("hexagonal_color_d9", "bposd"),
    ("hexagonal_color_d9", "unionfind"),
    # Square-octagonal colour codes (substituted family, see DESIGN.md).
    ("square_octagonal_d3", "bposd"),
    ("square_octagonal_d3", "unionfind"),
    ("square_octagonal_d5", "bposd"),
    ("square_octagonal_d5", "unionfind"),
    ("square_octagonal_d7", "bposd"),
    ("square_octagonal_d7", "unionfind"),
    # Hyperbolic colour codes (substituted with HGP codes).
    ("hyperbolic_color_k4", "unionfind"),
    ("hyperbolic_color_k8", "unionfind"),
    ("hyperbolic_color_k16", "unionfind"),
    # Hyperbolic surface codes (substituted with HGP / toric codes).
    ("hyperbolic_surface_k4", "mwpm"),
    ("hyperbolic_surface_toric3", "mwpm"),
    ("hyperbolic_surface_toric4", "mwpm"),
    ("hyperbolic_surface_k16", "mwpm"),
    # Defect surface codes.
    ("defect_surface_d5", "mwpm"),
    ("defect_surface_d7", "mwpm"),
]

#: Small subset used by the default quick budget.
TABLE2_QUICK_INSTANCES: list[tuple[str, str]] = [
    ("hexagonal_color_d3", "unionfind"),
    ("hexagonal_color_d3", "bposd"),
    ("square_octagonal_d3", "unionfind"),
    ("hyperbolic_color_k4", "unionfind"),
    ("defect_surface_d5", "mwpm"),
]


def table2_rows(
    config: SuiteConfig, *, instances: list[tuple[str, str]] | None = None
) -> list[ExperimentRow]:
    """The Table 2 suite rows for ``config`` (quick/full instance list)."""
    if instances is None:
        instances = TABLE2_QUICK_INSTANCES if config.quick else TABLE2_FULL_INSTANCES
    return [comparison_row(code, decoder, config) for code, decoder in instances]


@register_suite(
    "table2",
    help="AlphaSyndrome vs lowest-depth logical error rates across code families",
)
def _table2_suite(config: SuiteConfig) -> list[ExperimentRow]:
    return table2_rows(config)


def run_table2(
    budget: ExperimentBudget | None = None,
    *,
    instances: list[tuple[str, str]] | None = None,
) -> list[dict]:
    """Regenerate Table 2 rows (logical error rates and depths).

    Historical driver signature, now suite-backed: bit-identical to the
    legacy loop at fixed seeds, but executed through the Pipeline stack.
    """
    config = SuiteConfig.from_experiment_budget(budget or ExperimentBudget())
    return SuiteRunner(config).run_rows(table2_rows(config, instances=instances))
