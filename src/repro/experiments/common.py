"""Shared plumbing for the experiment drivers.

Every experiment driver is a function that returns a list of row
dictionaries; :func:`render_table` renders rows as a fixed-width text table
and :func:`write_results` drops both the text and the JSON next to each
other (mirroring the paper artifact's ``/result`` folder).

``ExperimentBudget`` centralises the knobs that trade fidelity for runtime:
the defaults are sized so the complete suite of drivers finishes on a laptop
in minutes; the paper-scale settings (thousands of MCTS iterations, millions
of shots) are obtained by raising the numbers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.api.registries import codes, decoders
from repro.codes.base import StabilizerCode
from repro.core import AlphaSyndrome, MCTSConfig, SynthesisResult
from repro.noise import NoiseModel, brisbane_noise
from repro.scheduling import lowest_depth_schedule, trivial_schedule
from repro.seeding import named_stream, stream_to_int
from repro.sim import LogicalErrorRates, estimate_logical_error_rates

#: Registry-backed code lookup shared by the drivers (same call shape as the
#: deprecated ``repro.codes.get_code`` but without the deprecation warning).
get_code = codes.build

__all__ = [
    "ExperimentBudget",
    "compare_with_lowest_depth",
    "evaluate_schedule",
    "render_table",
    "write_results",
    "get_code",
]


@dataclass
class ExperimentBudget:
    """Compute budget shared by all experiment drivers."""

    shots: int = 400
    synthesis_shots: int = 150
    iterations_per_step: int = 4
    max_evaluations: int = 24
    seed: int = 0

    def stage_stream(self, stage: str):
        """Independent ``SeedSequence`` stream for a named stage of a driver.

        Replaces the historical ``seed``, ``seed + 1``, ``seed + 11``
        offsets: streams for distinct stage names are independent by
        construction and stable under the addition of new stages.
        """
        return named_stream(self.seed, stage)

    def stage_seed(self, stage: str) -> int:
        """Integer form of :meth:`stage_stream` for ``seed: int`` APIs."""
        return stream_to_int(self.stage_stream(stage))

    def mcts_config(self) -> MCTSConfig:
        return MCTSConfig(
            iterations_per_step=self.iterations_per_step,
            seed=self.stage_seed("synthesis"),
            max_total_evaluations=self.max_evaluations,
        )


def synthesize(
    code: StabilizerCode,
    decoder: str,
    noise: NoiseModel,
    budget: ExperimentBudget,
) -> SynthesisResult:
    """Run AlphaSyndrome for ``code`` under ``noise`` targeting ``decoder``."""
    alpha = AlphaSyndrome(
        code=code,
        noise=noise,
        decoder_factory=decoders.build(decoder),
        shots=budget.synthesis_shots,
        mcts_config=budget.mcts_config(),
        seed=budget.stage_seed("synthesis"),
    )
    return alpha.synthesize()


def evaluate_schedule(
    code: StabilizerCode,
    schedule,
    decoder: str,
    noise: NoiseModel,
    budget: ExperimentBudget,
) -> LogicalErrorRates:
    """Estimate the logical error rates of an explicit schedule."""
    return estimate_logical_error_rates(
        code,
        schedule,
        noise,
        decoders.build(decoder),
        shots=budget.shots,
        seed=budget.stage_stream("evaluation"),
    )


def compare_with_lowest_depth(
    code_name: str,
    decoder: str,
    budget: ExperimentBudget,
    *,
    noise: NoiseModel | None = None,
) -> dict:
    """One Table-2-style row: AlphaSyndrome vs the lowest-depth baseline."""
    code = get_code(code_name)
    noise = noise or brisbane_noise()
    result = synthesize(code, decoder, noise, budget)
    alpha_rates = evaluate_schedule(code, result.schedule, decoder, noise, budget)
    baseline = lowest_depth_schedule(code)
    baseline_rates = evaluate_schedule(code, baseline, decoder, noise, budget)
    reduction = 0.0
    if baseline_rates.overall > 0:
        reduction = 1.0 - alpha_rates.overall / baseline_rates.overall
    return {
        "code": code_name,
        "n": code.num_qubits,
        "k": code.num_logical_qubits,
        "d": code.declared_distance,
        "decoder": decoder,
        "alpha_err_x": alpha_rates.error_x,
        "alpha_err_z": alpha_rates.error_z,
        "alpha_overall": alpha_rates.overall,
        "alpha_depth": result.schedule.depth,
        "lowest_err_x": baseline_rates.error_x,
        "lowest_err_z": baseline_rates.error_z,
        "lowest_overall": baseline_rates.overall,
        "lowest_depth": baseline.depth,
        "overall_reduction": reduction,
    }


def baseline_rows(code_name: str, decoder: str, budget: ExperimentBudget) -> dict:
    """Trivial vs lowest-depth comparison (no synthesis), used in sanity rows."""
    code = get_code(code_name)
    noise = brisbane_noise()
    rows = {}
    for label, schedule in (
        ("trivial", trivial_schedule(code)),
        ("lowest", lowest_depth_schedule(code)),
    ):
        rates = evaluate_schedule(code, schedule, decoder, noise, budget)
        rows[label] = rates
    return rows


def render_table(rows: list[dict], *, float_format: str = "{:.3e}") -> str:
    """Render row dictionaries as a fixed-width text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    rendered_rows = []
    for row in rows:
        rendered = []
        for column in columns:
            value = row.get(column)
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [
        max(len(str(column)), max(len(r[i]) for r in rendered_rows))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    separator = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rendered_rows
    )
    return "\n".join([header, separator, body])


def write_results(name: str, rows: list[dict], output_dir: str | Path = "results") -> Path:
    """Write ``rows`` as both text and JSON under ``output_dir``; returns the txt path."""
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    text_path = directory / f"{name}.txt"
    text_path.write_text(render_table(rows) + "\n")
    (directory / f"{name}.json").write_text(json.dumps(rows, indent=2, default=str))
    return text_path
