"""Shared plumbing for the experiment drivers.

This module keeps the pieces every driver generation has agreed on:

``ExperimentBudget``
    the *legacy* budget dataclass (pre-``repro.api``).  The suite-backed
    drivers translate it into an :class:`repro.api.Budget` via
    :meth:`repro.experiments.suite.SuiteConfig.from_experiment_budget`;
    new code should construct a :class:`~repro.experiments.suite.SuiteConfig`
    directly.

``render_table`` / ``write_results``
    the published artifact format — fixed-width text plus JSON side by
    side, mirroring the paper artifact's ``/result`` folder.  The format is
    pinned by golden-file tests (``tests/test_experiments_render.py``); any
    change to it is a deliberate, versioned decision.

The legacy comparison helpers (``compare_with_lowest_depth``,
``evaluate_schedule``, ``synthesize``, ``baseline_rows``) moved to
:mod:`repro.experiments.legacy` and are re-exported here for backwards
compatibility; they emit :class:`DeprecationWarning` when called.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.api.registries import codes
from repro.core import MCTSConfig
from repro.seeding import named_stream, stage_seed

#: Registry-backed code lookup shared by the drivers (same call shape as the
#: deprecated ``repro.codes.get_code`` but without the deprecation warning).
get_code = codes.build

__all__ = [
    "ExperimentBudget",
    "compare_with_lowest_depth",
    "evaluate_schedule",
    "render_table",
    "write_results",
    "get_code",
]

#: Names forwarded to :mod:`repro.experiments.legacy` (deprecated shims).
_LEGACY_FORWARDS = (
    "baseline_rows",
    "compare_with_lowest_depth",
    "evaluate_schedule",
    "synthesize",
)


def __getattr__(name: str):
    # Lazy forwarding avoids a common <-> legacy import cycle (legacy needs
    # ExperimentBudget from here) while keeping the historical import paths
    # (``from repro.experiments.common import compare_with_lowest_depth``)
    # alive for one release.
    if name in _LEGACY_FORWARDS:
        from repro.experiments import legacy

        return getattr(legacy, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class ExperimentBudget:
    """Compute budget shared by the legacy experiment drivers.

    Superseded by :class:`repro.api.Budget` +
    :class:`repro.experiments.suite.SuiteConfig`; still accepted by every
    ``run_*`` driver for backwards compatibility.
    """

    shots: int = 400
    synthesis_shots: int = 150
    iterations_per_step: int = 4
    max_evaluations: int = 24
    seed: int = 0

    def stage_stream(self, stage: str):
        """Independent ``SeedSequence`` stream for a named stage of a driver.

        Replaces the historical ``seed``, ``seed + 1``, ``seed + 11``
        offsets: streams for distinct stage names are independent by
        construction and stable under the addition of new stages.
        """
        return named_stream(self.seed, stage)

    def stage_seed(self, stage: str) -> int:
        """Integer form of :meth:`stage_stream` for ``seed: int`` APIs."""
        return stage_seed(self.seed, stage)

    def mcts_config(self) -> MCTSConfig:
        return MCTSConfig(
            iterations_per_step=self.iterations_per_step,
            seed=self.stage_seed("synthesis"),
            max_total_evaluations=self.max_evaluations,
        )


def render_table(rows: list[dict], *, float_format: str = "{:.3e}") -> str:
    """Render row dictionaries as a fixed-width text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    rendered_rows = []
    for row in rows:
        rendered = []
        for column in columns:
            value = row.get(column)
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [
        max(len(str(column)), max(len(r[i]) for r in rendered_rows))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    separator = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rendered_rows
    )
    return "\n".join([header, separator, body])


def write_results(name: str, rows: list[dict], output_dir: str | Path = "results") -> Path:
    """Write ``rows`` as both text and JSON under ``output_dir``; returns the txt path."""
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    text_path = directory / f"{name}.txt"
    text_path.write_text(render_table(rows) + "\n")
    (directory / f"{name}.json").write_text(json.dumps(rows, indent=2, default=str))
    return text_path
