"""Threshold experiment suite: logical-vs-physical rate crossing per code.

This is the first scenario family beyond the paper's own assets: for a
code family (rotated surface codes by default) and a decoder, sweep the
physical error rate and measure the logical error rate at two or more
distances.  Below threshold the larger distance suppresses the logical
rate (``ratio < 1``); above it the ordering flips.  Rows are one swept
physical rate each, with one run per distance, so the rendered table *is*
the threshold plot in fixed-width form, and
:func:`repro.analysis.threshold.estimate_crossing` interpolates the
crossing from the stored rows.

Every run goes through the standard suite stack — worker pools, the
content-addressed chunk cache and adaptive precision budgets
(``--target-rse``) all apply, which matters here: points far from
threshold converge in a chunk or two while points near the crossing
spend the ceiling.

The noise axis is a spec-string template, so the same suite shape covers
uniform (``"scaled:p={p}"``), biased (``"biased:p={p},eta=10"``) or
drifting noise — pass ``noise_template`` to :func:`threshold_rows` or
:func:`run_threshold`.

Default scheduler/decoder choice: the suite evaluates the *hook-robust*
``google`` schedule with the ``bposd`` decoder.  The memory-experiment
DEMs here are hypergraphs (two-qubit depolarizing mechanisms flip up to
four detectors), and the matching-based decoders approximate hyperedges:
MWPM mis-corrects a handful of *single-fault* symptoms, which puts a
linear-in-p floor under every distance and makes the curves parallel —
no crossing at any rate.  BP+OSD decodes every single hyperedge fault at
``d >= 5`` exactly (audited in ``tests/test_threshold.py``), so the
suppression regime and the crossing are actually visible.
"""

from __future__ import annotations

import math
from functools import partial

from repro.analysis.threshold import estimate_crossing, suppression_ratio
from repro.experiments.common import ExperimentBudget
from repro.experiments.suite import (
    ExperimentRow,
    ExperimentRun,
    RowView,
    SuiteConfig,
    SuiteRunner,
    register_suite,
)

__all__ = [
    "THRESHOLD_SWEEP",
    "THRESHOLD_SWEEP_QUICK",
    "threshold_rows",
    "threshold_crossing",
    "run_threshold",
]

#: Physical error rates swept in full mode (log-spaced; the d=3/d=5
#: crossing under the default google/bposd combination sits near 5e-2).
THRESHOLD_SWEEP: list[float] = [2e-3, 4e-3, 8e-3, 1.6e-2, 3.2e-2, 6.4e-2]

#: Quick-mode subset: three points bracketing the crossing.
THRESHOLD_SWEEP_QUICK: list[float] = [8e-3, 3.2e-2, 6.4e-2]

#: Surface-code distances compared in quick / full mode.
_QUICK_DISTANCES = (3, 5)
_FULL_DISTANCES = (3, 5, 7)


def _derive_threshold(view: RowView, *, physical_error: float, distances: tuple[int, ...]) -> dict:
    """Fold one swept point's per-distance runs into the published row.

    ``ratio`` is published as ``None`` when it is not finite (only the
    small distance measured zero errors, possible at quick Monte-Carlo
    budgets): the artifact files must stay strict JSON, and ``Infinity``
    is not a JSON token.
    """
    row: dict = {"p": physical_error}
    rates = {}
    for distance in distances:
        overall = view.rates(f"d{distance}").overall
        rates[distance] = overall
        row[f"err_d{distance}"] = overall
    smallest, largest = min(distances), max(distances)
    ratio = suppression_ratio(rates[smallest], rates[largest])
    row["ratio"] = ratio if math.isfinite(ratio) else None
    row["suppressed"] = rates[largest] < rates[smallest]
    return row


def threshold_rows(
    config: SuiteConfig,
    *,
    distances: "tuple[int, ...] | None" = None,
    error_rates: "list[float] | None" = None,
    code_template: str = "surface:d={d}",
    noise_template: str = "scaled:p={p}",
    decoder: str = "bposd",
    scheduler: str = "google",
) -> list[ExperimentRow]:
    """Build the threshold suite's rows: one per swept physical rate.

    Parameters
    ----------
    config:
        Suite-wide budget/seed/quick/workers configuration.
    distances:
        Code distances compared per point (default ``(3, 5)`` quick,
        ``(3, 5, 7)`` full).
    error_rates:
        Physical rates to sweep (default :data:`THRESHOLD_SWEEP_QUICK` /
        :data:`THRESHOLD_SWEEP` by mode).
    code_template:
        Code spec template with a ``{d}`` placeholder.
    noise_template:
        Noise spec template with a ``{p}`` placeholder (``repr`` of the
        swept rate is substituted, so floats round-trip exactly).
    decoder:
        Decoder spec evaluated at every point (default ``"bposd"`` — see
        the module docstring for why matching decoders flatten the
        curves here).
    scheduler:
        Scheduler spec (a fixed hook-robust schedule keeps the sweep
        cheap and clean; use ``"alphasyndrome"`` for a synthesis-aware
        threshold study).
    """
    if distances is None:
        distances = _QUICK_DISTANCES if config.quick else _FULL_DISTANCES
    if error_rates is None:
        error_rates = THRESHOLD_SWEEP_QUICK if config.quick else THRESHOLD_SWEEP
    distances = tuple(sorted(distances))
    rows = []
    for physical_error in error_rates:
        noise = noise_template.format(p=repr(physical_error))
        rows.append(
            ExperimentRow(
                key=f"p={physical_error!r}",
                runs=tuple(
                    ExperimentRun(
                        f"d{distance}",
                        config.spec(
                            code=code_template.format(d=distance),
                            noise=noise,
                            decoder=decoder,
                            scheduler=scheduler,
                        ),
                    )
                    for distance in distances
                ),
                derive=partial(
                    _derive_threshold,
                    physical_error=physical_error,
                    distances=distances,
                ),
            )
        )
    return rows


@register_suite(
    "threshold",
    help="Logical-vs-physical error rate crossing: surface code d=3 vs d=5(+7)",
)
def _threshold_suite(config: SuiteConfig) -> list[ExperimentRow]:
    """Default threshold suite: rotated surface codes under uniform noise."""
    return threshold_rows(config)


def threshold_crossing(rows: "list[dict]") -> float | None:
    """Interpolated threshold estimate from published threshold rows.

    ``rows`` are the suite's row dictionaries (``p`` plus ``err_d*``
    columns); the crossing of the smallest and largest distance curves is
    estimated with :func:`repro.analysis.threshold.estimate_crossing`.
    Returns ``None`` when the sweep does not bracket a crossing.
    """
    if not rows:
        return None
    distances = sorted(
        int(key[len("err_d"):]) for key in rows[0] if key.startswith("err_d")
    )
    if len(distances) < 2:
        return None
    ordered = sorted(rows, key=lambda row: row["p"])
    return estimate_crossing(
        [row["p"] for row in ordered],
        [row[f"err_d{distances[0]}"] for row in ordered],
        [row[f"err_d{distances[-1]}"] for row in ordered],
    )


def run_threshold(
    budget: "ExperimentBudget | None" = None,
    *,
    distances: "tuple[int, ...] | None" = None,
    error_rates: "list[float] | None" = None,
    noise_template: str = "scaled:p={p}",
    decoder: str = "bposd",
) -> list[dict]:
    """Driver-shaped entry point: run the threshold sweep, return the rows.

    Mirrors the historical ``run_table2(budget)`` signature family so the
    ``python -m repro.experiments threshold`` spelling works; the suite
    stack (`repro experiments run threshold`) is the richer interface.
    """
    config = SuiteConfig.from_experiment_budget(budget or ExperimentBudget())
    return SuiteRunner(config).run_rows(
        threshold_rows(
            config,
            distances=distances,
            error_rates=error_rates,
            noise_template=noise_template,
            decoder=decoder,
        )
    )
