"""Table 3: space-time volume comparison at comparable logical error rates.

For each family the paper pairs a small code scheduled by AlphaSyndrome with
a larger code running the lowest-depth baseline that reaches a similar
logical error rate, and compares ``T_round x #qubits``.  Each pair is one
:class:`~repro.experiments.suite.ExperimentRow` with an ``alpha`` run
(synthesis + evaluation on the small code) and a ``baseline`` run
(lowest-depth evaluation on the large code); the derivation folds both into
the volume-reduction row via :mod:`repro.analysis`.
"""

from __future__ import annotations

from functools import partial

from repro.analysis import estimate_space_time, space_time_reduction
from repro.experiments.common import ExperimentBudget
from repro.experiments.suite import (
    ExperimentRow,
    ExperimentRun,
    RowView,
    SuiteConfig,
    SuiteRunner,
    register_suite,
    synthesis_scheduler,
)

__all__ = ["TABLE3_PAIRS", "run_table3", "table3_rows"]

#: (family label, AlphaSyndrome code, baseline code, decoder) rows.
TABLE3_PAIRS: list[tuple[str, str, str, str]] = [
    ("hexagonal_color", "hexagonal_color_d3", "hexagonal_color_d5", "bposd"),
    ("square_octagonal", "square_octagonal_d3", "square_octagonal_d5", "bposd"),
    ("hyperbolic_surface", "hyperbolic_surface_toric3", "hyperbolic_surface_toric4", "mwpm"),
]


def _derive_table3(view: RowView, *, family: str) -> dict:
    alpha_rates = view.rates("alpha")
    baseline_rates = view.rates("baseline")
    alpha_estimate = estimate_space_time(
        view.code("alpha"), view.depth("alpha"), logical_error_rate=alpha_rates.overall
    )
    baseline_estimate = estimate_space_time(
        view.code("baseline"),
        view.depth("baseline"),
        logical_error_rate=baseline_rates.overall,
    )
    return {
        "family": family,
        "decoder": view.spec("alpha").decoder,
        "alpha_code": view.spec("alpha").code,
        "alpha_error": alpha_rates.overall,
        "alpha_depth": view.depth("alpha"),
        "alpha_time_us": alpha_estimate.round_time_us,
        "alpha_volume": alpha_estimate.volume_us_qubits,
        "baseline_code": view.spec("baseline").code,
        "baseline_error": baseline_rates.overall,
        "baseline_depth": view.depth("baseline"),
        "baseline_time_us": baseline_estimate.round_time_us,
        "baseline_volume": baseline_estimate.volume_us_qubits,
        "volume_reduction": space_time_reduction(alpha_estimate, baseline_estimate),
    }


def table3_rows(
    config: SuiteConfig, *, pairs: list[tuple[str, str, str, str]] | None = None
) -> list[ExperimentRow]:
    """The Table 3 suite rows (one per family pair)."""
    pairs = pairs or TABLE3_PAIRS
    rows = []
    for family, alpha_name, baseline_name, decoder in pairs:
        rows.append(
            ExperimentRow(
                key=f"{family}/{decoder}",
                runs=(
                    ExperimentRun(
                        "alpha",
                        config.spec(
                            code=alpha_name,
                            decoder=decoder,
                            scheduler=synthesis_scheduler(),
                        ),
                    ),
                    ExperimentRun(
                        "baseline",
                        config.spec(
                            code=baseline_name, decoder=decoder, scheduler="lowest_depth"
                        ),
                    ),
                ),
                derive=partial(_derive_table3, family=family),
            )
        )
    return rows


@register_suite(
    "table3",
    help="Space-time volume: small AlphaSyndrome-scheduled codes vs larger baselines",
)
def _table3_suite(config: SuiteConfig) -> list[ExperimentRow]:
    return table3_rows(config)


def run_table3(
    budget: ExperimentBudget | None = None,
    *,
    pairs: list[tuple[str, str, str, str]] | None = None,
) -> list[dict]:
    """Regenerate Table 3: round time, volume and reduction per family."""
    config = SuiteConfig.from_experiment_budget(budget or ExperimentBudget())
    return SuiteRunner(config).run_rows(table3_rows(config, pairs=pairs))
