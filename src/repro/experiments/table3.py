"""Table 3: space-time volume comparison at comparable logical error rates.

For each family the paper pairs a small code scheduled by AlphaSyndrome with
a larger code running the lowest-depth baseline that reaches a similar
logical error rate, and compares ``T_round x #qubits``.  The driver takes the
(small, large) code pairs, measures both configurations and reports the
volume reduction.
"""

from __future__ import annotations

from repro.analysis import estimate_space_time, space_time_reduction
from repro.experiments.common import (
    ExperimentBudget,
    evaluate_schedule,
    get_code,
    synthesize,
)
from repro.noise import brisbane_noise
from repro.scheduling import lowest_depth_schedule

__all__ = ["TABLE3_PAIRS", "run_table3"]

#: (family label, AlphaSyndrome code, baseline code, decoder) rows.
TABLE3_PAIRS: list[tuple[str, str, str, str]] = [
    ("hexagonal_color", "hexagonal_color_d3", "hexagonal_color_d5", "bposd"),
    ("square_octagonal", "square_octagonal_d3", "square_octagonal_d5", "bposd"),
    ("hyperbolic_surface", "hyperbolic_surface_toric3", "hyperbolic_surface_toric4", "mwpm"),
]


def run_table3(
    budget: ExperimentBudget | None = None,
    *,
    pairs: list[tuple[str, str, str, str]] | None = None,
) -> list[dict]:
    """Regenerate Table 3: round time, volume and reduction per family."""
    budget = budget or ExperimentBudget()
    pairs = pairs or TABLE3_PAIRS
    noise = brisbane_noise()
    rows = []
    for family, alpha_name, baseline_name, decoder in pairs:
        alpha_code = get_code(alpha_name)
        baseline_code = get_code(baseline_name)
        synthesis = synthesize(alpha_code, decoder, noise, budget)
        alpha_rates = evaluate_schedule(
            alpha_code, synthesis.schedule, decoder, noise, budget
        )
        baseline_schedule = lowest_depth_schedule(baseline_code)
        baseline_rates = evaluate_schedule(
            baseline_code, baseline_schedule, decoder, noise, budget
        )
        alpha_estimate = estimate_space_time(
            alpha_code, synthesis.schedule.depth, logical_error_rate=alpha_rates.overall
        )
        baseline_estimate = estimate_space_time(
            baseline_code, baseline_schedule.depth, logical_error_rate=baseline_rates.overall
        )
        rows.append(
            {
                "family": family,
                "decoder": decoder,
                "alpha_code": alpha_name,
                "alpha_error": alpha_rates.overall,
                "alpha_depth": synthesis.schedule.depth,
                "alpha_time_us": alpha_estimate.round_time_us,
                "alpha_volume": alpha_estimate.volume_us_qubits,
                "baseline_code": baseline_name,
                "baseline_error": baseline_rates.overall,
                "baseline_depth": baseline_schedule.depth,
                "baseline_time_us": baseline_estimate.round_time_us,
                "baseline_volume": baseline_estimate.volume_us_qubits,
                "volume_reduction": space_time_reduction(alpha_estimate, baseline_estimate),
            }
        )
    return rows
