"""Command-line entry point mirroring the paper artifact's ``artifact.py``.

Usage::

    python -m repro.experiments table2 [--shots N] [--workers N] [--out DIR]
    python -m repro.experiments all --full --target-rse 0.05

Results are written through the suite artifact store: for each asset,
``<out>/<asset>.jsonl`` (the resumable row log) next to the rendered
``<asset>.txt`` / ``<asset>.json``.  This module is the legacy spelling of
``repro experiments run`` — both share :func:`run_assets` and the same
config/cache assembly helpers from :mod:`repro.api.cli`, so the two
spellings cannot drift (same budget defaults, same ``results/cache``
chunk-cache directory).

A failed row aborts the run with a non-zero exit code: the rendered
text/JSON views of the failed asset are *not* (re)written, so published
artifacts are never silently partial — completed rows stay in the JSONL
log and are resumed on the next invocation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.api.cli import (
    _add_cache_flags,
    _cache_from_args,
    _suite_config_from_args,
    add_budget_flags,
)
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.suite import (
    SuiteConfig,
    SuiteRowError,
    SuiteRunner,
    available_suites,
)

__all__ = ["main", "run_assets"]


def run_assets(
    assets: list[str],
    config,
    out_dir: str | Path = "results",
    *,
    cache=None,
    resume: bool = True,
    server=None,
) -> list[Path]:
    """Regenerate ``assets``, print each table and return the written paths.

    ``config`` is a :class:`SuiteConfig` (or a legacy
    :class:`~repro.experiments.common.ExperimentBudget`, translated for
    backwards compatibility).  One runner executes every asset, so
    AlphaSyndrome syntheses shared between suites (e.g. Table 2's and
    Table 4's ``hexagonal_color_d3``/``bposd`` search) run once.  Raises
    :class:`SuiteRowError` on the first failed row.

    ``server`` (a ``repro serve`` URL or client) switches execution to a
    running service: cells become deduplicated jobs instead of in-process
    pipelines, with bit-identical rows either way.
    """
    if not isinstance(config, SuiteConfig):
        config = SuiteConfig.from_experiment_budget(config)
    runner = SuiteRunner(config, cache=cache, store=ArtifactStore(out_dir), server=server)
    paths = []
    for asset in assets:
        result = runner.run(asset, resume=resume)
        print(f"== {asset} ==")
        print(runner.store.render_text(result.rows))
        print(result.summary())
        print(f"written to {result.text_path}")
        paths.append(result.text_path)
    return paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures (suite-backed).",
    )
    parser.add_argument(
        "asset",
        choices=available_suites() + ["all"],
        help="which table/figure to regenerate",
    )
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--quick",
        dest="quick",
        action="store_true",
        default=True,
        help="quick instance subsets and laptop-sized budgets (default)",
    )
    scale.add_argument(
        "--full",
        dest="quick",
        action="store_false",
        help="run the full paper instance lists",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="process-pool width (never changes results)"
    )
    add_budget_flags(parser)
    _add_cache_flags(parser)
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="ignore rows already in the artifact store (re-run everything)",
    )
    parser.add_argument(
        "--server",
        default=None,
        help="run cells as jobs on this `repro serve` endpoint instead of in-process",
    )
    parser.add_argument("--out", default="results", help="output directory")
    args = parser.parse_args(argv)

    try:
        config = _suite_config_from_args(args)
    except ValueError as error:
        parser.error(str(error))
    assets = available_suites() if args.asset == "all" else [args.asset]
    try:
        run_assets(
            assets,
            config,
            args.out,
            cache=_cache_from_args(args),
            resume=not args.fresh,
            server=args.server,
        )
    except SuiteRowError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
