"""Command-line entry point mirroring the paper artifact's ``artifact.py``.

Usage::

    python -m repro.experiments table2 [--shots N] [--iterations N] [--out DIR]
    python -m repro.experiments all

Results are written to ``results/<asset>.txt`` and ``results/<asset>.json``.
This module is the legacy spelling of ``repro tables`` — both share
:func:`run_assets`.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments import EXPERIMENTS, ExperimentBudget, render_table, write_results

__all__ = ["main", "run_assets"]


def run_assets(
    assets: list[str], budget: ExperimentBudget, out_dir: str | Path = "results"
) -> list[Path]:
    """Regenerate ``assets``, print each table and return the written paths."""
    paths = []
    for asset in assets:
        rows = EXPERIMENTS[asset](budget)
        path = write_results(asset, rows, output_dir=out_dir)
        print(f"== {asset} ==")
        print(render_table(rows))
        print(f"written to {path}")
        paths.append(path)
    return paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "asset",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument("--shots", type=int, default=400, help="evaluation shots per basis")
    parser.add_argument(
        "--synthesis-shots", type=int, default=150, help="shots used inside MCTS rollouts"
    )
    parser.add_argument(
        "--iterations", type=int, default=4, help="MCTS iterations per scheduling step"
    )
    parser.add_argument(
        "--max-evaluations", type=int, default=24, help="cap on rollout evaluations per partition"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="results", help="output directory")
    args = parser.parse_args(argv)

    budget = ExperimentBudget(
        shots=args.shots,
        synthesis_shots=args.synthesis_shots,
        iterations_per_step=args.iterations,
        max_evaluations=args.max_evaluations,
        seed=args.seed,
    )
    assets = sorted(EXPERIMENTS) if args.asset == "all" else [args.asset]
    run_assets(assets, budget, args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
