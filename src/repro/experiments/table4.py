"""Table 4: cross-decoder evaluation (decoder specialisation).

A schedule compiled against decoder A is tested with decoder A and with
decoder B; the paper's hypothesis (Section 5.5) is that same-decoder
compilation wins most instances, demonstrating that AlphaSyndrome tailors
its schedules to the decoder's failure patterns.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentBudget, evaluate_schedule, get_code, synthesize
from repro.noise import brisbane_noise

__all__ = ["TABLE4_INSTANCES", "run_table4"]

#: Colour-code instances used in the cross-decoder study.
TABLE4_INSTANCES: list[str] = [
    "hexagonal_color_d3",
    "hexagonal_color_d5",
    "square_octagonal_d3",
    "square_octagonal_d5",
]

_DECODER_PAIR = ("bposd", "unionfind")


def run_table4(
    budget: ExperimentBudget | None = None,
    *,
    instances: list[str] | None = None,
    decoders: tuple[str, str] = _DECODER_PAIR,
) -> list[dict]:
    """Regenerate Table 4: overall error rate for every compile/test decoder pair."""
    budget = budget or ExperimentBudget()
    instances = instances or TABLE4_INSTANCES[:2]
    noise = brisbane_noise()
    rows = []
    for code_name in instances:
        code = get_code(code_name)
        schedules = {
            decoder: synthesize(code, decoder, noise, budget).schedule
            for decoder in decoders
        }
        row: dict = {"code": code_name}
        for test_decoder in decoders:
            for compile_decoder in decoders:
                rates = evaluate_schedule(
                    code, schedules[compile_decoder], test_decoder, noise, budget
                )
                row[f"test_{test_decoder}_compile_{compile_decoder}"] = rates.overall
        for test_decoder in decoders:
            same = row[f"test_{test_decoder}_compile_{test_decoder}"]
            other = [d for d in decoders if d != test_decoder][0]
            cross = row[f"test_{test_decoder}_compile_{other}"]
            row[f"reduction_{test_decoder}"] = (
                1.0 - same / cross if cross > 0 else 0.0
            )
        rows.append(row)
    return rows
