"""Table 4: cross-decoder evaluation (decoder specialisation).

A schedule compiled against decoder A is tested with decoder A and with
decoder B; the paper's hypothesis (Section 5.5) is that same-decoder
compilation wins most instances, demonstrating that AlphaSyndrome tailors
its schedules to the decoder's failure patterns.

Each instance is one :class:`~repro.experiments.suite.ExperimentRow` with
four cells — every (test decoder, compile decoder) combination as its own
:class:`~repro.api.spec.RunSpec`, the cross cells using the
``alphasyndrome:compile_decoder=...`` synthesis-spec variant.  The runner's
:class:`~repro.experiments.suite.SynthSpec` memo collapses the four cells
onto two actual searches (one per compile decoder), exactly like the
legacy driver's hand-rolled loop.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.common import ExperimentBudget
from repro.experiments.suite import (
    ExperimentRow,
    ExperimentRun,
    RowView,
    SuiteConfig,
    SuiteRunner,
    register_suite,
    synthesis_scheduler,
)

__all__ = ["TABLE4_INSTANCES", "run_table4", "table4_rows"]

#: Colour-code instances used in the cross-decoder study.
TABLE4_INSTANCES: list[str] = [
    "hexagonal_color_d3",
    "hexagonal_color_d5",
    "square_octagonal_d3",
    "square_octagonal_d5",
]

_DECODER_PAIR = ("bposd", "unionfind")


def _derive_table4(view: RowView, *, code: str, decoders: tuple[str, ...]) -> dict:
    row: dict = {"code": code}
    for test_decoder in decoders:
        for compile_decoder in decoders:
            cell = f"test_{test_decoder}_compile_{compile_decoder}"
            row[cell] = view.rates(cell).overall
    for test_decoder in decoders:
        same = row[f"test_{test_decoder}_compile_{test_decoder}"]
        other = [d for d in decoders if d != test_decoder][0]
        cross = row[f"test_{test_decoder}_compile_{other}"]
        row[f"reduction_{test_decoder}"] = 1.0 - same / cross if cross > 0 else 0.0
    return row


def table4_rows(
    config: SuiteConfig,
    *,
    instances: list[str] | None = None,
    decoders: tuple[str, str] = _DECODER_PAIR,
) -> list[ExperimentRow]:
    """The Table 4 suite rows (one 2x2 cross-decoder matrix per instance)."""
    if instances is None:
        instances = TABLE4_INSTANCES[:2] if config.quick else TABLE4_INSTANCES
    rows = []
    for code_name in instances:
        runs = []
        for test_decoder in decoders:
            for compile_decoder in decoders:
                scheduler = synthesis_scheduler(
                    None if compile_decoder == test_decoder else compile_decoder
                )
                runs.append(
                    ExperimentRun(
                        f"test_{test_decoder}_compile_{compile_decoder}",
                        config.spec(
                            code=code_name, decoder=test_decoder, scheduler=scheduler
                        ),
                    )
                )
        rows.append(
            ExperimentRow(
                key=code_name,
                runs=tuple(runs),
                derive=partial(_derive_table4, code=code_name, decoders=tuple(decoders)),
            )
        )
    return rows


@register_suite(
    "table4",
    help="Cross-decoder matrix: schedules compiled for decoder A tested with decoder B",
)
def _table4_suite(config: SuiteConfig) -> list[ExperimentRow]:
    return table4_rows(config)


def run_table4(
    budget: ExperimentBudget | None = None,
    *,
    instances: list[str] | None = None,
    decoders: tuple[str, str] = _DECODER_PAIR,
) -> list[dict]:
    """Regenerate Table 4: overall error rate for every compile/test decoder pair."""
    config = SuiteConfig.from_experiment_budget(budget or ExperimentBudget())
    return SuiteRunner(config).run_rows(
        table4_rows(config, instances=instances or TABLE4_INSTANCES[:2], decoders=decoders)
    )
