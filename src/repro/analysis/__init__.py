"""Result analysis: space-time volume model, statistics and threshold helpers."""

from repro.analysis.spacetime import (
    SpaceTimeEstimate,
    estimate_space_time,
    space_time_reduction,
)
from repro.analysis.threshold import estimate_crossing, suppression_ratio
from repro.analysis.stats import (
    StoppingRule,
    geometric_mean,
    normal_quantile,
    relative_error,
    relative_reduction,
    wilson_halfwidth,
    wilson_interval,
    z_for_confidence,
)

__all__ = [
    "SpaceTimeEstimate",
    "estimate_space_time",
    "space_time_reduction",
    "StoppingRule",
    "wilson_interval",
    "wilson_halfwidth",
    "relative_error",
    "normal_quantile",
    "z_for_confidence",
    "relative_reduction",
    "geometric_mean",
    "estimate_crossing",
    "suppression_ratio",
]
