"""Result analysis: space-time volume model and statistics helpers."""

from repro.analysis.spacetime import (
    SpaceTimeEstimate,
    estimate_space_time,
    space_time_reduction,
)
from repro.analysis.stats import geometric_mean, relative_reduction, wilson_interval

__all__ = [
    "SpaceTimeEstimate",
    "estimate_space_time",
    "space_time_reduction",
    "wilson_interval",
    "relative_reduction",
    "geometric_mean",
]
