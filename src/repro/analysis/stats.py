"""Statistics helpers for logical-error-rate estimates."""

from __future__ import annotations

import math

__all__ = ["wilson_interval", "relative_reduction", "geometric_mean"]


def wilson_interval(successes: int, trials: int, *, z: float = 1.96) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    proportion = successes / trials
    denominator = 1 + z * z / trials
    centre = (proportion + z * z / (2 * trials)) / denominator
    spread = (
        z
        * math.sqrt(proportion * (1 - proportion) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return max(0.0, centre - spread), min(1.0, centre + spread)


def relative_reduction(optimised: float, baseline: float) -> float:
    """Fractional reduction ``1 - optimised / baseline`` (0 when baseline is 0)."""
    if baseline <= 0:
        return 0.0
    return 1.0 - optimised / baseline


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values (zeros are clipped to 1e-12)."""
    if not values:
        raise ValueError("geometric_mean needs at least one value")
    total = sum(math.log(max(value, 1e-12)) for value in values)
    return math.exp(total / len(values))
