"""Statistics helpers for logical-error-rate estimates.

Besides the original summary helpers (:func:`wilson_interval`,
:func:`relative_reduction`, :func:`geometric_mean`), this module hosts the
:class:`StoppingRule` behind the adaptive estimation engine: sampling
proceeds in fixed deterministic chunks (:mod:`repro.parallel`) and stops as
soon as the Wilson score interval around the observed error fraction is
tight enough — ``halfwidth / estimate <= target_rse`` — or the shot budget
``max_shots`` is exhausted.  With zero observed errors the relative error is
undefined (:func:`relative_error` returns ``inf``), so a run can only stop
on the budget, never on a spuriously "precise" zero estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "wilson_interval",
    "wilson_halfwidth",
    "relative_error",
    "normal_quantile",
    "z_for_confidence",
    "StoppingRule",
    "relative_reduction",
    "geometric_mean",
]


def wilson_interval(successes: int, trials: int, *, z: float = 1.96) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Well defined for every ``0 <= successes <= trials`` with ``trials > 0``
    — in particular ``successes=0`` yields ``(0.0, upper > 0)``, which is
    what lets the stopping rule reason about runs that have not yet observed
    a single logical error.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    proportion = successes / trials
    denominator = 1 + z * z / trials
    centre = (proportion + z * z / (2 * trials)) / denominator
    spread = (
        z
        * math.sqrt(proportion * (1 - proportion) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return max(0.0, centre - spread), min(1.0, centre + spread)


def wilson_halfwidth(successes: int, trials: int, *, z: float = 1.96) -> float:
    """Half the width of the Wilson interval (a robust standard-error proxy)."""
    low, high = wilson_interval(successes, trials, z=z)
    return (high - low) / 2.0


def relative_error(successes: int, trials: int, *, z: float = 1.96) -> float:
    """Wilson half-width relative to the point estimate (``inf`` at zero).

    This is the quantity the adaptive engine drives below ``target_rse``.
    With ``successes == 0`` the point estimate is 0 and no finite precision
    statement about the *relative* error is possible, so the result is
    ``inf`` — the stopping rule then keeps sampling until ``max_shots``.
    """
    if trials <= 0:
        return math.inf
    proportion = successes / trials
    if proportion <= 0.0:
        return math.inf
    return wilson_halfwidth(successes, trials, z=z) / proportion


# Acklam's rational approximation of the standard normal quantile function
# (relative error < 1.15e-9 over the full open interval).  scipy is not a
# dependency of this repo, and 1e-9 is far below any Monte-Carlo resolution.
_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_D = (
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
    3.754408661907416e00,
)
_P_LOW = 0.02425


def normal_quantile(p: float) -> float:
    """Inverse standard normal CDF ``Phi^{-1}(p)`` for ``0 < p < 1``."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    if p < _P_LOW:
        q = math.sqrt(-2 * math.log(p))
        return (
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1)
    if p > 1 - _P_LOW:
        return -normal_quantile(1 - p)
    q = p - 0.5
    r = q * q
    return (
        (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5])
        * q
        / (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1)
    )


def z_for_confidence(confidence: float) -> float:
    """Two-sided normal critical value for a confidence level (0.95 -> 1.96)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return normal_quantile(0.5 + confidence / 2.0)


@dataclass(frozen=True)
class StoppingRule:
    """When to stop chunked Monte-Carlo sampling of a binomial rate.

    ``max_shots`` bounds the total sample size (it also fixes the
    deterministic chunk layout of an adaptive run — see
    :func:`repro.parallel.adaptive_sample_and_decode`).  ``target_rse`` is
    the Wilson relative-error target; ``None`` disables precision stopping
    and the rule degenerates to the fixed budget.
    """

    max_shots: int
    target_rse: float | None = None
    z: float = 1.96

    def __post_init__(self) -> None:
        if self.max_shots < 0:
            raise ValueError(f"max_shots must be >= 0, got {self.max_shots}")
        if self.target_rse is not None and self.target_rse <= 0:
            raise ValueError(f"target_rse must be positive, got {self.target_rse}")

    def converged(self, errors: int, shots: int) -> bool:
        """True when the precision target is met (never on zero errors)."""
        if self.target_rse is None or shots <= 0 or errors <= 0:
            return False
        return relative_error(errors, shots, z=self.z) <= self.target_rse

    def should_stop(self, errors: int, shots: int) -> bool:
        """Stop on precision or on the shot budget, whichever fires first."""
        return shots >= self.max_shots or self.converged(errors, shots)


def relative_reduction(optimised: float, baseline: float) -> float:
    """Fractional reduction ``1 - optimised / baseline`` (0 when baseline is 0)."""
    if baseline <= 0:
        return 0.0
    return 1.0 - optimised / baseline


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values (zeros are clipped to 1e-12)."""
    if not values:
        raise ValueError("geometric_mean needs at least one value")
    total = sum(math.log(max(value, 1e-12)) for value in values)
    return math.exp(total / len(values))
