"""Space-time resource estimation (Section 5.3.2 / Table 3).

The execution time of one syndrome-measurement round on the IBM Brisbane
timing model is ``T_round = depth * T_2Q + T_meas`` with ``T_2Q = 600 ns``
and ``T_meas = 4000 ns``; the space-time volume is ``T_round`` multiplied by
the total number of physical qubits (data plus one ancilla per stabilizer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes.base import StabilizerCode
from repro.noise.models import BRISBANE_MEASUREMENT_TIME_NS, BRISBANE_TWO_QUBIT_TIME_NS

__all__ = ["SpaceTimeEstimate", "estimate_space_time", "space_time_reduction"]


@dataclass
class SpaceTimeEstimate:
    """Round time and space-time volume of a schedule on a code."""

    code_name: str
    physical_qubits: int
    depth: int
    round_time_us: float
    volume_us_qubits: float
    logical_error_rate: float | None = None

    def as_row(self) -> dict:
        """Row dictionary used by the Table 3 driver."""
        return {
            "code": self.code_name,
            "qubits": self.physical_qubits,
            "depth": self.depth,
            "time_us": round(self.round_time_us, 2),
            "volume": round(self.volume_us_qubits, 1),
            "logical_error_rate": self.logical_error_rate,
        }


def estimate_space_time(
    code: StabilizerCode,
    depth: int,
    *,
    logical_error_rate: float | None = None,
    two_qubit_time_ns: float = BRISBANE_TWO_QUBIT_TIME_NS,
    measurement_time_ns: float = BRISBANE_MEASUREMENT_TIME_NS,
) -> SpaceTimeEstimate:
    """Estimate round time (microseconds) and space-time volume of a schedule."""
    physical_qubits = code.num_qubits + code.num_stabilizers
    round_time_us = (depth * two_qubit_time_ns + measurement_time_ns) / 1000.0
    return SpaceTimeEstimate(
        code_name=code.name,
        physical_qubits=physical_qubits,
        depth=depth,
        round_time_us=round_time_us,
        volume_us_qubits=round_time_us * physical_qubits,
        logical_error_rate=logical_error_rate,
    )


def space_time_reduction(
    optimised: SpaceTimeEstimate, baseline: SpaceTimeEstimate
) -> float:
    """Fractional space-time volume reduction of ``optimised`` vs ``baseline``."""
    if baseline.volume_us_qubits <= 0:
        return 0.0
    return 1.0 - optimised.volume_us_qubits / baseline.volume_us_qubits
