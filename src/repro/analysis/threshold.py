"""Threshold (logical-vs-physical crossing) estimation.

A code family's *threshold* is the physical error rate below which
increasing the code distance suppresses the logical error rate.  On a
sweep of physical rates with logical rates measured for a smaller and a
larger distance, the threshold shows up as the crossing of the two
curves: below it the larger distance wins, above it it loses.

:func:`estimate_crossing` locates that crossing by scanning adjacent
sweep points for a sign change of ``log(rate_large) - log(rate_small)``
and log-log interpolating inside the bracketing interval — the standard
first-order estimate, adequate for the coarse sweeps the ``threshold``
experiment suite runs (paper-grade estimates would fit the scaling
ansatz).
"""

from __future__ import annotations

import math

__all__ = ["estimate_crossing", "suppression_ratio"]


def suppression_ratio(rate_small: float, rate_large: float) -> float:
    """``rate_large / rate_small`` — below 1 the larger distance wins.

    Zero-rate entries (possible at quick Monte-Carlo budgets) map to
    ``0.0`` when only the large distance saw no errors and ``inf`` when
    only the small one did; both zero reports ``1.0`` (no information).
    """
    if rate_small <= 0:
        return 1.0 if rate_large <= 0 else math.inf
    return rate_large / rate_small


def estimate_crossing(
    physical_rates: list[float],
    rates_small: list[float],
    rates_large: list[float],
) -> float | None:
    """Estimate the physical rate where the two logical-rate curves cross.

    Parameters
    ----------
    physical_rates:
        Swept physical error rates, strictly increasing.
    rates_small:
        Logical error rates of the smaller distance at each swept rate.
    rates_large:
        Logical error rates of the larger distance at each swept rate.

    Returns
    -------
    float | None
        The log-log interpolated crossing point, or ``None`` when the
        sweep never brackets a crossing (all points on one side, or too
        many zero-rate points to tell).

    Raises
    ------
    ValueError
        If the three lists differ in length or fewer than two points are
        given.
    """
    if not (len(physical_rates) == len(rates_small) == len(rates_large)):
        raise ValueError("physical_rates, rates_small and rates_large must align")
    if len(physical_rates) < 2:
        raise ValueError("need at least two sweep points to bracket a crossing")

    # Work on the log-difference of the two curves where both are positive;
    # zero-rate points carry no usable magnitude and are skipped.
    points: list[tuple[float, float]] = []
    for p, small, large in zip(physical_rates, rates_small, rates_large):
        if p <= 0 or small <= 0 or large <= 0:
            continue
        points.append((math.log(p), math.log(large) - math.log(small)))

    for (x0, d0), (x1, d1) in zip(points, points[1:]):
        # A crossing is a transition from suppressed (d <= 0) to not
        # (d > 0); a lone d == 0 point with suppression continuing after
        # it is measurement coincidence, not a crossing.
        if d0 <= 0 < d1:
            # Linear interpolation of the sign change in log-log space
            # (t = 0 exactly when the curves touch at the left point).
            t = -d0 / (d1 - d0)
            return math.exp(x0 + t * (x1 - x0))
        if d0 < 0 == d1:
            # The curves meet exactly at the right point; if the sweep
            # continues and stays suppressed the next pair rejects it,
            # but a terminal touch is the best available estimate.
            if (x1, d1) == points[-1]:
                return math.exp(x1)
    return None
