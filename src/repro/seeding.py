"""Deterministic seed-stream derivation shared by the whole library.

Every stage of the pipeline (synthesis, per-basis sampling, per-shard
sampling, noise-profile drawing, ...) needs its own independent random
stream, derived reproducibly from one user-facing integer seed.  The
historical approach — ad-hoc ``seed``, ``seed + 1``, ``seed + 11`` offsets
scattered through the estimator and the experiment drivers — silently
correlates streams whenever two call sites pick overlapping offsets.  This
module centralises the derivation on :class:`numpy.random.SeedSequence`,
whose ``spawn`` mechanism guarantees statistically independent children.

Three derivation primitives cover every use in the library:

``spawn_streams(seed, n)``
    ``n`` ordered independent child streams of ``seed`` (positional stages,
    e.g. the two logical bases of a memory experiment, or shot shards).

``named_stream(seed, stage)``
    an independent stream keyed by a *stage name* (e.g. ``"synthesis"``,
    ``"evaluation"``), stable under insertion or reordering of other stages.

``stream_to_int(stream)``
    collapse a stream to a plain integer for legacy APIs that accept only
    ``seed: int`` (e.g. :class:`repro.core.MCTSConfig`).

``None`` propagates through all helpers, preserving "fresh OS entropy"
semantics end to end.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = [
    "SeedLike",
    "as_seed_sequence",
    "spawn_streams",
    "named_stream",
    "stage_seed",
    "stream_to_int",
]

#: Anything accepted wherever the library takes a seed.
SeedLike = "int | np.random.SeedSequence | None"

_ENTROPY_MASK = (1 << 64) - 1


def as_seed_sequence(seed: int | np.random.SeedSequence | None) -> np.random.SeedSequence | None:
    """Coerce ``seed`` to a :class:`~numpy.random.SeedSequence` (``None`` passes through)."""
    if seed is None:
        return None
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(int(seed) & _ENTROPY_MASK)


def spawn_streams(
    seed: int | np.random.SeedSequence | None, n: int
) -> list[np.random.SeedSequence | None]:
    """Return ``n`` independent child streams of ``seed`` (all ``None`` if unseeded)."""
    root = as_seed_sequence(seed)
    if root is None:
        return [None] * n
    return root.spawn(n)


def named_stream(
    seed: int | np.random.SeedSequence | None, stage: str
) -> np.random.SeedSequence | None:
    """Return an independent stream for ``(seed, stage)``.

    Unlike :func:`spawn_streams`, the derivation depends only on the stage
    *name*, so adding or reordering stages elsewhere never shifts a stage's
    stream (which positional ``spawn`` indices would).
    """
    root = as_seed_sequence(seed)
    if root is None:
        return None
    entropy = list(root.entropy) if isinstance(root.entropy, (list, tuple)) else [root.entropy]
    # Fold in the spawn_key so spawned children of the same root derive
    # distinct named streams (the entropy alone is shared by all children).
    entropy += list(root.spawn_key)
    return np.random.SeedSequence(entropy + [zlib.crc32(stage.encode("utf-8"))])


def stream_to_int(stream: np.random.SeedSequence | None) -> int | None:
    """Collapse a stream to a 32-bit integer seed for ``seed: int`` APIs."""
    if stream is None:
        return None
    return int(stream.generate_state(1, np.uint32)[0])


def stage_seed(
    seed: int | np.random.SeedSequence | None, stage: str
) -> int | None:
    """Integer form of :func:`named_stream` for ``seed: int`` APIs.

    One call for the common ``stream_to_int(named_stream(seed, stage))``
    composition, so every stage-seed consumer (the ``alphasyndrome``
    registry builder, the experiment suites, the legacy
    ``ExperimentBudget``) derives identical integers by construction.
    """
    return stream_to_int(named_stream(seed, stage))
