"""Worker-count-invariant shot sharding for the sampling/decoding hot path.

The hot path is split into *chunks of fixed size*
(:data:`DEFAULT_CHUNK_SHOTS`), never into per-worker shards: the chunk
layout — and the per-chunk ``SeedSequence.spawn`` stream each chunk draws
from — depends only on the shot count, so the sampled rates are **bit
identical for every worker count** (``workers=1`` executes the same chunks
in process, ``workers=8`` farms them to a pool).  Deriving shards from the
worker count instead (the original ``Pipeline`` behaviour) silently changed
the seed streams, and therefore the measured rates, whenever a run moved to
a machine with a different core count — exactly the reproducibility trap
parallel-benchmarking folklore warns about.

:class:`repro.api.Pipeline` runs its per-basis sampling/decoding through
these chunks.  The pooled :class:`repro.core.ScheduleEvaluator` fans out at
(schedule, basis) granularity instead — rollout budgets are far below one
chunk — but derives its streams from the same
:func:`repro.sim.estimator.basis_streams` plan, so both parallel paths stay
bit-identical to their serial references.

Single-chunk runs (``shots <= chunk_shots``) pass the caller's stream
through *unspawned*, which keeps them bit-identical to the legacy serial
estimator path the test suite pins.

The helpers here are deliberately free functions so they pickle into
:class:`~concurrent.futures.ProcessPoolExecutor` workers; decoder factories
crossing the pool boundary must be picklable (everything built by
``repro.api.registries.decoders`` is).
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.bitops import pack_rows
from repro.sim.estimator import count_wrong, decode_predictions
from repro.sim.sampler import SampleBatch, sample_detector_error_model

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Executor

    from repro.analysis.stats import StoppingRule
    from repro.sim.dem import DetectorErrorModel
    from repro.sim.estimator import DecoderFactory

__all__ = [
    "DEFAULT_CHUNK_SHOTS",
    "AdaptiveEstimate",
    "adaptive_sample_and_decode",
    "chunk_error_counts",
    "chunk_sizes",
    "chunk_streams",
    "run_chunk",
    "merge_chunks",
    "store_satisfies_rule",
    "submit_chunks",
    "sample_and_decode",
]

#: Fixed shard granularity of the hot path.  The worker-invariance
#: guarantee only requires that it never depend on the worker count; the
#: value trades per-chunk overhead (stream spawn, pool dispatch, DEM
#: pickling) against intra-basis parallelism — a run only spreads across
#: more than ``ceil(shots / 1024)`` workers per basis once it spans that
#: many chunks (both bases always run concurrently on a pool regardless).
DEFAULT_CHUNK_SHOTS = 1024


def chunk_sizes(shots: int, chunk_shots: int | None = None) -> list[int]:
    """Split ``shots`` into balanced chunks of at most ``chunk_shots``.

    The result depends only on ``shots`` (and the fixed chunk size), never
    on the worker count — the foundation of the invariance guarantee.
    ``shots <= 0`` yields no chunks.
    """
    if chunk_shots is None:
        chunk_shots = DEFAULT_CHUNK_SHOTS
    if shots <= 0:
        return []
    chunks = -(-shots // max(1, chunk_shots))
    base, remainder = divmod(shots, chunks)
    return [base + (1 if index < remainder else 0) for index in range(chunks)]


def chunk_streams(
    stream: "np.random.SeedSequence | None", count: int
) -> "list[np.random.SeedSequence | None]":
    """One independent seed stream per chunk.

    A single chunk receives ``stream`` itself (bit-compatible with the
    unchunked legacy path); multiple chunks each receive a spawned child.
    """
    if count <= 1:
        return [stream]
    if stream is None:
        return [None] * count
    return stream.spawn(count)


def _sample_chunk(
    dem: "DetectorErrorModel",
    shots: int,
    stream: "np.random.SeedSequence | None",
    sampler=None,
) -> SampleBatch:
    """Draw one chunk's batch from ``sampler`` (or the default DEM path).

    ``sampler=None`` is the historical direct
    :func:`repro.sim.sampler.sample_detector_error_model` call, kept as the
    exact default so every pre-existing caller stays bit-identical; a
    sampler object (built by ``repro.api.registries.samplers``) substitutes
    its own ``sample(shots, seed=stream)`` with the same determinism
    contract: output is a pure function of ``(shots, stream)``.
    """
    if sampler is None:
        return sample_detector_error_model(dem, shots, seed=stream)
    return sampler.sample(shots, seed=stream)


def run_chunk(
    dem: "DetectorErrorModel",
    decoder_factory: "DecoderFactory",
    shots: int,
    stream: "np.random.SeedSequence | None",
    sampler=None,
) -> tuple[SampleBatch, np.ndarray]:
    """Sample and decode one chunk (also the unit shipped to pool workers).

    The decoder is rebuilt from its factory inside the worker because
    decoder *instances* (matching graphs, lookup tables) need not be
    picklable; the factory, the DEM and the optional sampler object are.
    Decoding routes through
    :func:`repro.sim.estimator.decode_predictions`, so each chunk rides the
    batch-first packed path: the sampler's ``packed_detectors`` words feed
    the decoder's dedup front end without a dense round-trip, and within a
    chunk only the unique syndromes are ever decoded.
    """
    batch = _sample_chunk(dem, shots, stream, sampler)
    decoder = decoder_factory(dem)
    return batch, decode_predictions(decoder, batch)


def merge_chunks(
    results: "list[tuple[SampleBatch, np.ndarray]]", dem: "DetectorErrorModel"
) -> tuple[SampleBatch, np.ndarray]:
    """Concatenate chunk results in chunk order.

    An empty result list (``shots=0``) returns a well-formed empty batch
    instead of crashing in ``zip(*[])``.
    """
    if not results:
        detectors = np.zeros((0, dem.num_detectors), dtype=np.uint8)
        empty = SampleBatch(
            detectors=detectors,
            observables=np.zeros((0, dem.num_observables), dtype=np.uint8),
            faults=np.zeros((0, dem.num_mechanisms), dtype=np.uint8),
            packed_detectors=pack_rows(detectors),
        )
        return empty, np.zeros((0, dem.num_observables), dtype=np.uint8)
    batches, predictions = zip(*results)
    packed = [batch.packed_detectors for batch in batches]
    merged = SampleBatch(
        detectors=np.concatenate([batch.detectors for batch in batches]),
        observables=np.concatenate([batch.observables for batch in batches]),
        faults=np.concatenate([batch.faults for batch in batches]),
        packed_detectors=(
            np.concatenate(packed) if all(p is not None for p in packed) else None
        ),
    )
    return merged, np.concatenate(predictions)


def submit_chunks(
    pool: "Executor",
    dem: "DetectorErrorModel",
    decoder_factory: "DecoderFactory",
    shots: int,
    stream: "np.random.SeedSequence | None",
    *,
    chunk_shots: int | None = None,
    sampler=None,
) -> "list[Future]":
    """Submit every chunk of one sampling/decoding task to ``pool``.

    Returns the chunk futures in chunk order; gather with
    ``merge_chunks([f.result() for f in futures], dem)``.  Callers that fan
    out several tasks (two bases, many schedules) submit them all before
    gathering so chunks interleave across the pool.
    """
    sizes = chunk_sizes(shots, chunk_shots)
    streams = chunk_streams(stream, len(sizes))
    return [
        pool.submit(run_chunk, dem, decoder_factory, size, chunk_stream, sampler)
        for size, chunk_stream in zip(sizes, streams)
    ]


def sample_and_decode(
    dem: "DetectorErrorModel",
    decoder_factory: "DecoderFactory",
    shots: int,
    stream: "np.random.SeedSequence | None",
    *,
    pool: "Executor | None" = None,
    chunk_shots: int | None = None,
    sampler=None,
) -> tuple[SampleBatch, np.ndarray]:
    """Run the full chunked sampling/decoding task, serially or on a pool.

    The serial path executes the identical chunk layout in process (with one
    decoder instance reused across chunks — decoding is a pure function of
    the DEM and syndrome, so this is bit-identical to per-chunk rebuilds),
    which is what makes ``workers=1`` and ``workers=N`` indistinguishable in
    output.
    """
    sizes = chunk_sizes(shots, chunk_shots)
    if not sizes:
        return merge_chunks([], dem)
    if pool is not None:
        futures = submit_chunks(
            pool, dem, decoder_factory, shots, stream, chunk_shots=chunk_shots, sampler=sampler
        )
        return merge_chunks([future.result() for future in futures], dem)
    streams = chunk_streams(stream, len(sizes))
    decoder = decoder_factory(dem)
    results = []
    for size, chunk_stream in zip(sizes, streams):
        batch = _sample_chunk(dem, size, chunk_stream, sampler)
        results.append((batch, decode_predictions(decoder, batch)))
    return merge_chunks(results, dem)


# ----------------------------------------------------------------------
# Adaptive (precision-targeted) chunk streaming
# ----------------------------------------------------------------------
def chunk_error_counts(
    dem: "DetectorErrorModel",
    decoder_factory: "DecoderFactory",
    shots: int,
    stream: "np.random.SeedSequence | None",
    sampler=None,
) -> tuple[int, int]:
    """Sample and decode one chunk, reduced to ``(shots, logical errors)``.

    The count-only unit of the adaptive engine (and of the result cache):
    identical sampling and decoding to :func:`run_chunk`, but the batch is
    collapsed to its error count so chunks are cheap to ship, merge and
    persist.  Module-level so it pickles into pool workers.
    """
    batch, predictions = run_chunk(dem, decoder_factory, shots, stream, sampler)
    return batch.num_shots, count_wrong(predictions, batch)


@dataclass
class AdaptiveEstimate:
    """Outcome of one adaptively sampled binomial estimation.

    ``chunk_counts`` records the consumed prefix as ``(shots, errors)`` per
    chunk in chunk order — by construction bit-identical to the first
    ``len(chunk_counts)`` chunks of the fixed-shot run whose budget equals
    the stopping rule's ``max_shots``.  ``cache_hits`` / ``fresh_chunks``
    split the prefix into chunks replayed from a :class:`repro.cache
    .ChunkStore` and chunks actually sampled in this process.
    """

    shots: int = 0
    errors: int = 0
    converged: bool = False
    chunk_counts: list[tuple[int, int]] = field(default_factory=list)
    cache_hits: int = 0
    fresh_chunks: int = 0

    @property
    def rate(self) -> float:
        """Observed error fraction (0.0 before any shot is consumed)."""
        return self.errors / self.shots if self.shots else 0.0

    @property
    def chunks(self) -> int:
        return len(self.chunk_counts)


def store_satisfies_rule(
    rule: "StoppingRule", store, *, chunk_shots: int | None = None
) -> bool:
    """True when cached summaries alone carry ``rule`` to its stopping point.

    Walks the same chunk plan and rule evaluation as
    :func:`adaptive_sample_and_decode`, but consults only the store — no
    sampling, no decoding.  Callers use it to skip expensive setup (e.g.
    process-pool startup) for fully warm-cache replays; a ``True`` answer
    guarantees the engine will report ``fresh_chunks == 0``.
    """
    if store is None:
        return False
    sizes = chunk_sizes(rule.max_shots, chunk_shots)
    shots = errors = 0
    for index, size in enumerate(sizes):
        summary = store.get(index)
        if summary is None or summary.shots != size:
            return False
        shots += summary.shots
        errors += summary.errors
        if rule.converged(errors, shots):
            return True
    return True  # the whole plan is cached


def adaptive_sample_and_decode(
    dem: "DetectorErrorModel",
    decoder_factory: "DecoderFactory",
    stream: "np.random.SeedSequence | None",
    rule: "StoppingRule",
    *,
    chunk_shots: int | None = None,
    pool: "Executor | None" = None,
    lookahead: int = 1,
    store=None,
    sampler=None,
) -> AdaptiveEstimate:
    """Stream the fixed chunk plan through ``rule`` until it says stop.

    The chunk layout and per-chunk seed streams are derived for
    ``rule.max_shots`` exactly as :func:`sample_and_decode` would derive
    them, and chunks are *consumed strictly in chunk order* with the rule
    evaluated after each one.  Consequently:

    * the consumed prefix is bit-identical to the fixed-shot run at
      ``shots=rule.max_shots`` truncated to the same chunks;
    * the stopping point depends only on the accumulated counts, so the
      result is invariant to ``pool``/``lookahead`` — a pool merely
      *speculates* on upcoming chunks (results of chunks past the stopping
      point are discarded and never stored).

    ``store`` (a :class:`repro.cache.ChunkStore`) replays previously
    persisted chunk counts instead of resampling them and persists every
    freshly consumed chunk, which is what makes interrupted or
    coarser-precision runs resumable and refinable across processes.
    """
    sizes = chunk_sizes(rule.max_shots, chunk_shots)
    streams = chunk_streams(stream, len(sizes))
    estimate = AdaptiveEstimate()
    if not sizes:
        return estimate
    cached: dict[int, tuple[int, int] | None] = {}

    def replay(index: int) -> "tuple[int, int] | None":
        if index not in cached:
            summary = store.get(index) if store is not None else None
            # A summary whose size disagrees with the plan belongs to a
            # different chunk layout (stale cache); treat it as a miss.
            if summary is not None and summary.shots != sizes[index]:
                summary = None
            cached[index] = None if summary is None else (summary.shots, summary.errors)
        return cached[index]

    pending: dict[int, Future] = {}
    decoder = None
    try:
        for index in range(len(sizes)):
            if pool is not None:
                horizon = min(len(sizes), index + max(1, lookahead))
                for ahead in range(index, horizon):
                    if ahead not in pending and replay(ahead) is None:
                        pending[ahead] = pool.submit(
                            chunk_error_counts,
                            dem,
                            decoder_factory,
                            sizes[ahead],
                            streams[ahead],
                            sampler,
                        )
            counts = replay(index)
            if counts is not None:
                shots, errors = counts
                estimate.cache_hits += 1
            else:
                future = pending.pop(index, None)
                if future is not None:
                    shots, errors = future.result()
                else:
                    if decoder is None:
                        decoder = decoder_factory(dem)
                    batch = _sample_chunk(dem, sizes[index], streams[index], sampler)
                    shots, errors = batch.num_shots, count_wrong(
                        decode_predictions(decoder, batch), batch
                    )
                estimate.fresh_chunks += 1
                if store is not None:
                    store.put(index, shots, errors)
            estimate.shots += shots
            estimate.errors += errors
            estimate.chunk_counts.append((shots, errors))
            if rule.converged(estimate.errors, estimate.shots):
                estimate.converged = True
                break
    finally:
        for future in pending.values():
            future.cancel()
    return estimate
