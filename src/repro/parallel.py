"""Worker-count-invariant shot sharding for the sampling/decoding hot path.

The hot path is split into *chunks of fixed size*
(:data:`DEFAULT_CHUNK_SHOTS`), never into per-worker shards: the chunk
layout — and the per-chunk ``SeedSequence.spawn`` stream each chunk draws
from — depends only on the shot count, so the sampled rates are **bit
identical for every worker count** (``workers=1`` executes the same chunks
in process, ``workers=8`` farms them to a pool).  Deriving shards from the
worker count instead (the original ``Pipeline`` behaviour) silently changed
the seed streams, and therefore the measured rates, whenever a run moved to
a machine with a different core count — exactly the reproducibility trap
parallel-benchmarking folklore warns about.

:class:`repro.api.Pipeline` runs its per-basis sampling/decoding through
these chunks.  The pooled :class:`repro.core.ScheduleEvaluator` fans out at
(schedule, basis) granularity instead — rollout budgets are far below one
chunk — but derives its streams from the same
:func:`repro.sim.estimator.basis_streams` plan, so both parallel paths stay
bit-identical to their serial references.

Single-chunk runs (``shots <= chunk_shots``) pass the caller's stream
through *unspawned*, which keeps them bit-identical to the legacy serial
estimator path the test suite pins.

The helpers here are deliberately free functions so they pickle into
:class:`~concurrent.futures.ProcessPoolExecutor` workers; decoder factories
crossing the pool boundary must be picklable (everything built by
``repro.api.registries.decoders`` is).
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.bitops import pack_rows
from repro.sim.estimator import decode_predictions
from repro.sim.sampler import SampleBatch, sample_detector_error_model

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Executor

    from repro.sim.dem import DetectorErrorModel
    from repro.sim.estimator import DecoderFactory

__all__ = [
    "DEFAULT_CHUNK_SHOTS",
    "chunk_sizes",
    "chunk_streams",
    "run_chunk",
    "merge_chunks",
    "submit_chunks",
    "sample_and_decode",
]

#: Fixed shard granularity of the hot path.  The worker-invariance
#: guarantee only requires that it never depend on the worker count; the
#: value trades per-chunk overhead (stream spawn, pool dispatch, DEM
#: pickling) against intra-basis parallelism — a run only spreads across
#: more than ``ceil(shots / 1024)`` workers per basis once it spans that
#: many chunks (both bases always run concurrently on a pool regardless).
DEFAULT_CHUNK_SHOTS = 1024


def chunk_sizes(shots: int, chunk_shots: int | None = None) -> list[int]:
    """Split ``shots`` into balanced chunks of at most ``chunk_shots``.

    The result depends only on ``shots`` (and the fixed chunk size), never
    on the worker count — the foundation of the invariance guarantee.
    ``shots <= 0`` yields no chunks.
    """
    if chunk_shots is None:
        chunk_shots = DEFAULT_CHUNK_SHOTS
    if shots <= 0:
        return []
    chunks = -(-shots // max(1, chunk_shots))
    base, remainder = divmod(shots, chunks)
    return [base + (1 if index < remainder else 0) for index in range(chunks)]


def chunk_streams(
    stream: "np.random.SeedSequence | None", count: int
) -> "list[np.random.SeedSequence | None]":
    """One independent seed stream per chunk.

    A single chunk receives ``stream`` itself (bit-compatible with the
    unchunked legacy path); multiple chunks each receive a spawned child.
    """
    if count <= 1:
        return [stream]
    if stream is None:
        return [None] * count
    return stream.spawn(count)


def run_chunk(
    dem: "DetectorErrorModel",
    decoder_factory: "DecoderFactory",
    shots: int,
    stream: "np.random.SeedSequence | None",
) -> tuple[SampleBatch, np.ndarray]:
    """Sample and decode one chunk (also the unit shipped to pool workers).

    The decoder is rebuilt from its factory inside the worker because
    decoder *instances* (matching graphs, lookup tables) need not be
    picklable; the factory and the DEM are.
    """
    batch = sample_detector_error_model(dem, shots, seed=stream)
    decoder = decoder_factory(dem)
    return batch, decode_predictions(decoder, batch)


def merge_chunks(
    results: "list[tuple[SampleBatch, np.ndarray]]", dem: "DetectorErrorModel"
) -> tuple[SampleBatch, np.ndarray]:
    """Concatenate chunk results in chunk order.

    An empty result list (``shots=0``) returns a well-formed empty batch
    instead of crashing in ``zip(*[])``.
    """
    if not results:
        detectors = np.zeros((0, dem.num_detectors), dtype=np.uint8)
        empty = SampleBatch(
            detectors=detectors,
            observables=np.zeros((0, dem.num_observables), dtype=np.uint8),
            faults=np.zeros((0, dem.num_mechanisms), dtype=np.uint8),
            packed_detectors=pack_rows(detectors),
        )
        return empty, np.zeros((0, dem.num_observables), dtype=np.uint8)
    batches, predictions = zip(*results)
    packed = [batch.packed_detectors for batch in batches]
    merged = SampleBatch(
        detectors=np.concatenate([batch.detectors for batch in batches]),
        observables=np.concatenate([batch.observables for batch in batches]),
        faults=np.concatenate([batch.faults for batch in batches]),
        packed_detectors=(
            np.concatenate(packed) if all(p is not None for p in packed) else None
        ),
    )
    return merged, np.concatenate(predictions)


def submit_chunks(
    pool: "Executor",
    dem: "DetectorErrorModel",
    decoder_factory: "DecoderFactory",
    shots: int,
    stream: "np.random.SeedSequence | None",
    *,
    chunk_shots: int | None = None,
) -> "list[Future]":
    """Submit every chunk of one sampling/decoding task to ``pool``.

    Returns the chunk futures in chunk order; gather with
    ``merge_chunks([f.result() for f in futures], dem)``.  Callers that fan
    out several tasks (two bases, many schedules) submit them all before
    gathering so chunks interleave across the pool.
    """
    sizes = chunk_sizes(shots, chunk_shots)
    streams = chunk_streams(stream, len(sizes))
    return [
        pool.submit(run_chunk, dem, decoder_factory, size, chunk_stream)
        for size, chunk_stream in zip(sizes, streams)
    ]


def sample_and_decode(
    dem: "DetectorErrorModel",
    decoder_factory: "DecoderFactory",
    shots: int,
    stream: "np.random.SeedSequence | None",
    *,
    pool: "Executor | None" = None,
    chunk_shots: int | None = None,
) -> tuple[SampleBatch, np.ndarray]:
    """Run the full chunked sampling/decoding task, serially or on a pool.

    The serial path executes the identical chunk layout in process (with one
    decoder instance reused across chunks — decoding is a pure function of
    the DEM and syndrome, so this is bit-identical to per-chunk rebuilds),
    which is what makes ``workers=1`` and ``workers=N`` indistinguishable in
    output.
    """
    sizes = chunk_sizes(shots, chunk_shots)
    if not sizes:
        return merge_chunks([], dem)
    if pool is not None:
        futures = submit_chunks(
            pool, dem, decoder_factory, shots, stream, chunk_shots=chunk_shots
        )
        return merge_chunks([future.result() for future in futures], dem)
    streams = chunk_streams(stream, len(sizes))
    decoder = decoder_factory(dem)
    results = []
    for size, chunk_stream in zip(sizes, streams):
        batch = sample_detector_error_model(dem, size, seed=chunk_stream)
        results.append((batch, decode_predictions(decoder, batch)))
    return merge_chunks(results, dem)
