"""Surface-code constructions: rotated, rectangular, planar, and defect codes.

All constructions attach lattice coordinates to ``metadata`` so that
geometry-aware schedules (Google's zig-zag order, the clockwise /
anti-clockwise orders of Figure 7) can be produced by the scheduling layer.

Coordinate conventions
----------------------
Data qubits of the rotated code live on an ``rows x cols`` grid at integer
coordinates ``(r, c)``.  Plaquettes are indexed by the coordinate of their
north-west data qubit and sit at ``(r + 0.5, c + 0.5)``.  X-type boundary
plaquettes are attached to the top and bottom edges and Z-type boundary
plaquettes to the left and right edges, so that:

* the logical Z operator is a horizontal row of physical ``Z`` s, and
* the logical X operator is a vertical column of physical ``X`` s,

matching Figure 2(a) of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.codes.base import CSSCode
from repro.pauli import PauliString

__all__ = [
    "rotated_surface_code",
    "rectangular_surface_code",
    "planar_surface_code",
    "defect_surface_code",
]


def _rotated_plaquettes(rows: int, cols: int) -> list[dict]:
    """Enumerate plaquettes of the (possibly rectangular) rotated surface code.

    Each plaquette is a dict with keys ``type`` ('X' or 'Z'), ``position``
    (the (row+0.5, col+0.5) centre), and ``qubits`` (list of (r, c) data
    coordinates, in NW, NE, SW, SE order with missing corners omitted).
    """
    plaquettes: list[dict] = []
    for r in range(-1, rows):
        for c in range(-1, cols):
            corners = [(r, c), (r, c + 1), (r + 1, c), (r + 1, c + 1)]
            qubits = [
                (qr, qc)
                for qr, qc in corners
                if 0 <= qr < rows and 0 <= qc < cols
            ]
            if len(qubits) < 2:
                continue
            ptype = "X" if (r + c) % 2 == 0 else "Z"
            if len(qubits) == 2:
                is_top_or_bottom = r == -1 or r == rows - 1
                is_left_or_right = c == -1 or c == cols - 1
                if is_top_or_bottom and ptype != "X":
                    continue
                if is_left_or_right and ptype != "Z":
                    continue
            plaquettes.append(
                {
                    "type": ptype,
                    "position": (r + 0.5, c + 0.5),
                    "qubits": qubits,
                }
            )
    return plaquettes


def _grid_index(rows: int, cols: int) -> dict[tuple[int, int], int]:
    return {(r, c): r * cols + c for r in range(rows) for c in range(cols)}


def rectangular_surface_code(rows: int, cols: int) -> CSSCode:
    """Rotated surface code on a ``rows x cols`` data-qubit grid.

    The X distance equals ``rows`` (vertical logical X string) and the Z
    distance equals ``cols`` (horizontal logical Z string).
    """
    if rows < 2 or cols < 2:
        raise ValueError("rotated surface codes need at least a 2x2 grid")
    index = _grid_index(rows, cols)
    plaquettes = _rotated_plaquettes(rows, cols)
    n = rows * cols
    hx_rows, hz_rows = [], []
    coords = []
    for plaq in plaquettes:
        row = np.zeros(n, dtype=np.uint8)
        for qubit in plaq["qubits"]:
            row[index[qubit]] = 1
        if plaq["type"] == "X":
            hx_rows.append(row)
        else:
            hz_rows.append(row)
        coords.append(plaq)
    code = CSSCode(
        np.array(hx_rows, dtype=np.uint8),
        np.array(hz_rows, dtype=np.uint8),
        name=f"rotated_surface_{rows}x{cols}",
        distance=min(rows, cols),
        metadata={
            "rows": rows,
            "cols": cols,
            "qubit_coords": {v: k for k, v in index.items()},
            "plaquettes": coords,
            "family": "rotated_surface",
        },
    )
    # Pin the canonical geometric logical operators so that experiment code
    # can reason about the horizontal Z / vertical X strings explicitly.
    logical_z = PauliString.from_sparse(
        n, {index[(0, c)]: "Z" for c in range(cols)}
    )
    logical_x = PauliString.from_sparse(
        n, {index[(r, 0)]: "X" for r in range(rows)}
    )
    code.set_logicals([logical_x], [logical_z])
    return code


def rotated_surface_code(distance: int) -> CSSCode:
    """Square rotated surface code ``[[d^2, 1, d]]``."""
    return rectangular_surface_code(distance, distance)


def planar_surface_code(distance: int) -> CSSCode:
    """Unrotated (planar) surface code ``[[d^2 + (d-1)^2, 1, d]]``.

    The code lives on a ``(2d-1) x (2d-1)`` grid of sites: data qubits at
    sites with even coordinate sum, X-type (star) stabilizers at sites with
    odd row / even column, and Z-type (plaquette) stabilizers at sites with
    even row / odd column.  Each stabilizer acts on its (up to four) grid
    neighbours.  The logical Z operator is the top row of data qubits; the
    logical X operator is the left column.
    """
    d = distance
    if d < 2:
        raise ValueError("planar surface code needs distance >= 2")
    size = 2 * d - 1
    data_sites = [
        (r, c) for r in range(size) for c in range(size) if (r + c) % 2 == 0
    ]
    index = {site: i for i, site in enumerate(data_sites)}
    n = len(data_sites)

    def stabilizer_row(row: int, col: int) -> np.ndarray:
        support = np.zeros(n, dtype=np.uint8)
        for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            site = (row + dr, col + dc)
            if site in index:
                support[index[site]] = 1
        return support

    hx_rows = [
        stabilizer_row(r, c)
        for r in range(size)
        for c in range(size)
        if r % 2 == 1 and c % 2 == 0
    ]
    hz_rows = [
        stabilizer_row(r, c)
        for r in range(size)
        for c in range(size)
        if r % 2 == 0 and c % 2 == 1
    ]
    code = CSSCode(
        np.array(hx_rows, dtype=np.uint8),
        np.array(hz_rows, dtype=np.uint8),
        name=f"planar_surface_d{d}",
        distance=d,
        metadata={
            "family": "planar_surface",
            "qubit_coords": {i: site for site, i in index.items()},
            "distance": d,
        },
    )
    logical_z = PauliString.from_sparse(
        n, {index[(r, 0)]: "Z" for r in range(0, size, 2)}
    )
    logical_x = PauliString.from_sparse(
        n, {index[(0, c)]: "X" for c in range(0, size, 2)}
    )
    code.set_logicals([logical_x], [logical_z])
    return code


def defect_surface_code(distance: int, *, removed: tuple[int, int] | None = None) -> CSSCode:
    """Rotated surface code with one bulk Z plaquette removed (a "defect").

    Removing a bulk stabilizer adds a second logical qubit whose Z operator
    is the removed plaquette operator and whose X operator is a string from
    the defect to the boundary.  The paper's defect codes ([[25,2,5]],
    [[41,2,7]]) are reproduced in spirit: ours are ``[[d^2, 2, d_eff]]``
    where the defect logical has the defect-perimeter distance.
    """
    base = rectangular_surface_code(distance, distance)
    rows = cols = distance
    if removed is None:
        # Pick a bulk Z plaquette near the centre.
        target = None
        for plaq in base.metadata["plaquettes"]:
            if plaq["type"] != "Z" or len(plaq["qubits"]) != 4:
                continue
            pr, pc = plaq["position"]
            if abs(pr - rows / 2) <= 1 and abs(pc - cols / 2) <= 1:
                target = plaq
                break
        if target is None:
            raise ValueError("could not find a bulk Z plaquette to remove")
        removed = (int(target["position"][0] - 0.5), int(target["position"][1] - 0.5))
    index = _grid_index(rows, cols)
    plaquettes = [
        p
        for p in _rotated_plaquettes(rows, cols)
        if not (
            p["type"] == "Z"
            and p["position"] == (removed[0] + 0.5, removed[1] + 0.5)
        )
    ]
    n = rows * cols
    hx_rows, hz_rows = [], []
    for plaq in plaquettes:
        row = np.zeros(n, dtype=np.uint8)
        for qubit in plaq["qubits"]:
            row[index[qubit]] = 1
        (hx_rows if plaq["type"] == "X" else hz_rows).append(row)
    return CSSCode(
        np.array(hx_rows, dtype=np.uint8),
        np.array(hz_rows, dtype=np.uint8),
        name=f"defect_surface_d{distance}",
        distance=distance,
        metadata={
            "rows": rows,
            "cols": cols,
            "qubit_coords": {v: k for k, v in index.items()},
            "plaquettes": plaquettes,
            "removed_plaquette": removed,
            "family": "defect_surface",
        },
    )
