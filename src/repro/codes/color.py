"""Triangular colour-code constructions.

The hexagonal (6.6.6) triangular colour code of odd distance ``d`` is built
on the triangular patch of the triangular lattice::

    sites (i, j) with i >= 0, j >= 0, i + j <= L,   L = 3 (d - 1) / 2

Sites with ``(i - j) % 3 == 1`` carry the hexagonal faces (stabilizers);
every other site carries a data qubit.  Each face acts on its (up to six)
triangular-lattice neighbours that are data qubits, giving weight-6 faces in
the bulk and weight-4 faces on the boundary.  Both an X-type and a Z-type
stabilizer are placed on every face (the code is self-dual CSS), so the
patch encodes a single logical qubit with distance ``d`` — one side of the
triangle realises the logical operator.

``d = 3`` reproduces the Steane code; ``d = 5, 7, 9`` give the
``[[19, 1, 5]]``, ``[[37, 1, 7]]`` and ``[[61, 1, 9]]`` instances used in
the paper's Table 2.

The paper additionally evaluates the square-octagonal (4.8.8) family.  A
faithful 4.8.8 lattice cut is not reproduced here; see
:func:`square_octagonal_color_code` for the documented substitution.
"""

from __future__ import annotations

import numpy as np

from repro.codes.base import CSSCode
from repro.codes.surface import planar_surface_code
from repro.pauli import PauliString

__all__ = [
    "hexagonal_color_code",
    "square_octagonal_color_code",
    "steane_code",
]

_TRIANGULAR_NEIGHBOURS = ((1, 0), (-1, 0), (0, 1), (0, -1), (1, -1), (-1, 1))


def _hexagonal_layout(distance: int) -> tuple[list[tuple[int, int]], list[list[tuple[int, int]]]]:
    """Return (data-qubit sites, per-face data-qubit site lists)."""
    if distance < 3 or distance % 2 == 0:
        raise ValueError("hexagonal colour codes need an odd distance >= 3")
    bound = 3 * (distance - 1) // 2
    sites = [
        (i, j)
        for i in range(bound + 1)
        for j in range(bound + 1 - i)
    ]
    site_set = set(sites)
    faces_sites = [s for s in sites if (s[0] - s[1]) % 3 == 1]
    data_sites = [s for s in sites if (s[0] - s[1]) % 3 != 1]
    faces: list[list[tuple[int, int]]] = []
    data_set = set(data_sites)
    for fi, fj in faces_sites:
        support = []
        for di, dj in _TRIANGULAR_NEIGHBOURS:
            neighbour = (fi + di, fj + dj)
            if neighbour in site_set and neighbour in data_set:
                support.append(neighbour)
        faces.append(sorted(support))
    return data_sites, faces


def hexagonal_color_code(distance: int) -> CSSCode:
    """Triangular 6.6.6 colour code ``[[ (3d^2 + 1)/4, 1, d ]]``."""
    data_sites, faces = _hexagonal_layout(distance)
    index = {site: i for i, site in enumerate(sorted(data_sites))}
    n = len(index)
    rows = []
    for face in faces:
        row = np.zeros(n, dtype=np.uint8)
        for site in face:
            row[index[site]] = 1
        rows.append(row)
    h = np.array(rows, dtype=np.uint8)
    code = CSSCode(
        h,
        h,
        name=f"hexagonal_color_d{distance}",
        distance=distance,
        metadata={
            "family": "hexagonal_color",
            "qubit_coords": {i: site for site, i in index.items()},
            "faces": faces,
            "distance": distance,
        },
    )
    # One side of the triangle (the j = 0 edge) realises both logicals.
    edge = [index[site] for site in index if site[1] == 0]
    logical_x = PauliString.from_sparse(n, {q: "X" for q in edge})
    logical_z = PauliString.from_sparse(n, {q: "Z" for q in edge})
    code.set_logicals([logical_x], [logical_z])
    return code


def steane_code() -> CSSCode:
    """The ``[[7, 1, 3]]`` Steane code (distance-3 hexagonal colour code)."""
    code = hexagonal_color_code(3)
    code.name = "steane"
    return code


def square_octagonal_color_code(distance: int) -> CSSCode:
    """Stand-in for the triangular 4.8.8 (square-octagonal) colour code.

    The exact 4.8.8 lattice cut used by the paper is not reproduced; the
    faithful construction requires the truncated-square tiling triangle,
    which we substitute with the planar (unrotated) surface code of the same
    distance.  The substitution preserves what the experiment exercises —
    a second single-logical-qubit CSS family with mixed stabilizer weights,
    decodable by BP-OSD and union-find — and is recorded in DESIGN.md and
    EXPERIMENTS.md.  ``distance`` must be odd and at least 3.
    """
    if distance < 3 or distance % 2 == 0:
        raise ValueError("square-octagonal colour codes need an odd distance >= 3")
    code = planar_surface_code(distance)
    code.name = f"square_octagonal_sub_d{distance}"
    code.metadata["family"] = "square_octagonal_substitute"
    return code
