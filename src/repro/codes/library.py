"""Deprecated code lookup shims (superseded by :mod:`repro.api`).

The named code table that used to live here as ``CODE_BUILDERS`` moved to
the ``repro.api.codes`` registry, which adds parametric spec strings
(``"surface:d=5"``), aliases and decorator registration.  ``get_code`` /
``available_codes`` remain as thin deprecation shims so existing imports
keep working; they forward to the registry and return identical objects.
"""

from __future__ import annotations

import warnings

from repro.codes.base import StabilizerCode

__all__ = ["CODE_BUILDERS", "get_code", "available_codes"]


def _registry():
    # Imported lazily: repro.api.registries imports the code-construction
    # modules, which would cycle through ``repro.codes`` at package-import
    # time if pulled in here eagerly.
    from repro.api.registries import codes

    return codes


def available_codes() -> list[str]:
    """Deprecated: use ``repro.api.codes.available()``."""
    warnings.warn(
        "available_codes() is deprecated; use repro.api.codes.available()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _registry().available()


def get_code(name: str) -> StabilizerCode:
    """Deprecated: use ``repro.api.codes.build(name)``."""
    warnings.warn(
        "get_code() is deprecated; use repro.api.codes.build(name)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _registry().build(name)


def __getattr__(name: str):
    if name == "CODE_BUILDERS":
        warnings.warn(
            "CODE_BUILDERS is deprecated; use the repro.api.codes registry",
            DeprecationWarning,
            stacklevel=2,
        )
        registry = _registry()
        return {entry: registry.get(entry) for entry in registry.available()}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
