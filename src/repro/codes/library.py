"""Named registry of the QEC codes used across the experiments.

The registry lets experiment drivers and examples request codes by a short
string (e.g. ``"hexagonal_color_d5"``) without importing individual
construction modules, and mirrors the ``/qecc`` folder role of the paper's
artifact.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.codes.base import StabilizerCode
from repro.codes.bivariate_bicycle import bb_code_72_12_6, bivariate_bicycle_code
from repro.codes.color import hexagonal_color_code, square_octagonal_color_code, steane_code
from repro.codes.hypergraph_product import (
    hyperbolic_color_substitute,
    hyperbolic_surface_substitute,
    toric_code,
)
from repro.codes.small import five_qubit_code, repetition_code, shor_code
from repro.codes.surface import (
    defect_surface_code,
    planar_surface_code,
    rectangular_surface_code,
    rotated_surface_code,
)
from repro.codes.xzzx import xzzx_surface_code

__all__ = ["CODE_BUILDERS", "get_code", "available_codes"]


CODE_BUILDERS: dict[str, Callable[[], StabilizerCode]] = {
    # Surface-code family (Figure 12, Figure 15).
    "rotated_surface_d3": lambda: rotated_surface_code(3),
    "rotated_surface_d5": lambda: rotated_surface_code(5),
    "rotated_surface_d7": lambda: rotated_surface_code(7),
    "rotated_surface_d9": lambda: rotated_surface_code(9),
    "rotated_surface_5x9": lambda: rectangular_surface_code(5, 9),
    "planar_surface_d3": lambda: planar_surface_code(3),
    "planar_surface_d5": lambda: planar_surface_code(5),
    # Defect surface codes (Table 2).
    "defect_surface_d5": lambda: defect_surface_code(5),
    "defect_surface_d7": lambda: defect_surface_code(7),
    # Hexagonal colour codes (Table 2, Table 4).
    "hexagonal_color_d3": lambda: hexagonal_color_code(3),
    "hexagonal_color_d5": lambda: hexagonal_color_code(5),
    "hexagonal_color_d7": lambda: hexagonal_color_code(7),
    "hexagonal_color_d9": lambda: hexagonal_color_code(9),
    # Square-octagonal colour codes (substituted; see DESIGN.md).
    "square_octagonal_d3": lambda: square_octagonal_color_code(3),
    "square_octagonal_d5": lambda: square_octagonal_color_code(5),
    "square_octagonal_d7": lambda: square_octagonal_color_code(7),
    # Hyperbolic substitutes (Table 2).
    "hyperbolic_surface_k4": lambda: hyperbolic_surface_substitute("small_k4"),
    "hyperbolic_surface_toric3": lambda: hyperbolic_surface_substitute("toric_3"),
    "hyperbolic_surface_toric4": lambda: hyperbolic_surface_substitute("toric_4"),
    "hyperbolic_surface_k16": lambda: hyperbolic_surface_substitute("medium_k16"),
    "hyperbolic_color_k4": lambda: hyperbolic_color_substitute("k4"),
    "hyperbolic_color_k8": lambda: hyperbolic_color_substitute("k8"),
    "hyperbolic_color_k16": lambda: hyperbolic_color_substitute("k16"),
    # Bivariate bicycle (Figure 13).  "bb_18" is a small instance of the same
    # construction used where the full [[72,12,6]] code would be too slow.
    "bb_72_12_6": bb_code_72_12_6,
    "bb_18": lambda: bivariate_bicycle_code(
        3, 3, [(0, 0), (1, 0), (0, 1)], [(0, 0), (1, 0), (0, 1)], name="bb_18"
    ),
    # XZZX code mentioned in Section 5.3.1.
    "xzzx_d3": lambda: xzzx_surface_code(3),
    "xzzx_d5": lambda: xzzx_surface_code(5),
    # Small reference codes.
    "steane": steane_code,
    "five_qubit": five_qubit_code,
    "shor": shor_code,
    "repetition_3": lambda: repetition_code(3),
    "repetition_5": lambda: repetition_code(5),
    "toric_d3": lambda: toric_code(3),
    "toric_d4": lambda: toric_code(4),
}


def available_codes() -> list[str]:
    """Return the sorted list of registered code names."""
    return sorted(CODE_BUILDERS)


def get_code(name: str) -> StabilizerCode:
    """Construct and return the registered code named ``name``."""
    try:
        builder = CODE_BUILDERS[name]
    except KeyError as error:
        raise KeyError(
            f"unknown code {name!r}; available: {', '.join(available_codes())}"
        ) from error
    return builder()
