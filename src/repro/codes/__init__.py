"""QEC code library: stabilizer/CSS base classes and concrete code families."""

from repro.codes.base import CodeValidationError, CSSCode, StabilizerCode
from repro.codes.bivariate_bicycle import bb_code_72_12_6, bivariate_bicycle_code
from repro.codes.color import hexagonal_color_code, square_octagonal_color_code, steane_code
from repro.codes.hypergraph_product import (
    hamming_7_4_check_matrix,
    hypergraph_product_code,
    repetition_check_matrix,
    toric_code,
)
from repro.codes.library import available_codes, get_code
from repro.codes.small import five_qubit_code, repetition_code, shor_code
from repro.codes.surface import (
    defect_surface_code,
    planar_surface_code,
    rectangular_surface_code,
    rotated_surface_code,
)
from repro.codes.xzzx import xzzx_surface_code

__all__ = [
    "StabilizerCode",
    "CSSCode",
    "CodeValidationError",
    "available_codes",
    "get_code",
    "rotated_surface_code",
    "rectangular_surface_code",
    "planar_surface_code",
    "defect_surface_code",
    "hexagonal_color_code",
    "square_octagonal_color_code",
    "steane_code",
    "bivariate_bicycle_code",
    "bb_code_72_12_6",
    "hypergraph_product_code",
    "repetition_check_matrix",
    "hamming_7_4_check_matrix",
    "toric_code",
    "xzzx_surface_code",
    "five_qubit_code",
    "repetition_code",
    "shor_code",
]
