"""Bivariate bicycle (BB) codes of Bravyi et al. (Nature 2024).

A BB code is defined over the group algebra of Z_l x Z_m by two trinomials

    A = x^{a1} + y^{a2} + y^{a3},     B = y^{b1} + x^{b2} + x^{b3}

where ``x = S_l (x) I_m`` and ``y = I_l (x) S_m`` are commuting cyclic-shift
matrices.  The CSS check matrices are ``Hx = [A | B]`` and
``Hz = [B^T | A^T]`` acting on ``n = 2 l m`` data qubits.

The ``[[72, 12, 6]]`` instance (l = m = 6, A = x^3 + y + y^2,
B = y^3 + x + x^2) is the code IBM's hand-crafted schedule targets in the
paper's Figure 13.
"""

from __future__ import annotations

import numpy as np

from repro.codes.base import CSSCode
from repro.pauli.gf2 import gf2_matmul

__all__ = ["bivariate_bicycle_code", "bb_code_72_12_6", "KNOWN_BB_CODES"]

#: Known instances from Bravyi et al., keyed by (n, k, d).
KNOWN_BB_CODES: dict[tuple[int, int, int], dict] = {
    (72, 12, 6): {"l": 6, "m": 6, "a": [(1, 3, 0), (2, 0, 1), (2, 0, 2)], "b": [(2, 0, 3), (1, 1, 0), (1, 2, 0)]},
    (90, 8, 10): {"l": 15, "m": 3, "a": [(1, 9, 0), (2, 0, 1), (2, 0, 2)], "b": [(2, 0, 0), (1, 2, 0), (1, 7, 0)]},
    (108, 8, 10): {"l": 9, "m": 6, "a": [(1, 3, 0), (2, 0, 1), (2, 0, 2)], "b": [(2, 0, 3), (1, 1, 0), (1, 2, 0)]},
    (144, 12, 12): {"l": 12, "m": 6, "a": [(1, 3, 0), (2, 0, 1), (2, 0, 2)], "b": [(2, 0, 3), (1, 1, 0), (1, 2, 0)]},
}


def _cyclic_shift(size: int) -> np.ndarray:
    shift = np.zeros((size, size), dtype=np.uint8)
    for i in range(size):
        shift[i, (i + 1) % size] = 1
    return shift


def _monomial(l: int, m: int, term: tuple[int, int, int]) -> np.ndarray:
    """Return the l*m x l*m matrix for x^i y^j.

    ``term`` is ``(which, x_power, y_power)`` where ``which`` is kept for
    readability of :data:`KNOWN_BB_CODES` (1 = x-power listed first) and is
    not used in the arithmetic.
    """
    _, x_power, y_power = term
    x_mat = np.linalg.matrix_power(_cyclic_shift(l), x_power) % 2
    y_mat = np.linalg.matrix_power(_cyclic_shift(m), y_power) % 2
    return np.kron(x_mat, y_mat).astype(np.uint8)


def bivariate_bicycle_code(
    l: int,
    m: int,
    a_terms: list[tuple[int, int]] | list[tuple[int, int, int]],
    b_terms: list[tuple[int, int]] | list[tuple[int, int, int]],
    *,
    name: str | None = None,
    distance: int | None = None,
) -> CSSCode:
    """Construct a BB code from monomial exponent lists.

    ``a_terms`` / ``b_terms`` are lists of ``(x_power, y_power)`` pairs (an
    optional leading tag element is tolerated for the entries copied from
    :data:`KNOWN_BB_CODES`).
    """

    def normalise(term):
        if len(term) == 3:
            return term
        return (0, term[0], term[1])

    a = np.zeros((l * m, l * m), dtype=np.uint8)
    for term in a_terms:
        a ^= _monomial(l, m, normalise(term))
    b = np.zeros((l * m, l * m), dtype=np.uint8)
    for term in b_terms:
        b ^= _monomial(l, m, normalise(term))
    hx = np.concatenate([a, b], axis=1)
    hz = np.concatenate([b.T, a.T], axis=1)
    if gf2_matmul(hx, hz.T).any():
        raise ValueError("BB construction failed the CSS condition")
    return CSSCode(
        hx,
        hz,
        name=name or f"bb_l{l}_m{m}",
        distance=distance,
        metadata={"family": "bivariate_bicycle", "l": l, "m": m},
    )


def bb_code_72_12_6() -> CSSCode:
    """The ``[[72, 12, 6]]`` bivariate bicycle code (IBM's "gross"-family code)."""
    spec = KNOWN_BB_CODES[(72, 12, 6)]
    code = bivariate_bicycle_code(
        spec["l"],
        spec["m"],
        [(3, 0), (0, 1), (0, 2)],
        [(0, 3), (1, 0), (2, 0)],
        name="bb_72_12_6",
        distance=6,
    )
    return code
