"""XZZX (tailored) rotated surface codes.

The XZZX surface code is local-Clifford equivalent to the CSS rotated
surface code: applying a Hadamard to every data qubit on one checkerboard
sublattice exchanges X and Z on those qubits in every stabilizer.  The
resulting stabilizers all have the mixed form ``X Z Z X``, which makes the
code a useful exercise for the general (non-CSS) machinery — in particular
the stabilizer-partition step (Algorithm 1), which must keep anticommuting
partial checks in separate scheduling groups.
"""

from __future__ import annotations

import numpy as np

from repro.codes.base import StabilizerCode
from repro.codes.surface import rectangular_surface_code
from repro.pauli import PauliString

__all__ = ["xzzx_surface_code"]


def xzzx_surface_code(distance: int) -> StabilizerCode:
    """XZZX rotated surface code ``[[d^2, 1, d]]``."""
    css = rectangular_surface_code(distance, distance)
    coords = css.metadata["qubit_coords"]
    flip = {
        qubit
        for qubit, (row, col) in coords.items()
        if (row + col) % 2 == 1
    }

    def hadamard_sublattice(pauli: PauliString) -> PauliString:
        xs = pauli.xs.copy()
        zs = pauli.zs.copy()
        for qubit in flip:
            xs[qubit], zs[qubit] = zs[qubit], xs[qubit]
        return PauliString(xs=xs, zs=zs, sign=pauli.sign)

    stabilizers = [hadamard_sublattice(s) for s in css.stabilizers]
    code = StabilizerCode(
        stabilizers,
        name=f"xzzx_surface_d{distance}",
        distance=distance,
        metadata={
            "family": "xzzx_surface",
            "qubit_coords": coords,
            "hadamard_sublattice": sorted(flip),
            "rows": distance,
            "cols": distance,
        },
    )
    code.set_logicals(
        [hadamard_sublattice(p) for p in css.logical_xs],
        [hadamard_sublattice(p) for p in css.logical_zs],
    )
    return code
