"""Small reference codes used in unit tests and examples."""

from __future__ import annotations

import numpy as np

from repro.codes.base import CSSCode, StabilizerCode
from repro.pauli import PauliString

__all__ = ["five_qubit_code", "repetition_code", "shor_code"]


def five_qubit_code() -> StabilizerCode:
    """The perfect ``[[5, 1, 3]]`` code (non-CSS)."""
    generators = [
        PauliString.from_string("XZZXI"),
        PauliString.from_string("IXZZX"),
        PauliString.from_string("XIXZZ"),
        PauliString.from_string("ZXIXZ"),
    ]
    code = StabilizerCode(
        generators,
        name="five_qubit",
        distance=3,
        metadata={"family": "perfect"},
    )
    code.set_logicals(
        [PauliString.from_string("XXXXX")], [PauliString.from_string("ZZZZZ")]
    )
    return code


def repetition_code(length: int) -> CSSCode:
    """Bit-flip repetition code ``[[n, 1, n]]`` (Z-type checks only).

    Only protects against X errors; used as the simplest non-trivial test
    fixture for circuit construction and decoding.
    """
    if length < 2:
        raise ValueError("repetition code needs length >= 2")
    hz = np.zeros((length - 1, length), dtype=np.uint8)
    for i in range(length - 1):
        hz[i, i] = 1
        hz[i, i + 1] = 1
    hx = np.zeros((0, length), dtype=np.uint8)
    code = CSSCode(hx, hz, name=f"repetition_{length}", distance=1,
                   metadata={"family": "repetition"})
    logical_z = PauliString.from_sparse(length, {0: "Z"})
    logical_x = PauliString.from_sparse(length, {i: "X" for i in range(length)})
    code.set_logicals([logical_x], [logical_z])
    return code


def shor_code() -> CSSCode:
    """The ``[[9, 1, 3]]`` Shor code."""
    hz = np.zeros((6, 9), dtype=np.uint8)
    for block in range(3):
        for offset in range(2):
            row = 2 * block + offset
            hz[row, 3 * block + offset] = 1
            hz[row, 3 * block + offset + 1] = 1
    hx = np.zeros((2, 9), dtype=np.uint8)
    hx[0, 0:6] = 1
    hx[1, 3:9] = 1
    return CSSCode(hx, hz, name="shor", distance=3, metadata={"family": "shor"})
