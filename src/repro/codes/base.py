"""Stabilizer and CSS code base classes.

A :class:`StabilizerCode` is defined by a list of commuting Pauli-string
stabilizer generators.  The class derives the number of encoded qubits, a
symplectically paired set of logical operators, and (bounded) code-distance
estimates, and exposes the per-stabilizer check structure that the
scheduling layer consumes (which data qubit is touched by which Pauli letter
of which stabilizer).

:class:`CSSCode` specialises the construction to codes given by a pair of
GF(2) parity-check matrices ``hx`` (X-type stabilizers) and ``hz`` (Z-type
stabilizers) with ``hx @ hz.T = 0``.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

import numpy as np

from repro.pauli import PauliString
from repro.pauli.gf2 import (
    gf2_inverse,
    gf2_matmul,
    gf2_nullspace,
    gf2_rank,
    gf2_row_span_contains,
)

__all__ = ["StabilizerCode", "CSSCode", "CodeValidationError"]


class CodeValidationError(ValueError):
    """Raised when a stabilizer set does not define a valid code."""


def _symplectic_form(num_qubits: int) -> np.ndarray:
    """Return the 2n x 2n symplectic form Lambda = [[0, I], [I, 0]]."""
    lam = np.zeros((2 * num_qubits, 2 * num_qubits), dtype=np.uint8)
    lam[:num_qubits, num_qubits:] = np.eye(num_qubits, dtype=np.uint8)
    lam[num_qubits:, :num_qubits] = np.eye(num_qubits, dtype=np.uint8)
    return lam


class StabilizerCode:
    """A stabilizer code defined by a list of commuting Pauli generators.

    Parameters
    ----------
    stabilizers:
        Independent, mutually commuting Pauli strings.  Dependent generators
        are rejected so that ``k = n - len(stabilizers)`` holds.
    name:
        Human readable identifier used in result tables.
    metadata:
        Free-form dictionary (e.g. lattice coordinates) preserved for
        schedule constructions that want geometric information.
    """

    def __init__(
        self,
        stabilizers: Sequence[PauliString],
        *,
        name: str = "stabilizer_code",
        distance: int | None = None,
        metadata: dict | None = None,
        validate: bool = True,
    ) -> None:
        if not stabilizers:
            raise CodeValidationError("a code needs at least one stabilizer")
        self.stabilizers: list[PauliString] = [s.copy() for s in stabilizers]
        self.name = name
        self.num_qubits = self.stabilizers[0].num_qubits
        self.metadata = dict(metadata or {})
        self._declared_distance = distance
        if validate:
            self._validate()
        self._logical_xs: list[PauliString] | None = None
        self._logical_zs: list[PauliString] | None = None

    # ------------------------------------------------------------------
    # Validation and basic invariants
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n = self.num_qubits
        for stab in self.stabilizers:
            if stab.num_qubits != n:
                raise CodeValidationError("stabilizers act on differing qubit counts")
        for first, second in itertools.combinations(self.stabilizers, 2):
            if not first.commutes_with(second):
                raise CodeValidationError(
                    f"stabilizers do not commute: {first} vs {second}"
                )
        matrix = self.stabilizer_matrix()
        if gf2_rank(matrix) != len(self.stabilizers):
            raise CodeValidationError("stabilizer generators are not independent")

    def stabilizer_matrix(self) -> np.ndarray:
        """Return the r x 2n symplectic generator matrix ``[X | Z]``."""
        return np.array(
            [s.to_symplectic() for s in self.stabilizers], dtype=np.uint8
        )

    @property
    def num_stabilizers(self) -> int:
        return len(self.stabilizers)

    @property
    def num_logical_qubits(self) -> int:
        return self.num_qubits - self.num_stabilizers

    @property
    def k(self) -> int:
        return self.num_logical_qubits

    @property
    def n(self) -> int:
        return self.num_qubits

    @property
    def declared_distance(self) -> int | None:
        return self._declared_distance

    def parameters(self) -> tuple[int, int, int | None]:
        """Return the ``[[n, k, d]]`` triple (d may be ``None`` if unknown)."""
        return self.num_qubits, self.num_logical_qubits, self._declared_distance

    # ------------------------------------------------------------------
    # Logical operators
    # ------------------------------------------------------------------
    @property
    def logical_xs(self) -> list[PauliString]:
        if self._logical_xs is None:
            self._derive_logicals()
        return list(self._logical_xs)

    @property
    def logical_zs(self) -> list[PauliString]:
        if self._logical_zs is None:
            self._derive_logicals()
        return list(self._logical_zs)

    def set_logicals(
        self, logical_xs: Sequence[PauliString], logical_zs: Sequence[PauliString]
    ) -> None:
        """Override the automatically derived logical operators.

        The provided operators are checked for the expected commutation
        relations with the stabilizers and with each other.
        """
        k = self.num_logical_qubits
        if len(logical_xs) != k or len(logical_zs) != k:
            raise CodeValidationError(f"expected {k} logical X and Z operators")
        for logical in list(logical_xs) + list(logical_zs):
            for stab in self.stabilizers:
                if not logical.commutes_with(stab):
                    raise CodeValidationError(
                        f"logical operator {logical} anticommutes with stabilizer"
                    )
        for i, lx in enumerate(logical_xs):
            for j, lz in enumerate(logical_zs):
                expected = i != j
                if lx.commutes_with(lz) != expected:
                    raise CodeValidationError(
                        "logical operators are not symplectically paired"
                    )
        self._logical_xs = [p.copy() for p in logical_xs]
        self._logical_zs = [p.copy() for p in logical_zs]

    def _derive_logicals(self) -> None:
        """Derive a symplectically paired logical basis from the stabilizers."""
        n = self.num_qubits
        stab = self.stabilizer_matrix()
        lam = _symplectic_form(n)
        # Normalizer: vectors v with S . Lambda . v^T = 0.
        constraint = gf2_matmul(stab, lam)
        normalizer = gf2_nullspace(constraint)
        # Extract coset representatives of the normalizer modulo the
        # stabilizer row space (2k of them).
        logicals: list[np.ndarray] = []
        accumulated = stab.copy()
        rank = gf2_rank(accumulated)
        for candidate in normalizer:
            stacked = np.vstack([accumulated, candidate.reshape(1, -1)])
            new_rank = gf2_rank(stacked)
            if new_rank > rank:
                logicals.append(candidate)
                accumulated = stacked
                rank = new_rank
            if len(logicals) == 2 * self.num_logical_qubits:
                break
        if len(logicals) != 2 * self.num_logical_qubits:
            raise CodeValidationError("failed to derive a complete logical basis")
        pairs = self._symplectic_pairing(np.array(logicals, dtype=np.uint8), lam)
        self._logical_xs = [PauliString.from_symplectic(x) for x, _ in pairs]
        self._logical_zs = [PauliString.from_symplectic(z) for _, z in pairs]

    @staticmethod
    def _symplectic_pairing(
        vectors: np.ndarray, lam: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Pair rows of ``vectors`` into symplectically conjugate pairs.

        Implements the symplectic Gram-Schmidt procedure: repeatedly take a
        vector, find a partner that anticommutes with it, and strip both from
        every remaining vector so later pairs commute with earlier ones.
        """
        remaining = [row.copy() for row in vectors]
        pairs: list[tuple[np.ndarray, np.ndarray]] = []

        def sym_product(a: np.ndarray, b: np.ndarray) -> int:
            return int(gf2_matmul(a.reshape(1, -1), gf2_matmul(lam, b.reshape(-1, 1)))[0, 0])

        while remaining:
            first = remaining.pop(0)
            partner_index = None
            for index, other in enumerate(remaining):
                if sym_product(first, other) == 1:
                    partner_index = index
                    break
            if partner_index is None:
                # ``first`` commutes with everything left; it must be a
                # dependent leftover, which cannot happen for a full basis.
                raise CodeValidationError("symplectic pairing failed")
            partner = remaining.pop(partner_index)
            cleaned: list[np.ndarray] = []
            for other in remaining:
                adjusted = other.copy()
                if sym_product(adjusted, partner) == 1:
                    adjusted ^= first
                if sym_product(adjusted, first) == 1:
                    adjusted ^= partner
                cleaned.append(adjusted)
            remaining = cleaned
            pairs.append((first, partner))
        return pairs

    # ------------------------------------------------------------------
    # Distance estimation
    # ------------------------------------------------------------------
    def logical_weight_upper_bound(self, *, trials: int = 200, seed: int = 0) -> int:
        """Randomised upper bound on the code distance.

        Multiplies logical representatives by random stabilizer subsets and
        records the minimum weight seen.
        """
        rng = np.random.default_rng(seed)
        stab = self.stabilizer_matrix()
        best = self.num_qubits
        logicals = [p.to_symplectic() for p in self.logical_xs + self.logical_zs]
        for logical in logicals:
            best = min(best, _symplectic_weight(logical))
            for _ in range(trials):
                mask = rng.integers(0, 2, size=stab.shape[0], dtype=np.uint8)
                candidate = (logical ^ gf2_matmul(mask.reshape(1, -1), stab).reshape(-1))
                best = min(best, _symplectic_weight(candidate))
        return int(best)

    def exact_distance(self, *, max_weight: int | None = None) -> int | None:
        """Exhaustively search for the minimum-weight logical operator.

        Returns the distance if it is at most ``max_weight`` (default: the
        declared distance, or 6), otherwise ``None``.  Only intended for
        small codes used in tests.
        """
        limit = max_weight or self._declared_distance or 6
        stab = self.stabilizer_matrix()
        n = self.num_qubits
        lam = _symplectic_form(n)
        constraint = gf2_matmul(stab, lam)
        for weight in range(1, limit + 1):
            for support in itertools.combinations(range(n), weight):
                for letters in itertools.product("XZY", repeat=weight):
                    pauli = PauliString.from_sparse(n, zip(support, letters))
                    vec = pauli.to_symplectic()
                    syndrome = gf2_matmul(constraint, vec.reshape(-1, 1)).reshape(-1)
                    if syndrome.any():
                        continue
                    if not gf2_row_span_contains(stab, vec):
                        return weight
        return None

    # ------------------------------------------------------------------
    # Scheduling-facing structure
    # ------------------------------------------------------------------
    def checks(self) -> list[list[tuple[int, str]]]:
        """Return, per stabilizer, the list of ``(data_qubit, pauli_letter)`` checks."""
        result = []
        for stab in self.stabilizers:
            result.append([(q, stab.pauli_at(q)) for q in stab.support])
        return result

    def __repr__(self) -> str:
        n, k, d = self.parameters()
        d_text = "?" if d is None else str(d)
        return f"<{type(self).__name__} {self.name} [[{n},{k},{d_text}]]>"


def _symplectic_weight(vector: np.ndarray) -> int:
    half = vector.shape[0] // 2
    return int(np.count_nonzero(vector[:half] | vector[half:]))


class CSSCode(StabilizerCode):
    """A CSS code defined by parity-check matrices ``hx`` and ``hz``.

    Rows of ``hx`` become X-type stabilizers, rows of ``hz`` become Z-type
    stabilizers.  The two matrices must satisfy ``hx @ hz.T = 0 (mod 2)``.
    Redundant (dependent) rows are allowed and are removed automatically,
    which is convenient for lattice constructions that naturally produce one
    dependent face.
    """

    def __init__(
        self,
        hx: np.ndarray,
        hz: np.ndarray,
        *,
        name: str = "css_code",
        distance: int | None = None,
        metadata: dict | None = None,
    ) -> None:
        hx_arr = np.asarray(hx, dtype=np.uint8) & 1
        hz_arr = np.asarray(hz, dtype=np.uint8) & 1
        if hx_arr.ndim != 2 or hz_arr.ndim != 2:
            raise CodeValidationError("hx and hz must be 2-D matrices")
        if hx_arr.shape[1] != hz_arr.shape[1]:
            raise CodeValidationError("hx and hz must have the same number of columns")
        if gf2_matmul(hx_arr, hz_arr.T).any():
            raise CodeValidationError("hx @ hz.T != 0: not a CSS code")
        self.hx = _independent_rows(hx_arr)
        self.hz = _independent_rows(hz_arr)
        n = hx_arr.shape[1]
        stabilizers = []
        for row in self.hx:
            stabilizers.append(PauliString(xs=row, zs=np.zeros(n, dtype=np.uint8)))
        for row in self.hz:
            stabilizers.append(PauliString(xs=np.zeros(n, dtype=np.uint8), zs=row))
        super().__init__(
            stabilizers,
            name=name,
            distance=distance,
            metadata=metadata,
            validate=False,
        )

    # CSS codes have a cheaper logical-operator derivation that also keeps
    # the X/Z structure (logical X supported on X letters only).
    def _derive_logicals(self) -> None:
        n = self.num_qubits
        lx_candidates = _coset_representatives(gf2_nullspace(self.hz), self.hx)
        lz_candidates = _coset_representatives(gf2_nullspace(self.hx), self.hz)
        k = self.num_logical_qubits
        if len(lx_candidates) != k or len(lz_candidates) != k:
            raise CodeValidationError("CSS logical derivation produced wrong count")
        if k == 0:
            self._logical_xs = []
            self._logical_zs = []
            return
        lx = np.array(lx_candidates, dtype=np.uint8)
        lz = np.array(lz_candidates, dtype=np.uint8)
        pairing = gf2_matmul(lx, lz.T)
        transform = gf2_inverse(pairing).T
        lz = gf2_matmul(transform, lz)
        zeros = np.zeros(n, dtype=np.uint8)
        self._logical_xs = [PauliString(xs=row, zs=zeros) for row in lx]
        self._logical_zs = [PauliString(xs=zeros, zs=row) for row in lz]

    def css_exact_distance(self, *, max_weight: int | None = None) -> int | None:
        """CSS-specialised exhaustive distance search (X and Z separately)."""
        limit = max_weight or self._declared_distance or 6
        best = None
        for kernel_of, span_of in ((self.hz, self.hx), (self.hx, self.hz)):
            found = _min_weight_coset_element(kernel_of, span_of, limit)
            if found is not None:
                best = found if best is None else min(best, found)
        return best


def _independent_rows(matrix: np.ndarray) -> np.ndarray:
    """Return a maximal independent subset of the rows of ``matrix``."""
    kept: list[np.ndarray] = []
    rank = 0
    for row in matrix:
        candidate = kept + [row]
        new_rank = gf2_rank(np.array(candidate, dtype=np.uint8))
        if new_rank > rank:
            kept.append(row)
            rank = new_rank
    if not kept:
        return np.zeros((0, matrix.shape[1]), dtype=np.uint8)
    return np.array(kept, dtype=np.uint8)


def _coset_representatives(kernel: np.ndarray, span: np.ndarray) -> list[np.ndarray]:
    """Return kernel vectors extending the row span of ``span`` (one per coset)."""
    representatives: list[np.ndarray] = []
    accumulated = span.copy() if span.size else np.zeros((0, kernel.shape[1]), np.uint8)
    rank = gf2_rank(accumulated)
    for vector in kernel:
        stacked = np.vstack([accumulated, vector.reshape(1, -1)])
        new_rank = gf2_rank(stacked)
        if new_rank > rank:
            representatives.append(vector)
            accumulated = stacked
            rank = new_rank
    return representatives


def _min_weight_coset_element(
    kernel_of: np.ndarray, span_of: np.ndarray, limit: int
) -> int | None:
    """Minimum weight of a vector in ker(kernel_of) outside rowspace(span_of)."""
    n = kernel_of.shape[1]
    for weight in range(1, limit + 1):
        for support in itertools.combinations(range(n), weight):
            vec = np.zeros(n, dtype=np.uint8)
            vec[list(support)] = 1
            if gf2_matmul(kernel_of, vec.reshape(-1, 1)).any():
                continue
            if not gf2_row_span_contains(span_of, vec):
                return weight
    return None
