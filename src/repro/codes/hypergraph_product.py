"""Hypergraph-product (HGP) codes and classical seed codes.

Given two classical parity-check matrices ``H1`` (m1 x n1) and ``H2``
(m2 x n2), the hypergraph product construction yields a CSS code on
``n1 n2 + m1 m2`` qubits::

    Hx = [ H1 (x) I_n2   |   I_m1 (x) H2^T ]
    Hz = [ I_n1 (x) H2   |   H1^T (x) I_m2 ]

with ``k = k1 k2 + k1^T k2^T`` logical qubits and distance
``min(d1, d2, d1^T, d2^T)`` (for full-rank seeds simply ``k1 k2`` and
``min(d1, d2)``).

In this reproduction HGP codes play the role of the paper's hyperbolic
surface and hyperbolic colour codes (multi-logical-qubit LDPC CSS codes of
comparable size); the substitution is documented in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.codes.base import CSSCode

__all__ = [
    "hypergraph_product_code",
    "repetition_check_matrix",
    "hamming_7_4_check_matrix",
    "ring_check_matrix",
    "toric_code",
    "hyperbolic_surface_substitute",
    "hyperbolic_color_substitute",
]


def repetition_check_matrix(length: int) -> np.ndarray:
    """Open-boundary repetition code checks: ``(length-1) x length``."""
    h = np.zeros((length - 1, length), dtype=np.uint8)
    for i in range(length - 1):
        h[i, i] = 1
        h[i, i + 1] = 1
    return h


def ring_check_matrix(length: int) -> np.ndarray:
    """Closed-ring repetition code checks: ``length x length`` (rank n-1)."""
    h = np.zeros((length, length), dtype=np.uint8)
    for i in range(length):
        h[i, i] = 1
        h[i, (i + 1) % length] = 1
    return h


def hamming_7_4_check_matrix() -> np.ndarray:
    """Parity-check matrix of the classical ``[7, 4, 3]`` Hamming code."""
    return np.array(
        [
            [0, 0, 0, 1, 1, 1, 1],
            [0, 1, 1, 0, 0, 1, 1],
            [1, 0, 1, 0, 1, 0, 1],
        ],
        dtype=np.uint8,
    )


def hypergraph_product_code(
    h1: np.ndarray,
    h2: np.ndarray,
    *,
    name: str = "hgp",
    distance: int | None = None,
) -> CSSCode:
    """Build the hypergraph product of two classical check matrices."""
    h1 = np.asarray(h1, dtype=np.uint8) & 1
    h2 = np.asarray(h2, dtype=np.uint8) & 1
    m1, n1 = h1.shape
    m2, n2 = h2.shape
    hx = np.concatenate(
        [np.kron(h1, np.eye(n2, dtype=np.uint8)), np.kron(np.eye(m1, dtype=np.uint8), h2.T)],
        axis=1,
    )
    hz = np.concatenate(
        [np.kron(np.eye(n1, dtype=np.uint8), h2), np.kron(h1.T, np.eye(m2, dtype=np.uint8))],
        axis=1,
    )
    return CSSCode(
        hx,
        hz,
        name=name,
        distance=distance,
        metadata={
            "family": "hypergraph_product",
            "n1": n1,
            "n2": n2,
            "m1": m1,
            "m2": m2,
        },
    )


def toric_code(distance: int) -> CSSCode:
    """Toric code ``[[2 d^2, 2, d]]`` as the HGP of two ring codes."""
    ring = ring_check_matrix(distance)
    code = hypergraph_product_code(
        ring, ring, name=f"toric_d{distance}", distance=distance
    )
    code.metadata["family"] = "toric"
    return code


def hyperbolic_surface_substitute(variant: str) -> CSSCode:
    """Multi-logical-qubit LDPC codes standing in for hyperbolic surface codes.

    The paper evaluates ``[[30,8,3]], [[36,8,4]], [[40,10,4]], [[60,18,3]],
    [[60,8,4]], [[80,18,5]]`` hyperbolic surface codes; without the
    {5,4}-tessellation data we substitute hypergraph-product / toric codes
    with comparable block size and logical count.  ``variant`` is one of the
    keys listed in the error message on failure.
    """
    builders = {
        "small_k4": lambda: hypergraph_product_code(
            repetition_check_matrix(3),
            hamming_7_4_check_matrix(),
            name="hgp_rep3_hamming",
            distance=3,
        ),
        "toric_3": lambda: toric_code(3),
        "toric_4": lambda: toric_code(4),
        "toric_5": lambda: toric_code(5),
        "medium_k16": lambda: hypergraph_product_code(
            hamming_7_4_check_matrix(),
            hamming_7_4_check_matrix(),
            name="hgp_hamming_hamming",
            distance=3,
        ),
    }
    if variant not in builders:
        raise ValueError(
            f"unknown hyperbolic surface substitute {variant!r}; "
            f"choose one of {sorted(builders)}"
        )
    code = builders[variant]()
    code.metadata["family"] = "hyperbolic_surface_substitute"
    return code


def hyperbolic_color_substitute(variant: str) -> CSSCode:
    """LDPC codes standing in for the hyperbolic colour codes of Table 2."""
    builders = {
        "k4": lambda: hypergraph_product_code(
            repetition_check_matrix(4),
            hamming_7_4_check_matrix(),
            name="hgp_rep4_hamming",
            distance=3,
        ),
        "k8": lambda: hypergraph_product_code(
            np.array([[1, 1, 0, 0], [0, 0, 1, 1]], dtype=np.uint8),
            hamming_7_4_check_matrix(),
            name="hgp_pair4_hamming",
            distance=2,
        ),
        "k16": lambda: hypergraph_product_code(
            hamming_7_4_check_matrix(),
            hamming_7_4_check_matrix(),
            name="hgp_hamming_hamming_color",
            distance=3,
        ),
    }
    if variant not in builders:
        raise ValueError(
            f"unknown hyperbolic colour substitute {variant!r}; "
            f"choose one of {sorted(builders)}"
        )
    code = builders[variant]()
    code.metadata["family"] = "hyperbolic_color_substitute"
    return code
