"""Belief propagation with ordered-statistics post-processing (BP-OSD).

The decoder of Roffe et al. (Phys. Rev. Research 2, 043423) as used in the
paper for colour and bivariate-bicycle codes:

* **BP stage** — normalised min-sum belief propagation on the Tanner graph
  of the DEM's check matrix, vectorised over shots with numpy: message
  state lives in dense edge-major ``(edges, shots)`` / per-mechanism
  ``(mechanisms, shots)`` arrays, so one iteration advances the whole shot
  block with scatter/gather ufuncs and no per-shot Python.  Shots whose
  hard decision reproduces the syndrome are accepted directly.
* **OSD-0 stage** — only for the non-converged residue: columns are ranked
  by the BP posterior reliability, a full-rank column basis is selected
  greedily in that order, and the syndrome is solved exactly on that basis
  (all other mechanisms set to zero).

The output per shot is the XOR of the observable signatures of the selected
mechanisms.

Batch decoding enters through the base class's packed dedup front end, so
BP message passing runs over the block of *unique* syndromes only — at
paper-regime error rates a 5–50x reduction in BP columns and OSD calls.
Deduplication is bit-transparent because BP here is *elementwise*: columns
never interact, and each column's posteriors/hard decision are frozen at
its own first convergence iteration, so every shot's result equals its
singleton decode regardless of what else shares the batch.
"""

from __future__ import annotations

import numpy as np

from repro.decoders.base import Decoder
from repro.sim.dem import DetectorErrorModel

__all__ = ["BPOSDDecoder"]

_LLR_CLIP = 30.0


class BPOSDDecoder(Decoder):
    """Normalised min-sum BP + OSD-0 decoder."""

    def __init__(
        self,
        dem: DetectorErrorModel,
        *,
        max_iterations: int = 30,
        scaling_factor: float = 0.75,
    ) -> None:
        super().__init__(dem)
        self.max_iterations = max_iterations
        self.scaling_factor = scaling_factor
        self._h = self.check_matrix.astype(np.uint8)
        # Cached int64 casts of H (and transpose) for the residual matmuls —
        # recomputing them per decode dominated small-batch calls.
        self._h_int = self._h.astype(np.int64)
        self._h_int_t = np.ascontiguousarray(self._h_int.T)
        self._num_checks, self._num_mechanisms = self._h.shape
        priors = np.clip(self.priors, 1e-12, 0.5 - 1e-12)
        self._prior_llrs = np.log((1 - priors) / priors)
        # Tanner graph edges in edge-major layout (scatter axis first).
        # ``np.nonzero`` yields row-major order, so edges arrive sorted by
        # check — per-check reductions are contiguous segments.
        checks, mechanisms = np.nonzero(self._h)
        self._edge_check = checks.astype(np.int64)
        self._edge_mechanism = mechanisms.astype(np.int64)
        # Segment layout for ``reduceat``-based message reductions: the
        # checks/mechanisms that own at least one edge, with the start of
        # each one's contiguous edge run.  The mechanism-major permutation
        # is a *stable* sort, so within one mechanism the edges keep their
        # check-ascending order — reduction order (and therefore every
        # float partial sum) is identical to the ``ufunc.at`` scatters this
        # replaces.
        if checks.size:
            self._check_present, check_starts = np.unique(
                self._edge_check, return_index=True
            )
            self._check_starts = check_starts
            self._mech_perm = np.argsort(self._edge_mechanism, kind="stable")
            self._mech_present, mech_starts = np.unique(
                self._edge_mechanism[self._mech_perm], return_index=True
            )
            self._mech_starts = mech_starts

    # ------------------------------------------------------------------
    # Batch decode (unique syndromes, via the base dedup front end)
    # ------------------------------------------------------------------
    def _decode_unique(self, syndromes: np.ndarray) -> np.ndarray:
        shots = syndromes.shape[0]
        predictions = np.zeros((shots, self.dem.num_observables), dtype=np.uint8)
        if self._num_mechanisms == 0 or shots == 0:
            return predictions
        posteriors, hard_decisions = self._run_bp(syndromes)
        residual = (hard_decisions.astype(np.int64) @ self._h_int_t) % 2
        converged = (residual == syndromes).all(axis=1)
        if converged.any():
            predictions[converged] = self.predicted_observables_batch(
                hard_decisions[converged]
            )
        for shot in np.nonzero(~converged)[0]:
            error = self._osd_zero(syndromes[shot], posteriors[shot])
            predictions[shot] = self.predicted_observables(error)
        return predictions

    # ------------------------------------------------------------------
    # Belief propagation (edge-major, vectorised over shots)
    # ------------------------------------------------------------------
    def _run_bp(self, syndromes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        shots = syndromes.shape[0]
        num_edges = self._edge_check.shape[0]
        posteriors = np.tile(self._prior_llrs, (shots, 1)).T.copy()  # (mechanisms, shots)
        hard = np.zeros((self._num_mechanisms, shots), dtype=np.uint8)
        if num_edges == 0:
            return posteriors.T, hard.T

        edge_check = self._edge_check
        edge_mechanism = self._edge_mechanism
        mechanism_to_check = np.tile(
            self._prior_llrs[edge_mechanism], (shots, 1)
        ).T.copy()  # (edges, shots)
        syndrome_signs = (1.0 - 2.0 * syndromes.astype(np.float64)).T  # (checks, shots)

        check_present = self._check_present
        check_starts = self._check_starts
        mech_perm = self._mech_perm
        mech_present = self._mech_present
        mech_starts = self._mech_starts

        # Per-column freezing: a shot's result is committed at *its own*
        # first convergence iteration, so every column's output equals its
        # singleton decode — ``decode_batch`` is elementwise and the dedup
        # front end (and any batch composition) cannot change predictions.
        syndromes_t = syndromes.T
        frozen_posteriors = posteriors.copy()
        frozen_hard = hard.copy()
        committed = np.zeros(shots, dtype=bool)

        for _ in range(self.max_iterations):
            signs = np.where(mechanism_to_check >= 0, 1.0, -1.0)
            magnitudes = np.abs(mechanism_to_check)

            # Per-check reductions over contiguous edge segments (reduceat);
            # order-identical to the historical ufunc.at scatters, ~5x faster.
            sign_product = np.ones((self._num_checks, shots))
            sign_product[check_present] = np.multiply.reduceat(signs, check_starts)

            first_min = np.full((self._num_checks, shots), np.inf)
            first_min[check_present] = np.minimum.reduceat(magnitudes, check_starts)
            is_min = magnitudes <= first_min[edge_check] + 1e-15
            min_count = np.zeros((self._num_checks, shots))
            min_count[check_present] = np.add.reduceat(
                is_min.astype(np.float64), check_starts
            )
            masked = np.where(is_min, np.inf, magnitudes)
            second_min = np.full((self._num_checks, shots), np.inf)
            second_min[check_present] = np.minimum.reduceat(masked, check_starts)

            # Per edge: minimum magnitude among the *other* edges of the check.
            other_min = np.where(
                is_min & (min_count[edge_check] < 2),
                second_min[edge_check],
                first_min[edge_check],
            )
            other_min = np.where(np.isinf(other_min), 0.0, other_min)
            check_to_mechanism = (
                self.scaling_factor
                * sign_product[edge_check]
                * signs
                * syndrome_signs[edge_check]
                * other_min
            )

            totals = np.zeros((self._num_mechanisms, shots))
            totals[mech_present] = np.add.reduceat(
                check_to_mechanism[mech_perm], mech_starts
            )
            posteriors = self._prior_llrs[:, np.newaxis] + totals
            mechanism_to_check = posteriors[edge_mechanism] - check_to_mechanism
            np.clip(mechanism_to_check, -_LLR_CLIP, _LLR_CLIP, out=mechanism_to_check)

            hard = (posteriors < 0).astype(np.uint8)
            residual = (self._h_int @ hard.astype(np.int64)) % 2
            converged = (residual == syndromes_t).all(axis=0)
            newly = converged & ~committed
            if newly.any():
                frozen_posteriors[:, newly] = posteriors[:, newly]
                frozen_hard[:, newly] = hard[:, newly]
                committed |= newly
            if committed.all():
                break
        remaining = ~committed
        if remaining.any():
            frozen_posteriors[:, remaining] = posteriors[:, remaining]
            frozen_hard[:, remaining] = hard[:, remaining]
        return frozen_posteriors.T, frozen_hard.T

    # ------------------------------------------------------------------
    # Ordered statistics decoding (order 0)
    # ------------------------------------------------------------------
    def _osd_zero(self, syndrome: np.ndarray, posterior: np.ndarray) -> np.ndarray:
        order = np.argsort(posterior, kind="stable")  # most likely errors first
        h = self._h[:, order].copy()
        target = syndrome.copy()
        num_checks, num_columns = h.shape
        pivot_columns: list[int] = []
        row = 0
        for column in range(num_columns):
            if row >= num_checks:
                break
            pivot_candidates = np.nonzero(h[row:, column])[0]
            if pivot_candidates.size == 0:
                continue
            pivot = row + pivot_candidates[0]
            if pivot != row:
                h[[row, pivot]] = h[[pivot, row]]
                target[[row, pivot]] = target[[pivot, row]]
            for other in np.nonzero(h[:, column])[0]:
                if other != row:
                    h[other] ^= h[row]
                    target[other] ^= target[row]
            pivot_columns.append(column)
            row += 1
        error = np.zeros(num_columns, dtype=np.uint8)
        for row_index, column in enumerate(pivot_columns):
            error[column] = target[row_index]
        result = np.zeros(num_columns, dtype=np.uint8)
        result[order] = error
        return result
