"""Decoder interface.

All decoders consume a :class:`~repro.sim.dem.DetectorErrorModel` (the
decoding problem: check matrix ``H``, per-mechanism priors, observable
matrix ``L``) and map detector syndromes to predicted logical-observable
flips.  The heuristic decoders here mirror the three used in the paper:
minimum-weight perfect matching, (hypergraph) union-find, and BP-OSD.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.sim.dem import DetectorErrorModel

__all__ = ["Decoder", "decoder_factory"]


class Decoder(ABC):
    """Base class: build from a DEM, decode single syndromes or batches."""

    def __init__(self, dem: DetectorErrorModel) -> None:
        self.dem = dem
        self.check_matrix = dem.check_matrix
        self.observable_matrix = dem.observable_matrix
        self.priors = dem.priors

    @abstractmethod
    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Decode one syndrome (length ``num_detectors``) to observable flips."""

    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        """Decode ``(shots, num_detectors)`` syndromes; override for speed."""
        return np.array(
            [self.decode(syndrome) for syndrome in syndromes], dtype=np.uint8
        )

    @property
    def has_packed_fast_path(self) -> bool:
        """True when :meth:`decode_batch_packed` consumes packed words natively.

        The hot path (:func:`repro.sim.estimator.decode_predictions`) only
        routes packed syndromes to decoders that advertise this; everything
        else receives the dense batch directly, skipping a pointless
        unpack.  Subclasses overriding :meth:`decode_batch_packed` with a
        real fast path should override this too.
        """
        return False

    def decode_batch_packed(self, packed: np.ndarray) -> np.ndarray:
        """Decode syndromes given in bit-packed form.

        ``packed`` has shape ``(shots, ceil(num_detectors / 64))`` with the
        little-endian word layout of :func:`repro.sim.bitops.pack_rows`
        (what the packed sampler emits as ``SampleBatch.packed_detectors``).
        The default implementation unpacks once and defers to
        :meth:`decode_batch`; decoders that can consume packed words
        directly (e.g. the lookup decoder's key table) override it to skip
        the round trip.
        """
        from repro.sim.bitops import unpack_rows

        syndromes = unpack_rows(np.asarray(packed), self.dem.num_detectors)
        return self.decode_batch(syndromes)

    def predicted_observables(self, error_vector: np.ndarray) -> np.ndarray:
        """Map a mechanism-indicator vector to observable flips."""
        if self.dem.num_observables == 0:
            return np.zeros(0, dtype=np.uint8)
        return (
            self.observable_matrix.astype(np.int64) @ error_vector.astype(np.int64)
        ).astype(np.uint8) % 2


def decoder_factory(name: str, **kwargs):
    """Deprecated: use ``repro.api.decoders.build(name, **kwargs)``.

    Thin shim over the ``repro.api.decoders`` registry, kept so existing
    imports keep working.  Returns the identical
    ``DetectorErrorModel -> Decoder`` factory the registry builds.
    """
    import warnings

    from repro.api.registries import decoders

    warnings.warn(
        "decoder_factory() is deprecated; use repro.api.decoders.build(name)",
        DeprecationWarning,
        stacklevel=2,
    )
    return decoders.build(name.lower(), **kwargs)
