"""Batch-first decoder interface.

All decoders consume a :class:`~repro.sim.dem.DetectorErrorModel` (the
decoding problem: check matrix ``H``, per-mechanism priors, observable
matrix ``L``) and map detector syndromes to predicted logical-observable
flips.  The heuristic decoders here mirror the three used in the paper:
minimum-weight perfect matching, (hypergraph) union-find, and BP-OSD.

The abstract surface is *batch-first*: subclasses implement
:meth:`Decoder._decode_unique`, which receives a block of **distinct**
dense syndromes, and the base class supplies the shared batch front end
(:meth:`Decoder.decode_batch` / :meth:`Decoder.decode_batch_packed`) that

1. bit-packs the batch into ``uint64`` words (:mod:`repro.sim.bitops`) —
   or consumes the sampler's packed words directly, never materialising a
   dense copy of the full batch;
2. deduplicates repeated syndromes with one ``np.unique`` over the packed
   rows (at paper-regime physical error rates most shots share few
   distinct syndromes, so this alone is a 5–50x shot-count reduction);
3. decodes the unique block once and scatters predictions back.

:meth:`Decoder.decode` is the thin single-shot wrapper over the batch
path.  Deduplication is a pure routing change: every decoder's
``_decode_unique`` is elementwise (a row's prediction depends on nothing
but the row itself — BP freezes each column at its own convergence), so
the scattered predictions are bit-identical to decoding every shot in
place, and batch composition can never change a prediction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.sim.dem import DetectorErrorModel

__all__ = ["Decoder", "decoder_factory"]


class Decoder(ABC):
    """Base class: build from a DEM, decode syndrome batches (or singles)."""

    def __init__(self, dem: DetectorErrorModel) -> None:
        self.dem = dem
        self.check_matrix = dem.check_matrix
        self.observable_matrix = dem.observable_matrix
        self.priors = dem.priors
        # Cached int64 cast of L (and its transpose): predicted_observables
        # used to re-cast the observable matrix on every call.
        self._observable_int = self.observable_matrix.astype(np.int64)
        self._observable_int_t = np.ascontiguousarray(self._observable_int.T)

    # ------------------------------------------------------------------
    # Abstract batch surface
    # ------------------------------------------------------------------
    @abstractmethod
    def _decode_unique(self, syndromes: np.ndarray) -> np.ndarray:
        """Decode a ``(unique_shots, num_detectors)`` block of distinct rows.

        The front end guarantees ``syndromes`` is a C-contiguous uint8
        array whose rows are pairwise distinct (and non-empty).  Implement
        the decoder's real work here, vectorised over the block.
        """

    # ------------------------------------------------------------------
    # Shared batch front end
    # ------------------------------------------------------------------
    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Decode one syndrome (length ``num_detectors``) to observable flips.

        Thin wrapper over :meth:`decode_batch`; a single-row batch skips
        the dedup machinery entirely.
        """
        syndrome = np.ascontiguousarray(syndrome, dtype=np.uint8).reshape(1, -1)
        return self._decode_unique(syndrome)[0]

    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        """Decode ``(shots, num_detectors)`` syndromes via the dedup front end."""
        syndromes = np.ascontiguousarray(syndromes, dtype=np.uint8)
        shots = syndromes.shape[0]
        if shots == 0:
            return self._empty_predictions()
        if shots == 1:
            return self._decode_unique(syndromes)
        if syndromes.shape[1] == 0:
            # Zero-detector DEM: every row is the (single) empty syndrome.
            return np.repeat(self._decode_unique(syndromes[:1]), shots, axis=0)
        from repro.sim.bitops import pack_rows

        _, first_index, inverse = np.unique(
            pack_rows(syndromes), axis=0, return_index=True, return_inverse=True
        )
        # Take the unique rows from the dense input (cheaper than unpacking,
        # bit-identical: packing is injective at fixed width).
        unique = np.ascontiguousarray(syndromes[first_index])
        return self._decode_unique(unique)[inverse.reshape(-1)]

    @property
    def has_packed_fast_path(self) -> bool:
        """True: the batch front end consumes packed words natively.

        The hot path (:func:`repro.sim.estimator.decode_predictions`) routes
        packed syndromes to decoders that advertise this.  Since the dedup
        front end deduplicates *on the packed words themselves* and unpacks
        only the unique rows, packed input is now the norm for every
        decoder, not a lookup-table exception.
        """
        return True

    def decode_batch_packed(self, packed: np.ndarray) -> np.ndarray:
        """Decode syndromes given in bit-packed form.

        ``packed`` has shape ``(shots, ceil(num_detectors / 64))`` with the
        little-endian word layout of :func:`repro.sim.bitops.pack_rows`
        (what the packed sampler emits as ``SampleBatch.packed_detectors``).
        Deduplication happens directly on the packed words; only the unique
        rows are ever unpacked, so duplicate shots never touch dense memory.
        """
        from repro.sim.bitops import unpack_rows

        packed = np.asarray(packed)
        shots = packed.shape[0]
        if shots == 0:
            return self._empty_predictions()
        if packed.shape[1] == 0:
            empty = np.zeros((1, self.dem.num_detectors), dtype=np.uint8)
            return np.repeat(self._decode_unique(empty), shots, axis=0)
        unique_words, inverse = np.unique(packed, axis=0, return_inverse=True)
        unique = unpack_rows(unique_words, self.dem.num_detectors)
        return self._decode_unique(np.ascontiguousarray(unique))[inverse.reshape(-1)]

    def _empty_predictions(self) -> np.ndarray:
        """The correctly shaped result for a zero-shot batch."""
        return np.zeros((0, self.dem.num_observables), dtype=np.uint8)

    # ------------------------------------------------------------------
    # Observable projection
    # ------------------------------------------------------------------
    def predicted_observables(self, error_vector: np.ndarray) -> np.ndarray:
        """Map a mechanism-indicator vector to observable flips."""
        if self.dem.num_observables == 0:
            return np.zeros(0, dtype=np.uint8)
        return (self._observable_int @ error_vector.astype(np.int64)).astype(
            np.uint8
        ) % 2

    def predicted_observables_batch(self, errors: np.ndarray) -> np.ndarray:
        """Map ``(shots, num_mechanisms)`` mechanism indicators to flips.

        The batched form of :meth:`predicted_observables` the vectorised
        decode paths use: one int64 matmul against the cached ``L``
        transpose instead of a per-shot product.
        """
        errors = np.asarray(errors)
        if self.dem.num_observables == 0 or errors.shape[0] == 0:
            return np.zeros((errors.shape[0], self.dem.num_observables), dtype=np.uint8)
        return (errors.astype(np.int64) @ self._observable_int_t).astype(np.uint8) % 2

    # ------------------------------------------------------------------
    # Helpers for per-unique-syndrome decoders
    # ------------------------------------------------------------------
    @staticmethod
    def _defects_per_row(syndromes: np.ndarray) -> "list[np.ndarray]":
        """Vectorised defect extraction: triggered-detector indices per row.

        One ``np.nonzero`` over the whole unique block, split at row
        boundaries — replaces a per-shot ``nonzero`` loop.
        """
        rows, columns = np.nonzero(syndromes)
        counts = np.bincount(rows, minlength=syndromes.shape[0])
        return np.split(columns, np.cumsum(counts)[:-1])


def decoder_factory(name: str, **kwargs):
    """Deprecated: use ``repro.api.decoders.build(name, **kwargs)``.

    Thin shim over the ``repro.api.decoders`` registry, kept so existing
    imports keep working.  Returns the identical
    ``DetectorErrorModel -> Decoder`` factory the registry builds.
    """
    import warnings

    from repro.api.registries import decoders

    warnings.warn(
        "decoder_factory() is deprecated; use repro.api.decoders.build(name)",
        DeprecationWarning,
        stacklevel=2,
    )
    return decoders.build(name.lower(), **kwargs)
