"""Minimum-weight perfect matching decoder.

The decoding graph has one node per detector plus a virtual boundary node.
Every mechanism that flips one or two detectors becomes a weighted edge
(weight ``log((1-p)/p)``); mechanisms flipping more than two detectors are
decomposed into existing edges when possible (the standard treatment of
Y-type faults in surface-code DEMs) and otherwise approximated by chaining
their detectors.

Decoding a syndrome: take the defect nodes, look up the pre-computed
all-pairs shortest-path distances, build a complete graph on the defects
(plus one boundary copy per defect) and find a minimum-weight perfect
matching with networkx's blossom implementation.  The predicted logical
flip is the XOR of the observable flips accumulated along the matched
shortest paths — functionally the same algorithm as PyMatching, traded for
portability over speed.

Batch decoding is organised around the base class's dedup front end:
matching runs once per *unique* syndrome (a 5–50x shot reduction at
paper-regime error rates) and defect extraction is one vectorised
``nonzero`` over the unique block.  Unique syndromes are then grouped by
defect count and matched in bulk: for small defect sets (the overwhelming
majority at paper-regime rates) every possible pairing — defect-defect or
defect-boundary — is enumerated from a cached per-count table and all
pairings of a whole group are costed with one gather/sum against the dense
distance matrix, replacing a blossom run per shot with an exact argmin.
Blossom remains the fallback for large defect sets and for the rare
degenerate optimum whose tied pairings disagree on the predicted flip;
either way predictions are bit-identical to the historical per-shot
implementation (the enumerated argmin *is* the minimum-weight perfect
matching, and ties that cannot change the prediction are the only ones
resolved without blossom).
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from repro.decoders.base import Decoder
from repro.sim.dem import DetectorErrorModel

__all__ = ["MWPMDecoder"]

_BOUNDARY = "boundary"
#: Probabilities are clipped away from 0/1 to keep weights finite.
_MIN_PROBABILITY = 1e-12
#: Distance assigned to node pairs the decoding graph does not connect.
_UNREACHABLE = 1e9
#: Defect sets up to this size are matched by exact pairing enumeration
#: (764 pairings at 8 defects); larger sets fall back to blossom.
_ENUM_MAX_DEFECTS = 8
#: Cap on the ``(group, pairings, terms)`` cost-gather temporary.
_ENUM_BLOCK_ELEMENTS = 1 << 21


def _edge_weight(probability: float) -> float:
    probability = min(max(probability, _MIN_PROBABILITY), 1 - _MIN_PROBABILITY)
    return math.log((1 - probability) / probability)


def _enumerate_pairings(count: int) -> np.ndarray:
    """All ways to pair ``count`` defects with each other or the boundary.

    Returns a ``(pairings, count, 2)`` int array of *local* index pairs:
    ``(i, j)`` with ``i < j`` matches defects i and j, ``(i, count)``
    matches defect i to the boundary, and rows are padded with the no-op
    ``(count, count)`` (boundary-to-boundary, distance 0, empty parity) so
    every pairing has exactly ``count`` terms.  These are precisely the
    perfect matchings of the historical blossom graph, in a deterministic
    enumeration order.
    """
    pairings: list[list[tuple[int, int]]] = []

    def recurse(remaining: tuple[int, ...], acc: list[tuple[int, int]]) -> None:
        if not remaining:
            pairings.append(list(acc))
            return
        first, rest = remaining[0], remaining[1:]
        acc.append((first, count))  # match to boundary
        recurse(rest, acc)
        acc.pop()
        for position, partner in enumerate(rest):
            acc.append((first, partner))
            recurse(rest[:position] + rest[position + 1 :], acc)
            acc.pop()

    recurse(tuple(range(count)), [])
    table = np.full((len(pairings), count, 2), count, dtype=np.int64)
    for row, pairing in enumerate(pairings):
        for term, pair in enumerate(pairing):
            table[row, term] = pair
    return table


class MWPMDecoder(Decoder):
    """Minimum-weight perfect matching on the DEM's decoding graph."""

    def __init__(self, dem: DetectorErrorModel) -> None:
        super().__init__(dem)
        self.graph = self._build_graph(dem)
        self._distances, self._path_observables = self._all_pairs_paths()
        self._build_path_matrices()

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def _build_graph(self, dem: DetectorErrorModel) -> nx.Graph:
        edges: dict[tuple, dict] = {}

        def add_edge(u, v, probability: float, observables: frozenset[int]) -> None:
            key = (u, v) if str(u) <= str(v) else (v, u)
            entry = edges.setdefault(
                key, {"probability": 0.0, "observables": frozenset()}
            )
            combined = entry["probability"] * (1 - probability) + probability * (
                1 - entry["probability"]
            )
            entry["probability"] = combined
            # Keep the observable signature of the dominant contribution.
            if probability > entry.get("max_contribution", 0.0):
                entry["observables"] = observables
                entry["max_contribution"] = probability

        pending: list = []
        for mechanism in dem.mechanisms:
            detectors = sorted(mechanism.detectors)
            if len(detectors) == 0:
                continue
            if len(detectors) == 1:
                add_edge(detectors[0], _BOUNDARY, mechanism.probability, mechanism.observables)
            elif len(detectors) == 2:
                add_edge(detectors[0], detectors[1], mechanism.probability, mechanism.observables)
            else:
                pending.append(mechanism)

        # Decompose hyperedges (e.g. Y faults) into chains of graph edges.
        for mechanism in pending:
            detectors = sorted(mechanism.detectors)
            for first, second in zip(detectors[::2], detectors[1::2]):
                add_edge(first, second, mechanism.probability, mechanism.observables)
            if len(detectors) % 2:
                add_edge(detectors[-1], _BOUNDARY, mechanism.probability, frozenset())

        graph = nx.Graph()
        graph.add_node(_BOUNDARY)
        graph.add_nodes_from(range(dem.num_detectors))
        for (u, v), entry in edges.items():
            graph.add_edge(
                u,
                v,
                weight=_edge_weight(entry["probability"]),
                observables=entry["observables"],
            )
        return graph

    def _all_pairs_paths(self):
        """Pre-compute distances and path observable parities between all nodes."""
        distances: dict = {}
        observables: dict = {}
        for source in self.graph.nodes:
            lengths, paths = nx.single_source_dijkstra(self.graph, source, weight="weight")
            distances[source] = lengths
            source_observables: dict = {}
            for target, path in paths.items():
                parity: set[int] = set()
                for u, v in zip(path, path[1:]):
                    parity.symmetric_difference_update(
                        self.graph.edges[u, v]["observables"]
                    )
                source_observables[target] = frozenset(parity)
            observables[source] = source_observables
        return distances, observables

    def _build_path_matrices(self) -> None:
        """Densify the all-pairs results for the batch decode inner loop.

        Node indices: detectors ``0..N-1``, boundary ``N``.  ``_distance``
        holds exactly the dijkstra lengths the dict form holds (missing
        pairs get the same ``1e9`` sentinel the historical ``dict.get``
        used), so matching-graph weights are bit-identical.  Path
        observable parities become one uint8 matrix per pair, flattened to
        ``(N+1, N+1, num_observables)`` — XOR-accumulated directly into the
        prediction rows.
        """
        n = self.dem.num_detectors
        node_index = {node: node for node in range(n)}
        node_index[_BOUNDARY] = n
        self._boundary_index = n
        self._distance = np.full((n + 1, n + 1), _UNREACHABLE, dtype=np.float64)
        self._parity = np.zeros((n + 1, n + 1, self.dem.num_observables), dtype=np.uint8)
        for source, lengths in self._distances.items():
            si = node_index[source]
            for target, length in lengths.items():
                self._distance[si, node_index[target]] = length
        for source, targets in self._path_observables.items():
            si = node_index[source]
            for target, parity in targets.items():
                for observable in parity:
                    self._parity[si, node_index[target], observable] = 1

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _decode_unique(self, syndromes: np.ndarray) -> np.ndarray:
        predictions = np.zeros(
            (syndromes.shape[0], self.dem.num_observables), dtype=np.uint8
        )
        defect_lists = self._defects_per_row(syndromes)
        counts = np.fromiter(
            (d.size for d in defect_lists), dtype=np.int64, count=len(defect_lists)
        )
        for count in np.unique(counts):
            if count == 0:
                continue
            rows = np.nonzero(counts == count)[0]
            if count > _ENUM_MAX_DEFECTS:
                for row in rows:
                    self._match_defects(defect_lists[row], predictions[row])
                continue
            group = np.stack([defect_lists[row] for row in rows])
            self._match_group(rows, group, predictions)
        return predictions

    def _match_group(
        self, rows: np.ndarray, group: np.ndarray, predictions: np.ndarray
    ) -> None:
        """Exactly match all syndromes with the same defect count at once.

        ``group`` is ``(g, count)`` defect indices.  Every candidate pairing
        of the whole group is costed with one fancy-indexed gather over the
        dense distance matrix; the argmin pairing is the minimum-weight
        perfect matching.  A cost tie between pairings that *agree* on the
        predicted flip is resolved for free; tied pairings that disagree
        (a genuinely degenerate optimum) defer to blossom so the historical
        tie-breaking is preserved bit for bit.
        """
        count = group.shape[1]
        table = self._pairing_table(count)  # (P, count, 2) local indices
        left, right = table[:, :, 0], table[:, :, 1]
        block = max(1, _ENUM_BLOCK_ELEMENTS // (table.shape[0] * count))
        for start in range(0, rows.size, block):
            rows_block = rows[start : start + block]
            # Local index `count` is the boundary node.
            nodes = np.concatenate(
                [
                    group[start : start + block],
                    np.full((rows_block.size, 1), self._boundary_index, dtype=np.int64),
                ],
                axis=1,
            )
            u = nodes[:, left]  # (g, P, count) global node indices
            v = nodes[:, right]
            costs = self._distance[u, v].sum(axis=2)  # (g, P)
            best = costs.min(axis=1)
            for k, row in enumerate(rows_block):
                optimal = np.nonzero(costs[k] == best[k])[0]
                prediction = np.bitwise_xor.reduce(
                    self._parity[u[k, optimal[0]], v[k, optimal[0]]], axis=0
                )
                if optimal.size > 1 and not all(
                    np.array_equal(
                        np.bitwise_xor.reduce(
                            self._parity[u[k, other], v[k, other]], axis=0
                        ),
                        prediction,
                    )
                    for other in optimal[1:]
                ):
                    self._match_defects(group[start + k], predictions[row])
                    continue
                predictions[row] ^= prediction

    _pairing_tables: "dict[int, np.ndarray]" = {}

    @classmethod
    def _pairing_table(cls, count: int) -> np.ndarray:
        """Cached pairing enumeration for ``count`` defects (class-wide)."""
        table = cls._pairing_tables.get(count)
        if table is None:
            table = cls._pairing_tables[count] = _enumerate_pairings(count)
        return table

    def _match_defects(self, defects: np.ndarray, prediction: np.ndarray) -> None:
        """Match one defect set and XOR the path parities into ``prediction``.

        Mirrors the historical per-shot implementation exactly — same
        matching-graph nodes, edges, insertion order and float weights — so
        ``nx.max_weight_matching`` returns the identical matching; only the
        distance/parity lookups moved from dicts to arrays.
        """
        boundary = self._boundary_index
        distance = self._distance
        matching_graph = nx.Graph()
        num_defects = len(defects)
        for i in range(num_defects):
            u = defects[i]
            for j in range(i + 1, num_defects):
                matching_graph.add_edge(
                    ("d", i), ("d", j), weight=-float(distance[u, defects[j]])
                )
            matching_graph.add_edge(
                ("d", i), ("b", i), weight=-float(distance[u, boundary])
            )
        # Boundary copies may pair among themselves at zero cost.
        for i in range(num_defects):
            for j in range(i + 1, num_defects):
                matching_graph.add_edge(("b", i), ("b", j), weight=0.0)

        matching = nx.max_weight_matching(matching_graph, maxcardinality=True)
        for first, second in matching:
            kinds = {first[0], second[0]}
            if kinds == {"b"}:
                continue
            if kinds == {"d"}:
                u = defects[first[1]]
                v = defects[second[1]]
            else:
                defect_node = first if first[0] == "d" else second
                u = defects[defect_node[1]]
                v = boundary
            prediction ^= self._parity[u, v]
