"""Minimum-weight perfect matching decoder.

The decoding graph has one node per detector plus a virtual boundary node.
Every mechanism that flips one or two detectors becomes a weighted edge
(weight ``log((1-p)/p)``); mechanisms flipping more than two detectors are
decomposed into existing edges when possible (the standard treatment of
Y-type faults in surface-code DEMs) and otherwise approximated by chaining
their detectors.

Decoding a syndrome: take the defect nodes, look up the pre-computed
all-pairs shortest-path distances, build a complete graph on the defects
(plus one boundary copy per defect) and find a minimum-weight perfect
matching with networkx's blossom implementation.  The predicted logical
flip is the XOR of the observable flips accumulated along the matched
shortest paths — functionally the same algorithm as PyMatching, traded for
portability over speed.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from repro.decoders.base import Decoder
from repro.sim.dem import DetectorErrorModel

__all__ = ["MWPMDecoder"]

_BOUNDARY = "boundary"
#: Probabilities are clipped away from 0/1 to keep weights finite.
_MIN_PROBABILITY = 1e-12


def _edge_weight(probability: float) -> float:
    probability = min(max(probability, _MIN_PROBABILITY), 1 - _MIN_PROBABILITY)
    return math.log((1 - probability) / probability)


class MWPMDecoder(Decoder):
    """Minimum-weight perfect matching on the DEM's decoding graph."""

    def __init__(self, dem: DetectorErrorModel) -> None:
        super().__init__(dem)
        self.graph = self._build_graph(dem)
        self._distances, self._path_observables = self._all_pairs_paths()

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def _build_graph(self, dem: DetectorErrorModel) -> nx.Graph:
        edges: dict[tuple, dict] = {}

        def add_edge(u, v, probability: float, observables: frozenset[int]) -> None:
            key = (u, v) if str(u) <= str(v) else (v, u)
            entry = edges.setdefault(
                key, {"probability": 0.0, "observables": frozenset()}
            )
            combined = entry["probability"] * (1 - probability) + probability * (
                1 - entry["probability"]
            )
            entry["probability"] = combined
            # Keep the observable signature of the dominant contribution.
            if probability > entry.get("max_contribution", 0.0):
                entry["observables"] = observables
                entry["max_contribution"] = probability

        pending: list = []
        for mechanism in dem.mechanisms:
            detectors = sorted(mechanism.detectors)
            if len(detectors) == 0:
                continue
            if len(detectors) == 1:
                add_edge(detectors[0], _BOUNDARY, mechanism.probability, mechanism.observables)
            elif len(detectors) == 2:
                add_edge(detectors[0], detectors[1], mechanism.probability, mechanism.observables)
            else:
                pending.append(mechanism)

        # Decompose hyperedges (e.g. Y faults) into chains of graph edges.
        for mechanism in pending:
            detectors = sorted(mechanism.detectors)
            for first, second in zip(detectors[::2], detectors[1::2]):
                add_edge(first, second, mechanism.probability, mechanism.observables)
            if len(detectors) % 2:
                add_edge(detectors[-1], _BOUNDARY, mechanism.probability, frozenset())

        graph = nx.Graph()
        graph.add_node(_BOUNDARY)
        graph.add_nodes_from(range(dem.num_detectors))
        for (u, v), entry in edges.items():
            graph.add_edge(
                u,
                v,
                weight=_edge_weight(entry["probability"]),
                observables=entry["observables"],
            )
        return graph

    def _all_pairs_paths(self):
        """Pre-compute distances and path observable parities between all nodes."""
        distances: dict = {}
        observables: dict = {}
        for source in self.graph.nodes:
            lengths, paths = nx.single_source_dijkstra(self.graph, source, weight="weight")
            distances[source] = lengths
            source_observables: dict = {}
            for target, path in paths.items():
                parity: set[int] = set()
                for u, v in zip(path, path[1:]):
                    parity.symmetric_difference_update(
                        self.graph.edges[u, v]["observables"]
                    )
                source_observables[target] = frozenset(parity)
            observables[source] = source_observables
        return distances, observables

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        prediction = np.zeros(self.dem.num_observables, dtype=np.uint8)
        defects = [int(d) for d in np.nonzero(np.asarray(syndrome).reshape(-1))[0]]
        defects = [d for d in defects if d in self._distances]
        if not defects:
            return prediction

        matching_graph = nx.Graph()
        large = 1e9
        for i, u in enumerate(defects):
            for j in range(i + 1, len(defects)):
                v = defects[j]
                distance = self._distances[u].get(v, large)
                matching_graph.add_edge(("d", i), ("d", j), weight=-distance)
            boundary_distance = self._distances[u].get(_BOUNDARY, large)
            matching_graph.add_edge(("d", i), ("b", i), weight=-boundary_distance)
        # Boundary copies may pair among themselves at zero cost.
        for i in range(len(defects)):
            for j in range(i + 1, len(defects)):
                matching_graph.add_edge(("b", i), ("b", j), weight=0.0)

        matching = nx.max_weight_matching(matching_graph, maxcardinality=True)
        for first, second in matching:
            kinds = {first[0], second[0]}
            if kinds == {"b"}:
                continue
            if kinds == {"d"}:
                u = defects[first[1]]
                v = defects[second[1]]
                path_observables = self._path_observables[u].get(v, frozenset())
            else:
                defect_node = first if first[0] == "d" else second
                u = defects[defect_node[1]]
                path_observables = self._path_observables[u].get(_BOUNDARY, frozenset())
            for observable in path_observables:
                prediction[observable] ^= 1
        return prediction
