"""Brute-force lookup decoder for small decoding problems.

Enumerates error patterns up to a configurable number of simultaneous
mechanisms, records the most likely pattern for every reachable syndrome and
decodes by table lookup (falling back to "no logical flip" for unseen
syndromes).  Only practical for small DEMs; used as a near-maximum-likelihood
reference in tests and for the smallest codes.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.decoders.base import Decoder
from repro.sim.dem import DetectorErrorModel

__all__ = ["LookupDecoder"]


class LookupDecoder(Decoder):
    """Most-likely-error table decoder (exact up to ``max_order`` faults)."""

    def __init__(self, dem: DetectorErrorModel, *, max_order: int = 2) -> None:
        super().__init__(dem)
        self.max_order = max_order
        self._table: dict[bytes, tuple[float, np.ndarray]] = {}
        self._build_table()

    def _build_table(self) -> None:
        num = self.dem.num_mechanisms
        log_priors = np.log(np.clip(self.priors, 1e-15, 1.0))
        for order in range(0, self.max_order + 1):
            for combo in itertools.combinations(range(num), order):
                detectors = np.zeros(self.dem.num_detectors, dtype=np.uint8)
                observables = np.zeros(self.dem.num_observables, dtype=np.uint8)
                log_probability = 0.0
                for column in combo:
                    mechanism = self.dem.mechanisms[column]
                    for detector in mechanism.detectors:
                        detectors[detector] ^= 1
                    for observable in mechanism.observables:
                        observables[observable] ^= 1
                    log_probability += log_priors[column]
                key = detectors.tobytes()
                existing = self._table.get(key)
                if existing is None or log_probability > existing[0]:
                    self._table[key] = (log_probability, observables)

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        key = np.asarray(syndrome, dtype=np.uint8).reshape(-1).tobytes()
        entry = self._table.get(key)
        if entry is None:
            return np.zeros(self.dem.num_observables, dtype=np.uint8)
        return entry[1].copy()
