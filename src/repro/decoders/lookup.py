"""Brute-force lookup decoder for small decoding problems.

Enumerates error patterns up to a configurable number of simultaneous
mechanisms, records the most likely pattern for every reachable syndrome and
decodes by table lookup (falling back to "no logical flip" for unseen
syndromes).  Only practical for small DEMs; used as a near-maximum-likelihood
reference in tests and for the smallest codes.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.decoders.base import Decoder
from repro.sim.bitops import pack_rows
from repro.sim.dem import DetectorErrorModel

__all__ = ["LookupDecoder"]


class LookupDecoder(Decoder):
    """Most-likely-error table decoder (exact up to ``max_order`` faults)."""

    def __init__(self, dem: DetectorErrorModel, *, max_order: int = 2) -> None:
        super().__init__(dem)
        self.max_order = max_order
        self._table: dict[bytes, tuple[float, np.ndarray]] = {}
        self._build_table()
        self._build_packed_table()

    def _build_packed_table(self) -> None:
        """Precompute the sorted packed-key form of the table for decode_batch.

        Each syndrome bit-string packs into one ``uint64`` key (the table is
        only built for DEMs with <= 64 detectors; beyond that decode_batch
        falls back to the per-shot dict lookup).  Keys are sorted once here
        so every batch decode is a single ``searchsorted`` + gather.
        """
        self._packed_keys: np.ndarray | None = None
        self._packed_corrections: np.ndarray | None = None
        if not 0 < self.dem.num_detectors <= 64 or not self._table:
            return
        syndromes = np.array(
            [np.frombuffer(key, dtype=np.uint8) for key in self._table], dtype=np.uint8
        ).reshape(len(self._table), self.dem.num_detectors)
        corrections = np.array(
            [entry[1] for entry in self._table.values()], dtype=np.uint8
        ).reshape(len(self._table), self.dem.num_observables)
        keys = self._pack(syndromes)
        order = np.argsort(keys)
        self._packed_keys = keys[order]
        self._packed_corrections = corrections[order]

    @staticmethod
    def _pack(rows: np.ndarray) -> np.ndarray:
        """Pack ``(n, num_detectors <= 64)`` bit rows into ``(n,)`` uint64 keys.

        Delegates to :func:`repro.sim.bitops.pack_rows`, whose explicit
        little-endian word dtype (``np.dtype('<u8')``) makes the keys
        platform-independent (a bare ``.view(np.uint64)`` of the padded
        bytes would flip them on big-endian hosts) and identical to the
        packed syndromes the sampler emits.
        """
        return pack_rows(rows).reshape(-1)

    def _build_table(self) -> None:
        num = self.dem.num_mechanisms
        log_priors = np.log(np.clip(self.priors, 1e-15, 1.0))
        for order in range(0, self.max_order + 1):
            for combo in itertools.combinations(range(num), order):
                detectors = np.zeros(self.dem.num_detectors, dtype=np.uint8)
                observables = np.zeros(self.dem.num_observables, dtype=np.uint8)
                log_probability = 0.0
                for column in combo:
                    mechanism = self.dem.mechanisms[column]
                    for detector in mechanism.detectors:
                        detectors[detector] ^= 1
                    for observable in mechanism.observables:
                        observables[observable] ^= 1
                    log_probability += log_priors[column]
                key = detectors.tobytes()
                existing = self._table.get(key)
                if existing is None or log_probability > existing[0]:
                    self._table[key] = (log_probability, observables)

    def _decode_unique(self, syndromes: np.ndarray) -> np.ndarray:
        """Resolve a (deduplicated) dense block against the table.

        With an applicable packed key table the block packs into ``uint64``
        keys and resolves in one ``searchsorted``; otherwise each distinct
        row costs one dict lookup — and thanks to the base front end that
        per-row Python now runs per *unique* syndrome only.
        """
        if self._packed_keys is not None:
            return self._lookup_keys(self._pack(syndromes))
        predictions = np.zeros(
            (syndromes.shape[0], self.dem.num_observables), dtype=np.uint8
        )
        for row, syndrome in enumerate(syndromes):
            entry = self._table.get(syndrome.tobytes())
            if entry is not None:
                predictions[row] = entry[1]
        return predictions

    def decode_batch(self, syndromes: np.ndarray) -> np.ndarray:
        """Vectorised table lookup for a ``(shots, num_detectors)`` batch.

        With an applicable key table the whole batch packs into ``uint64``
        keys and resolves with one ``searchsorted`` + gather — already a
        single pass, so the dedup front end would only add overhead and is
        skipped.  Unseen syndromes keep the "no logical flip" fallback.
        DEMs with more than 64 detectors (where the table would be
        impractically large anyway) use the inherited dedup front end over
        the per-row dict lookup.
        """
        if self._packed_keys is None:
            return super().decode_batch(syndromes)
        syndromes = np.ascontiguousarray(syndromes, dtype=np.uint8)
        if syndromes.shape[0] == 0:
            return self._empty_predictions()
        return self._lookup_keys(self._pack(syndromes))

    def decode_batch_packed(self, packed: np.ndarray) -> np.ndarray:
        """Decode bit-packed syndromes without re-packing.

        The sampler's ``packed_detectors`` words use the same little-endian
        layout as the table keys, so for DEMs with <= 64 detectors the
        packed column *is* the key and decoding is a single ``searchsorted``
        straight off the packed batch.  Larger DEMs (or an empty table) fall
        back to the inherited packed dedup front end.
        """
        packed = np.asarray(packed)
        if self._packed_keys is None or packed.shape[1] != 1 or packed.shape[0] == 0:
            return super().decode_batch_packed(packed)
        return self._lookup_keys(packed.reshape(-1))

    def _lookup_keys(self, keys: np.ndarray) -> np.ndarray:
        """Resolve uint64 syndrome keys against the pre-sorted table."""
        result = np.zeros((keys.shape[0], self.dem.num_observables), dtype=np.uint8)
        positions = np.searchsorted(self._packed_keys, keys)
        positions = np.minimum(positions, len(self._packed_keys) - 1)
        hits = self._packed_keys[positions] == keys
        result[hits] = self._packed_corrections[positions[hits]]
        return result
