"""Hypergraph union-find decoder.

A cluster-growth decoder in the spirit of Delfosse–Nickerson union-find,
generalised to hypergraph decoding problems (mechanisms may flip more than
two detectors, as in colour-code DEMs):

1. every defect (triggered detector) seeds a cluster;
2. a cluster is *valid* when the defects inside it can be explained by
   mechanisms whose detector sets lie entirely inside the cluster (checked
   with a GF(2) solve over the cluster's sub-matrix); clusters containing a
   boundary-adjacent mechanism can also absorb leftover parity;
3. invalid clusters grow by one step — every mechanism touching the cluster
   is absorbed together with all detectors it flips — and overlapping
   clusters merge;
4. once every cluster is valid, a correction is read off from the GF(2)
   solution inside each cluster and the predicted observable flips are the
   XOR of the chosen mechanisms' observable signatures.

This keeps the defining characteristics the paper relies on: it is fast,
greedy, and distinctly *not* maximum-likelihood, so schedules can be
tailored to (or against) its failure patterns.

The batch path rides the base class's packed dedup front end (cluster
growth runs once per *unique* syndrome) and the per-syndrome state is kept
as numpy boolean masks over detectors/mechanisms: growth is one incidence
matmul for **all** of a syndrome's clusters at once, in-cluster column
selection is a vectorised sub-matrix test, and cluster sub-problems slice
``H`` directly with ``np.ix_``.  The growth/merge/solve *order* is the
same as the historical set-based implementation, so predictions are
bit-identical to it.
"""

from __future__ import annotations

import numpy as np

from repro.decoders.base import Decoder
from repro.pauli.gf2 import gf2_solve
from repro.sim.dem import DetectorErrorModel

__all__ = ["UnionFindDecoder"]


class UnionFindDecoder(Decoder):
    """Cluster-growth (union-find style) decoder on the DEM hypergraph."""

    def __init__(self, dem: DetectorErrorModel, *, max_growth_rounds: int | None = None) -> None:
        super().__init__(dem)
        self.max_growth_rounds = max_growth_rounds or (dem.num_detectors + 1)
        # Detector-by-mechanism incidence, in the forms the mask algebra
        # wants: boolean for unions, int32 for overflow-safe matmul growth.
        self._incidence = self.check_matrix.astype(bool)
        self._incidence_int = self.check_matrix.astype(np.int32)
        # Per-mechanism observable signatures, column-major for XOR reduce.
        self._observables_by_mechanism = np.ascontiguousarray(self.observable_matrix.T)

    # ------------------------------------------------------------------
    def _decode_unique(self, syndromes: np.ndarray) -> np.ndarray:
        predictions = np.zeros(
            (syndromes.shape[0], self.dem.num_observables), dtype=np.uint8
        )
        for row, defects in enumerate(self._defects_per_row(syndromes)):
            if defects.size:
                self._decode_defects(syndromes[row], defects, predictions[row])
        return predictions

    def _decode_defects(
        self, syndrome: np.ndarray, defects: np.ndarray, prediction: np.ndarray
    ) -> None:
        """Grow/merge/solve the clusters of one syndrome into ``prediction``."""
        num_detectors = self.dem.num_detectors
        # One singleton cluster per defect, in ascending defect order
        # (np.nonzero already yields sorted indices).
        det_masks = np.zeros((defects.size, num_detectors), dtype=bool)
        det_masks[np.arange(defects.size), defects] = True
        mech_masks = np.zeros((defects.size, self.dem.num_mechanisms), dtype=bool)

        for _ in range(self.max_growth_rounds):
            det_masks, mech_masks = self._merge_overlapping(det_masks, mech_masks)
            # A cluster is invalid when its sub-problem is unsolvable (False)
            # or solves to the empty correction with defects left over ([]).
            invalid = np.array(
                [
                    not self._try_solve(det_masks[i], mech_masks[i], syndrome)
                    for i in range(det_masks.shape[0])
                ],
                dtype=bool,
            )
            if not invalid.any():
                break
            # Grow every invalid cluster in one matmul: mechanisms touching
            # any cluster detector are absorbed with all their detectors.
            touching = (det_masks[invalid].astype(np.int32) @ self._incidence_int) > 0
            mech_masks[invalid] |= touching
            det_masks[invalid] |= (touching.astype(np.int32) @ self._incidence_int.T) > 0
        det_masks, mech_masks = self._merge_overlapping(det_masks, mech_masks)

        for i in range(det_masks.shape[0]):
            solution = self._try_solve(det_masks[i], mech_masks[i], syndrome)
            if solution is False:
                # Give up on this cluster (should be rare: the full detector
                # set always admits a solution when the DEM is consistent).
                continue
            if len(solution):
                prediction ^= np.bitwise_xor.reduce(
                    self._observables_by_mechanism[solution], axis=0
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _merge_overlapping(
        det_masks: np.ndarray, mech_masks: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Single-pass first-fit merge, preserving historical cluster order.

        Each cluster merges into the *first* already-kept cluster it shares
        a detector with (exactly the set-based implementation's semantics —
        intentionally not a transitive closure; the round loop re-merges).
        """
        kept: list[int] = []
        for i in range(det_masks.shape[0]):
            target = None
            for j in kept:
                if (det_masks[j] & det_masks[i]).any():
                    target = j
                    break
            if target is None:
                kept.append(i)
            else:
                det_masks[target] |= det_masks[i]
                mech_masks[target] |= mech_masks[i]
        if len(kept) == det_masks.shape[0]:
            return det_masks, mech_masks
        return det_masks[kept], mech_masks[kept]

    def _try_solve(self, det_mask: np.ndarray, mech_mask: np.ndarray, syndrome: np.ndarray):
        """Return the list of chosen mechanism columns, or False if unsolvable."""
        detectors = np.nonzero(det_mask)[0]
        candidates = np.nonzero(mech_mask)[0]
        if candidates.size:
            # Keep columns whose detector support lies entirely inside the
            # cluster: no touched detector outside the mask.
            outside = ~det_mask
            escapes = self._incidence[outside][:, candidates].any(axis=0)
            columns = candidates[~escapes]
        else:
            columns = candidates
        target = syndrome[detectors]
        if columns.size == 0:
            return False if target.any() else []
        sub_matrix = self.check_matrix[np.ix_(detectors, columns)]
        solution = gf2_solve(sub_matrix, target)
        if solution is None:
            return False
        return [int(c) for c in columns[np.nonzero(solution)[0]]]
