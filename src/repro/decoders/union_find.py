"""Hypergraph union-find decoder.

A cluster-growth decoder in the spirit of Delfosse–Nickerson union-find,
generalised to hypergraph decoding problems (mechanisms may flip more than
two detectors, as in colour-code DEMs):

1. every defect (triggered detector) seeds a cluster;
2. a cluster is *valid* when the defects inside it can be explained by
   mechanisms whose detector sets lie entirely inside the cluster (checked
   with a GF(2) solve over the cluster's sub-matrix); clusters containing a
   boundary-adjacent mechanism can also absorb leftover parity;
3. invalid clusters grow by one step — every mechanism touching the cluster
   is absorbed together with all detectors it flips — and overlapping
   clusters merge;
4. once every cluster is valid, a correction is read off from the GF(2)
   solution inside each cluster and the predicted observable flips are the
   XOR of the chosen mechanisms' observable signatures.

This keeps the defining characteristics the paper relies on: it is fast,
greedy, and distinctly *not* maximum-likelihood, so schedules can be
tailored to (or against) its failure patterns.
"""

from __future__ import annotations

import numpy as np

from repro.decoders.base import Decoder
from repro.pauli.gf2 import gf2_solve
from repro.sim.dem import DetectorErrorModel

__all__ = ["UnionFindDecoder"]


class UnionFindDecoder(Decoder):
    """Cluster-growth (union-find style) decoder on the DEM hypergraph."""

    def __init__(self, dem: DetectorErrorModel, *, max_growth_rounds: int | None = None) -> None:
        super().__init__(dem)
        self.max_growth_rounds = max_growth_rounds or (dem.num_detectors + 1)
        # Adjacency: detector -> mechanisms touching it.
        self._mechanisms_of_detector: dict[int, list[int]] = {
            d: [] for d in range(dem.num_detectors)
        }
        for column, mechanism in enumerate(dem.mechanisms):
            for detector in mechanism.detectors:
                self._mechanisms_of_detector[detector].append(column)

    # ------------------------------------------------------------------
    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        syndrome = np.asarray(syndrome, dtype=np.uint8).reshape(-1)
        prediction = np.zeros(self.dem.num_observables, dtype=np.uint8)
        defects = set(int(d) for d in np.nonzero(syndrome)[0])
        if not defects:
            return prediction

        clusters = [_Cluster({d}) for d in sorted(defects)]
        for _ in range(self.max_growth_rounds):
            clusters = self._merge_overlapping(clusters)
            invalid = [c for c in clusters if not self._try_solve(c, syndrome)]
            if not invalid:
                break
            for cluster in invalid:
                self._grow(cluster)
        clusters = self._merge_overlapping(clusters)

        for cluster in clusters:
            solution = self._try_solve(cluster, syndrome)
            if solution is None or solution is False:
                # Give up on this cluster (should be rare: the full detector
                # set always admits a solution when the DEM is consistent).
                continue
            for column in solution:
                for observable in self.dem.mechanisms[column].observables:
                    prediction[observable] ^= 1
        return prediction

    # ------------------------------------------------------------------
    def _grow(self, cluster: "_Cluster") -> None:
        new_mechanisms: set[int] = set()
        for detector in cluster.detectors:
            new_mechanisms.update(self._mechanisms_of_detector[detector])
        cluster.mechanisms.update(new_mechanisms)
        for column in new_mechanisms:
            cluster.detectors.update(self.dem.mechanisms[column].detectors)

    @staticmethod
    def _merge_overlapping(clusters: list["_Cluster"]) -> list["_Cluster"]:
        merged: list[_Cluster] = []
        for cluster in clusters:
            target = None
            for existing in merged:
                if existing.detectors & cluster.detectors:
                    target = existing
                    break
            if target is None:
                merged.append(cluster)
            else:
                target.detectors.update(cluster.detectors)
                target.mechanisms.update(cluster.mechanisms)
        return merged

    def _try_solve(self, cluster: "_Cluster", syndrome: np.ndarray):
        """Return the list of chosen mechanism columns, or False if unsolvable."""
        detectors = sorted(cluster.detectors)
        columns = sorted(
            column
            for column in cluster.mechanisms
            if self.dem.mechanisms[column].detectors <= cluster.detectors
        )
        target = syndrome[detectors]
        if not columns:
            return False if target.any() else []
        detector_position = {d: i for i, d in enumerate(detectors)}
        sub_matrix = np.zeros((len(detectors), len(columns)), dtype=np.uint8)
        for local_column, column in enumerate(columns):
            for detector in self.dem.mechanisms[column].detectors:
                sub_matrix[detector_position[detector], local_column] = 1
        solution = gf2_solve(sub_matrix, target)
        if solution is None:
            return False
        return [columns[i] for i in np.nonzero(solution)[0]]


class _Cluster:
    """A growing cluster of detectors and the mechanisms it has absorbed."""

    __slots__ = ("detectors", "mechanisms")

    def __init__(self, detectors: set[int]) -> None:
        self.detectors = set(detectors)
        self.mechanisms: set[int] = set()
