"""Heuristic decoders operating on detector error models."""

from repro.decoders.base import Decoder, decoder_factory
from repro.decoders.bposd import BPOSDDecoder
from repro.decoders.lookup import LookupDecoder
from repro.decoders.matching import MWPMDecoder
from repro.decoders.union_find import UnionFindDecoder

__all__ = [
    "Decoder",
    "decoder_factory",
    "MWPMDecoder",
    "UnionFindDecoder",
    "BPOSDDecoder",
    "LookupDecoder",
]
