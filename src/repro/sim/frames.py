"""Batched Pauli-frame propagation: circuit-level sampling at scale.

A Pauli frame tracks, per qubit, the X/Z deviation of a noisy run from the
noiseless reference execution of the same circuit.  For stochastic Pauli
noise on Clifford circuits this is exact (the same fact the DEM
decomposition rests on, :mod:`repro.sim.propagation`), but where the DEM
linearises each fault independently, the frame simulator carries the *full
correlated* frame of every shot through the circuit — so it stays correct
for workloads the DEM cannot express, at batch speed.

:class:`FrameSampler` carries ``N`` shots at once: the X/Z frames are
``(num_qubits, ceil(N / 64))`` little-endian ``uint64`` arrays in the
:mod:`repro.sim.bitops` layout — shots packed along the word axis — and
every circuit instruction becomes one vectorised pass over those rows:

* Clifford gates permute/XOR whole frame rows (H swaps a qubit's X and Z
  rows; ``CPAULI`` XORs the control's X row into the target per the same
  conjugation rules as :func:`repro.sim.propagation._apply_instruction`);
* noise instructions draw their Bernoulli/categorical realisations for all
  shots in one ``rng`` call and XOR the packed draws into the frame rows;
* measurements snapshot the measured qubit's X row (Z row for ``MX``) —
  the frame bit that anticommutes with the readout basis *is* the
  measurement flip — and resets clear the frame rows.

Detector/observable parities then reduce over the recorded measurement
rows with :func:`repro.sim.bitops.xor_reduce_rows`, still packed, and the
batch hands the decoder its syndromes in packed form with zero repacking.

:class:`TableauSampler` is the per-shot reference on the same interface: a
full stabilizer-tableau run per shot (spec ``"tableau"``, or
``"tableau:dense"`` for the dense storage backend).  It is the slow,
maximally-trusted baseline the frame propagator is benchmarked and
cross-validated against.

Determinism: a sampler's output is a pure function of ``(shots, seed)``.
All randomness flows through one ``np.random.default_rng(seed)`` generator
consumed in circuit order, so fixed seeds give bit-identical batches —
which is what lets the chunked parallel engine (:mod:`repro.parallel`)
keep its worker-count-invariance and cache guarantees unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.sim.bitops import pack_rows, packed_words, unpack_rows, xor_reduce_rows
from repro.sim.sampler import SampleBatch
from repro.sim.tableau import simulate_circuit

__all__ = ["FrameSampler", "TableauSampler"]

_WORD_DTYPE = np.dtype("<u8")

#: X/Z bits of each Pauli letter (the ``CPAULI`` check Pauli).
_CHECK_BITS = {"X": (1, 0), "Y": (1, 1), "Z": (0, 1)}

#: Pair index 0..15 (letters I,X,Y,Z; first*4 + second) -> X/Z flip of each
#: half.  Index 0 is II (no flip); indices 1..15 follow the canonical
#: ``TWO_QUBIT_PAULIS`` enumeration shared with the tableau simulator and
#: the DEM decomposition.
_PAIR_FIRST_X = np.array([(i // 4) in (1, 2) for i in range(16)], dtype=bool)
_PAIR_FIRST_Z = np.array([(i // 4) in (2, 3) for i in range(16)], dtype=bool)
_PAIR_SECOND_X = np.array([(i % 4) in (1, 2) for i in range(16)], dtype=bool)
_PAIR_SECOND_Z = np.array([(i % 4) in (2, 3) for i in range(16)], dtype=bool)


def _qubit_array(qubits) -> np.ndarray:
    array = np.asarray(qubits, dtype=np.intp)
    if array.size != np.unique(array).size:
        raise ValueError(f"instruction repeats a qubit: {list(qubits)}")
    return array


class FrameSampler:
    """Batched Pauli-frame sampler over one circuit (spec ``"frames"``).

    Construction compiles the circuit IR into a flat op list (index arrays,
    check-Pauli bits and channel thresholds precomputed); :meth:`sample`
    replays it once per instruction for all shots.  Instances are small and
    picklable, so the chunked process pool ships them to workers as-is.
    """

    def __init__(self, circuit: Circuit, dem=None) -> None:
        self.num_qubits = circuit.num_qubits
        self.num_detectors = circuit.num_detectors
        self.num_observables = circuit.num_observables
        self.num_measurements = circuit.num_measurements
        self._detector_groups = [list(members) for members in circuit.detectors()]
        observables = circuit.observables()
        self._observable_groups = [
            list(observables.get(index, ())) for index in range(self.num_observables)
        ]
        self._ops = self._compile(circuit)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile(self, circuit: Circuit) -> list:
        ops: list[tuple] = []
        measurement_index = 0
        for instruction in circuit.instructions:
            name = instruction.name
            if name == "H":
                ops.append(("swapxz", _qubit_array(instruction.qubits)))
            elif name == "S":
                ops.append(("s", _qubit_array(instruction.qubits)))
            elif name == "CPAULI":
                control, target = instruction.qubits
                check_x, check_z = _CHECK_BITS[instruction.pauli]
                ops.append(("cpauli", control, target, check_x, check_z))
            elif name == "SWAP":
                ops.append(
                    (
                        "swap",
                        _qubit_array(instruction.qubits[::2]),
                        _qubit_array(instruction.qubits[1::2]),
                    )
                )
            elif name in ("R", "RX"):
                ops.append(("reset", _qubit_array(instruction.qubits)))
            elif name in ("M", "MX"):
                ops.append(
                    (
                        "measure",
                        _qubit_array(instruction.qubits),
                        name == "MX",
                        measurement_index,
                    )
                )
                measurement_index += len(instruction.qubits)
            elif name in ("X_ERROR", "Y_ERROR", "Z_ERROR"):
                letter = name[0]
                ops.append(
                    (
                        "flip",
                        _qubit_array(instruction.qubits),
                        float(instruction.probability),
                        letter in ("X", "Y"),
                        letter in ("Y", "Z"),
                    )
                )
            elif name == "DEPOLARIZE1":
                ops.append(
                    ("dep1", _qubit_array(instruction.qubits), float(instruction.probability))
                )
            elif name == "DEPOLARIZE2":
                ops.append(
                    (
                        "dep2",
                        _qubit_array(instruction.qubits[::2]),
                        _qubit_array(instruction.qubits[1::2]),
                        float(instruction.probability),
                    )
                )
            elif name == "PAULI_CHANNEL_1":
                p_x, p_y, p_z = (float(p) for p in instruction.probabilities)
                # One uniform draw per (qubit, shot): [0, px+py) flips X,
                # [px, px+py+pz) flips Z — the overlap [px, px+py) is Y.
                ops.append(
                    (
                        "pc1",
                        _qubit_array(instruction.qubits),
                        p_x + p_y,
                        p_x,
                        p_x + p_y + p_z,
                    )
                )
            elif name == "PAULI_CHANNEL_2":
                cumulative = np.cumsum(
                    np.asarray(instruction.probabilities, dtype=np.float64)
                )
                ops.append(
                    (
                        "pc2",
                        _qubit_array(instruction.qubits[::2]),
                        _qubit_array(instruction.qubits[1::2]),
                        cumulative,
                    )
                )
            # X/Y/Z gates commute with the frame up to sign; TICK/DETECTOR/
            # OBSERVABLE are annotations.  All are no-ops here.
        return ops

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(
        self, shots: int, *, seed: "int | np.random.SeedSequence | None" = None
    ) -> SampleBatch:
        """Propagate ``shots`` frames through the circuit; see module docs."""
        shots = int(shots)
        if shots <= 0:
            detectors = np.zeros((0, self.num_detectors), dtype=np.uint8)
            return SampleBatch(
                detectors=detectors,
                observables=np.zeros((0, self.num_observables), dtype=np.uint8),
                faults=np.zeros((0, 0), dtype=np.uint8),
                packed_detectors=pack_rows(detectors),
            )
        rng = np.random.default_rng(seed)
        words = packed_words(shots)
        frame_x = np.zeros((self.num_qubits, words), dtype=_WORD_DTYPE)
        frame_z = np.zeros((self.num_qubits, words), dtype=_WORD_DTYPE)
        flips = np.zeros((self.num_measurements, words), dtype=_WORD_DTYPE)
        for op in self._ops:
            kind = op[0]
            if kind == "measure":
                _, qubits, x_basis, start = op
                source = frame_z if x_basis else frame_x
                flips[start : start + qubits.size] = source[qubits]
            elif kind == "cpauli":
                _, control, target, check_x, check_z = op
                target_x_old = frame_x[target].copy()
                target_z_old = frame_z[target].copy()
                if check_x:
                    frame_x[target] ^= frame_x[control]
                if check_z:
                    frame_z[target] ^= frame_x[control]
                # A target frame anticommuting with the check Pauli kicks a
                # Z onto the control (same rule as propagation).
                if check_x and check_z:
                    frame_z[control] ^= target_x_old ^ target_z_old
                elif check_x:
                    frame_z[control] ^= target_z_old
                else:
                    frame_z[control] ^= target_x_old
            elif kind == "swapxz":
                _, qubits = op
                swapped = frame_x[qubits]
                frame_x[qubits] = frame_z[qubits]
                frame_z[qubits] = swapped
            elif kind == "s":
                _, qubits = op
                frame_z[qubits] ^= frame_x[qubits]
            elif kind == "swap":
                _, firsts, seconds = op
                first_x, first_z = frame_x[firsts], frame_z[firsts]
                frame_x[firsts], frame_z[firsts] = frame_x[seconds], frame_z[seconds]
                frame_x[seconds], frame_z[seconds] = first_x, first_z
            elif kind == "reset":
                _, qubits = op
                frame_x[qubits] = 0
                frame_z[qubits] = 0
            elif kind == "flip":
                _, qubits, probability, flip_x, flip_z = op
                draws = pack_rows(rng.random((qubits.size, shots)) < probability)
                if flip_x:
                    frame_x[qubits] ^= draws
                if flip_z:
                    frame_z[qubits] ^= draws
            elif kind == "dep1":
                _, qubits, probability = op
                fired = rng.random((qubits.size, shots)) < probability
                which = rng.integers(0, 3, size=(qubits.size, shots))
                frame_x[qubits] ^= pack_rows(fired & (which != 2))  # X or Y
                frame_z[qubits] ^= pack_rows(fired & (which != 0))  # Y or Z
            elif kind == "dep2":
                _, firsts, seconds, probability = op
                fired = rng.random((firsts.size, shots)) < probability
                pair = rng.integers(1, 16, size=(firsts.size, shots))
                frame_x[firsts] ^= pack_rows(fired & _PAIR_FIRST_X[pair])
                frame_z[firsts] ^= pack_rows(fired & _PAIR_FIRST_Z[pair])
                frame_x[seconds] ^= pack_rows(fired & _PAIR_SECOND_X[pair])
                frame_z[seconds] ^= pack_rows(fired & _PAIR_SECOND_Z[pair])
            elif kind == "pc1":
                _, qubits, x_below, z_from, z_below = op
                draws = rng.random((qubits.size, shots))
                frame_x[qubits] ^= pack_rows(draws < x_below)
                frame_z[qubits] ^= pack_rows((draws >= z_from) & (draws < z_below))
            elif kind == "pc2":
                _, firsts, seconds, cumulative = op
                draws = rng.random((firsts.size, shots))
                # Categorical draw over the 15 Pauli pairs (+ identity in
                # the remaining tail mass); choice k in 0..14 realises
                # canonical pair index k + 1.
                choice = np.searchsorted(cumulative, draws, side="right")
                pair = np.where(choice < 15, choice + 1, 0)
                frame_x[firsts] ^= pack_rows(_PAIR_FIRST_X[pair])
                frame_z[firsts] ^= pack_rows(_PAIR_FIRST_Z[pair])
                frame_x[seconds] ^= pack_rows(_PAIR_SECOND_X[pair])
                frame_z[seconds] ^= pack_rows(_PAIR_SECOND_Z[pair])
        detector_rows = xor_reduce_rows(flips, self._detector_groups)
        observable_rows = xor_reduce_rows(flips, self._observable_groups)
        detectors = np.ascontiguousarray(unpack_rows(detector_rows, shots).T)
        observables = np.ascontiguousarray(unpack_rows(observable_rows, shots).T)
        return SampleBatch(
            detectors=detectors,
            observables=observables,
            faults=np.zeros((shots, 0), dtype=np.uint8),
            packed_detectors=pack_rows(detectors),
        )


class TableauSampler:
    """Per-shot stabilizer-tableau sampler (spec ``"tableau[:mode]"``).

    Runs one full tableau simulation per shot and reports detector/
    observable values relative to the noiseless reference execution, which
    makes its batches directly comparable to the DEM and frame samplers
    (both report *flips*).  Slow by design — this is the trusted baseline,
    and the denominator of the frame propagator's benchmark speedup.
    """

    def __init__(self, circuit: Circuit, dem=None, mode: str = "packed") -> None:
        self.circuit = circuit
        self.mode = mode
        self.num_detectors = circuit.num_detectors
        self.num_observables = circuit.num_observables
        # Detector/observable values of the noiseless reference run.  The
        # builders guarantee these are deterministic, so any fixed seed
        # yields the reference (individual measurements may still be
        # random; their detector parities are not).
        _, detector_values, observable_values = simulate_circuit(
            circuit.without_noise(), seed=0, mode=mode
        )
        self._reference_detectors = np.asarray(detector_values, dtype=np.uint8)
        self._reference_observables = np.array(
            [observable_values.get(index, 0) for index in range(self.num_observables)],
            dtype=np.uint8,
        )

    def sample(
        self, shots: int, *, seed: "int | np.random.SeedSequence | None" = None
    ) -> SampleBatch:
        shots = int(shots)
        rng = np.random.default_rng(seed)
        detectors = np.zeros((max(shots, 0), self.num_detectors), dtype=np.uint8)
        observables = np.zeros((max(shots, 0), self.num_observables), dtype=np.uint8)
        for shot in range(shots):
            # The shared generator threads one RNG stream through all shots.
            _, detector_values, observable_values = simulate_circuit(
                self.circuit, seed=rng, mode=self.mode
            )
            detectors[shot] = self._reference_detectors ^ np.asarray(
                detector_values, dtype=np.uint8
            )
            for index in range(self.num_observables):
                observables[shot, index] = self._reference_observables[index] ^ int(
                    observable_values.get(index, 0)
                )
        return SampleBatch(
            detectors=detectors,
            observables=observables,
            faults=np.zeros((max(shots, 0), 0), dtype=np.uint8),
            packed_detectors=pack_rows(detectors),
        )
