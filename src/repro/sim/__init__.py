"""Clifford simulation substrate: fault propagation, DEMs, sampling, tableau."""

from repro.sim.bitops import (
    pack_rows,
    packed_matmul_parity,
    popcount,
    unpack_rows,
    xor_reduce_rows,
)
from repro.sim.dem import DetectorErrorModel, ErrorMechanism, build_detector_error_model
from repro.sim.estimator import (
    LogicalErrorRates,
    basis_streams,
    count_wrong,
    decode_error_rate,
    decode_predictions,
    estimate_logical_error_rates,
    estimate_logical_error_rates_adaptive,
    evaluate_basis,
    fraction_wrong,
    rates_from_adaptive_estimates,
)
from repro.sim.frames import FrameSampler, TableauSampler
from repro.sim.propagation import SparsePauli, measurement_flips, propagate_fault
from repro.sim.sampler import DemSampler, SampleBatch, sample_detector_error_model
from repro.sim.tableau import DenseTableauSimulator, TableauSimulator, simulate_circuit

__all__ = [
    "DetectorErrorModel",
    "ErrorMechanism",
    "build_detector_error_model",
    "SparsePauli",
    "propagate_fault",
    "measurement_flips",
    "SampleBatch",
    "DemSampler",
    "FrameSampler",
    "TableauSampler",
    "sample_detector_error_model",
    "TableauSimulator",
    "DenseTableauSimulator",
    "simulate_circuit",
    "LogicalErrorRates",
    "basis_streams",
    "decode_error_rate",
    "decode_predictions",
    "estimate_logical_error_rates",
    "estimate_logical_error_rates_adaptive",
    "count_wrong",
    "fraction_wrong",
    "rates_from_adaptive_estimates",
    "evaluate_basis",
    "pack_rows",
    "unpack_rows",
    "popcount",
    "xor_reduce_rows",
    "packed_matmul_parity",
]
