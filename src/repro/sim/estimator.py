"""Decoder-in-the-loop logical error rate estimation.

This is the evaluation function at the heart of AlphaSyndrome (Section 4.4):
given a code, a schedule, a noise model and a decoder, build the Figure 10
sampling circuits for both logical bases, sample them, decode every shot and
report the logical X / logical Z / overall error rates.  The overall score
used by the MCTS search is ``1 / overall`` as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.circuits.memory import build_memory_experiment
from repro.codes.base import StabilizerCode
from repro.noise.models import NoiseModel
from repro.scheduling.schedule import Schedule
from repro.seeding import spawn_streams
from repro.sim.dem import DetectorErrorModel, build_detector_error_model
from repro.sim.sampler import SampleBatch, sample_detector_error_model

__all__ = [
    "LogicalErrorRates",
    "basis_streams",
    "decode_error_rate",
    "decode_predictions",
    "estimate_logical_error_rates",
    "evaluate_basis",
    "fraction_wrong",
]

#: A decoder factory takes a DEM and returns an object with ``decode_batch``.
DecoderFactory = Callable[[DetectorErrorModel], "object"]


@dataclass
class LogicalErrorRates:
    """Logical error rates of a schedule under a noise model and decoder."""

    error_x: float
    error_z: float
    shots: int
    depth: int

    @property
    def overall(self) -> float:
        """Probability that at least one logical error (X or Z) occurred."""
        return 1.0 - (1.0 - self.error_x) * (1.0 - self.error_z)

    @property
    def score(self) -> float:
        """The MCTS evaluation score ``1 / overall`` (capped for zero errors)."""
        overall = self.overall
        if overall <= 0.0:
            return float("inf")
        return 1.0 / overall

    def __str__(self) -> str:
        return (
            f"err_x={self.error_x:.3e} err_z={self.error_z:.3e} "
            f"overall={self.overall:.3e} depth={self.depth}"
        )


def fraction_wrong(predictions: np.ndarray, batch: SampleBatch) -> float:
    """Fraction of shots where a prediction misses at least one observable.

    A shot counts as a logical error when the decoder's predicted observable
    flip disagrees with the actual flip for at least one logical qubit.  This
    is the single scoring kernel shared by :func:`evaluate_basis` and the
    staged :class:`repro.api.Pipeline`, which guarantees the two paths report
    identical rates for identical samples.
    """
    if predictions.shape != batch.observables.shape:
        raise ValueError(
            f"decoder returned predictions of shape {predictions.shape}, "
            f"expected {batch.observables.shape}"
        )
    if batch.num_shots == 0:
        return 0.0
    wrong = (predictions != batch.observables).any(axis=1)
    return float(np.count_nonzero(wrong)) / batch.num_shots


def basis_streams(
    seed: "int | np.random.SeedSequence | None",
) -> "list[tuple[str, np.random.SeedSequence | None]]":
    """The per-basis sampling-stream plan: ``[("Z", ...), ("X", ...)]``.

    Basis Z consumes the first spawned child (and reports ``error_x``);
    basis X the second.  This single derivation is shared by the serial
    estimator, the pooled :class:`repro.core.ScheduleEvaluator` fan-out and
    the :class:`repro.api.Pipeline`, so the streams can never drift apart
    between the paths (which would silently break their bit-identity).
    """
    stream_x, stream_z = spawn_streams(seed, 2)
    return [("Z", stream_x), ("X", stream_z)]


def decode_predictions(decoder, batch: SampleBatch) -> np.ndarray:
    """Decode a batch, preferring the bit-packed syndrome path when it helps.

    Syndromes are handed over in packed ``uint64`` form only when the
    decoder advertises ``has_packed_fast_path`` (e.g. the lookup decoder
    with an applicable key table, whose keys *are* the packed words).
    Everything else is given the already dense ``batch.detectors`` directly
    — routing it through the packed form would just unpack a second copy of
    an array the batch carries anyway.  Predictions are bit-identical
    either way.
    """
    if batch.packed_detectors is not None and getattr(
        decoder, "has_packed_fast_path", False
    ):
        return decoder.decode_batch_packed(batch.packed_detectors)
    return decoder.decode_batch(batch.detectors)


def decode_error_rate(
    dem: DetectorErrorModel,
    batch: SampleBatch,
    decoder_factory: DecoderFactory,
) -> float:
    """Decode a sampled batch and return the fraction of logically wrong shots."""
    decoder = decoder_factory(dem)
    return fraction_wrong(decode_predictions(decoder, batch), batch)


def evaluate_basis(
    code: StabilizerCode,
    schedule: Schedule,
    noise: NoiseModel,
    decoder_factory: DecoderFactory,
    *,
    basis: str,
    shots: int,
    seed: "int | np.random.SeedSequence | None" = None,
) -> float:
    """Return the logical error rate for one basis.

    ``basis='Z'`` measures logical Z operators and therefore reports the
    logical X error rate; ``basis='X'`` reports the logical Z error rate.
    """
    experiment = build_memory_experiment(code, schedule, noise, basis=basis)
    dem = build_detector_error_model(experiment.circuit)
    batch = sample_detector_error_model(dem, shots, seed=seed)
    return decode_error_rate(dem, batch, decoder_factory)


def estimate_logical_error_rates(
    code: StabilizerCode,
    schedule: Schedule,
    noise: NoiseModel,
    decoder_factory: DecoderFactory,
    *,
    shots: int = 2000,
    seed: "int | np.random.SeedSequence | None" = None,
) -> LogicalErrorRates:
    """Estimate logical X, Z and overall error rates of ``schedule``.

    The two per-basis sampling streams are independent ``SeedSequence``
    children of ``seed`` (:func:`basis_streams`: basis Z first, then basis
    X), replacing the old ``seed`` / ``seed + 1`` convention that correlated
    streams across call sites.
    """
    rates = {
        basis: evaluate_basis(
            code, schedule, noise, decoder_factory, basis=basis, shots=shots, seed=stream
        )
        for basis, stream in basis_streams(seed)
    }
    return LogicalErrorRates(
        error_x=rates["Z"], error_z=rates["X"], shots=shots, depth=schedule.depth
    )
