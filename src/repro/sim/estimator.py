"""Decoder-in-the-loop logical error rate estimation.

This is the evaluation function at the heart of AlphaSyndrome (Section 4.4):
given a code, a schedule, a noise model and a decoder, build the Figure 10
sampling circuits for both logical bases, sample them, decode every shot and
report the logical X / logical Z / overall error rates.  The overall score
used by the MCTS search is ``1 / overall`` as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.circuits.memory import build_memory_experiment
from repro.codes.base import StabilizerCode
from repro.noise.models import NoiseModel
from repro.scheduling.schedule import Schedule
from repro.seeding import spawn_streams
from repro.sim.dem import DetectorErrorModel, build_detector_error_model
from repro.sim.sampler import SampleBatch, sample_detector_error_model

__all__ = [
    "LogicalErrorRates",
    "basis_streams",
    "count_wrong",
    "decode_error_rate",
    "decode_predictions",
    "estimate_logical_error_rates",
    "estimate_logical_error_rates_adaptive",
    "evaluate_basis",
    "fraction_wrong",
    "rates_from_adaptive_estimates",
]

#: A decoder factory takes a DEM and returns an object with ``decode_batch``.
DecoderFactory = Callable[[DetectorErrorModel], "object"]


@dataclass
class LogicalErrorRates:
    """Logical error rates of a schedule under a noise model and decoder.

    ``shots`` is the per-basis sample size.  Adaptive estimation may stop
    the two bases at different sizes; then ``shots`` is the larger of the
    two, ``shots_by_basis`` holds the per-basis counts and ``converged``
    reports whether every basis met its precision target (fixed-shot runs
    leave both extra fields at ``None``).
    """

    error_x: float
    error_z: float
    shots: int
    depth: int
    shots_by_basis: "dict[str, int] | None" = None
    converged: "bool | None" = None

    @property
    def overall(self) -> float:
        """Probability that at least one logical error (X or Z) occurred."""
        return 1.0 - (1.0 - self.error_x) * (1.0 - self.error_z)

    @property
    def score(self) -> float:
        """The MCTS evaluation score ``1 / overall`` (capped for zero errors)."""
        overall = self.overall
        if overall <= 0.0:
            return float("inf")
        return 1.0 / overall

    def __str__(self) -> str:
        return (
            f"err_x={self.error_x:.3e} err_z={self.error_z:.3e} "
            f"overall={self.overall:.3e} depth={self.depth}"
        )


def count_wrong(predictions: np.ndarray, batch: SampleBatch) -> int:
    """Number of shots where a prediction misses at least one observable.

    The integer form of :func:`fraction_wrong`; the adaptive engine
    accumulates these counts across chunks so a resumed or early-stopped run
    scores exactly like the concatenated batch would.
    """
    if predictions.shape != batch.observables.shape:
        raise ValueError(
            f"decoder returned predictions of shape {predictions.shape}, "
            f"expected {batch.observables.shape}"
        )
    if batch.num_shots == 0:
        return 0
    return int(np.count_nonzero((predictions != batch.observables).any(axis=1)))


def fraction_wrong(predictions: np.ndarray, batch: SampleBatch) -> float:
    """Fraction of shots where a prediction misses at least one observable.

    A shot counts as a logical error when the decoder's predicted observable
    flip disagrees with the actual flip for at least one logical qubit.  This
    is the single scoring kernel shared by :func:`evaluate_basis` and the
    staged :class:`repro.api.Pipeline`, which guarantees the two paths report
    identical rates for identical samples.  Zero shots report rate 0.0.
    """
    if batch.num_shots == 0:
        count_wrong(predictions, batch)  # still validate the shapes
        return 0.0
    return count_wrong(predictions, batch) / batch.num_shots


def basis_streams(
    seed: "int | np.random.SeedSequence | None",
) -> "list[tuple[str, np.random.SeedSequence | None]]":
    """The per-basis sampling-stream plan: ``[("Z", ...), ("X", ...)]``.

    Basis Z consumes the first spawned child (and reports ``error_x``);
    basis X the second.  This single derivation is shared by the serial
    estimator, the pooled :class:`repro.core.ScheduleEvaluator` fan-out and
    the :class:`repro.api.Pipeline`, so the streams can never drift apart
    between the paths (which would silently break their bit-identity).
    """
    stream_x, stream_z = spawn_streams(seed, 2)
    return [("Z", stream_x), ("X", stream_z)]


def decode_predictions(decoder, batch: SampleBatch) -> np.ndarray:
    """Decode a batch, preferring the bit-packed syndrome path when available.

    Since the decoder stack went batch-first, ``has_packed_fast_path`` is
    the norm rather than a lookup-table exception: the shared front end in
    :class:`repro.decoders.Decoder` deduplicates repeated syndromes on the
    packed ``uint64`` words themselves and unpacks only the unique rows, so
    handing over ``batch.packed_detectors`` skips both a pack pass and a
    dense materialisation of duplicate shots.  The dense ``batch.detectors``
    fallback remains for decoders outside that hierarchy (the attribute
    defaults to False via ``getattr`` for duck-typed third-party decoders).
    Predictions are bit-identical either way.
    """
    if batch.packed_detectors is not None and getattr(
        decoder, "has_packed_fast_path", False
    ):
        return decoder.decode_batch_packed(batch.packed_detectors)
    return decoder.decode_batch(batch.detectors)


def decode_error_rate(
    dem: DetectorErrorModel,
    batch: SampleBatch,
    decoder_factory: DecoderFactory,
) -> float:
    """Decode a sampled batch and return the fraction of logically wrong shots."""
    decoder = decoder_factory(dem)
    return fraction_wrong(decode_predictions(decoder, batch), batch)


def evaluate_basis(
    code: StabilizerCode,
    schedule: Schedule,
    noise: NoiseModel,
    decoder_factory: DecoderFactory,
    *,
    basis: str,
    shots: int,
    seed: "int | np.random.SeedSequence | None" = None,
) -> float:
    """Return the logical error rate for one basis.

    ``basis='Z'`` measures logical Z operators and therefore reports the
    logical X error rate; ``basis='X'`` reports the logical Z error rate.
    """
    experiment = build_memory_experiment(code, schedule, noise, basis=basis)
    dem = build_detector_error_model(experiment.circuit)
    batch = sample_detector_error_model(dem, shots, seed=seed)
    return decode_error_rate(dem, batch, decoder_factory)


def estimate_logical_error_rates(
    code: StabilizerCode,
    schedule: Schedule,
    noise: NoiseModel,
    decoder_factory: DecoderFactory,
    *,
    shots: int = 2000,
    seed: "int | np.random.SeedSequence | None" = None,
) -> LogicalErrorRates:
    """Estimate logical X, Z and overall error rates of ``schedule``.

    The two per-basis sampling streams are independent ``SeedSequence``
    children of ``seed`` (:func:`basis_streams`: basis Z first, then basis
    X), replacing the old ``seed`` / ``seed + 1`` convention that correlated
    streams across call sites.
    """
    rates = {
        basis: evaluate_basis(
            code, schedule, noise, decoder_factory, basis=basis, shots=shots, seed=stream
        )
        for basis, stream in basis_streams(seed)
    }
    return LogicalErrorRates(
        error_x=rates["Z"], error_z=rates["X"], shots=shots, depth=schedule.depth
    )


def rates_from_adaptive_estimates(depth: int, estimates: dict) -> LogicalErrorRates:
    """Assemble :class:`LogicalErrorRates` from per-basis adaptive estimates.

    ``estimates`` maps basis (``"Z"``/``"X"``) to any object exposing
    ``rate`` / ``shots`` / ``converged`` (a
    :class:`repro.parallel.AdaptiveEstimate`).  This is the single place
    that encodes the basis-Z-measures-``error_x`` convention and the
    ``shots = max(per basis)`` summary for adaptive runs — shared by this
    module, :class:`repro.api.Pipeline` and
    :class:`repro.core.ScheduleEvaluator` so the three paths cannot drift.
    """
    return LogicalErrorRates(
        error_x=estimates["Z"].rate,
        error_z=estimates["X"].rate,
        shots=max((estimate.shots for estimate in estimates.values()), default=0),
        depth=depth,
        shots_by_basis={basis: estimate.shots for basis, estimate in estimates.items()},
        converged=all(estimate.converged for estimate in estimates.values()),
    )


def estimate_logical_error_rates_adaptive(
    code: StabilizerCode,
    schedule: Schedule,
    noise: NoiseModel,
    decoder_factory: DecoderFactory,
    *,
    rule=None,
    target_rse: float | None = None,
    max_shots: int | None = None,
    confidence: float = 0.95,
    seed: "int | np.random.SeedSequence | None" = None,
    chunk_shots: int | None = None,
    pool=None,
    lookahead: int = 1,
    store_factory=None,
) -> "tuple[LogicalErrorRates, dict]":
    """Adaptive (precision-targeted) variant of :func:`estimate_logical_error_rates`.

    Each basis streams the same fixed deterministic chunks a fixed-shot run
    at ``shots=rule.max_shots`` would consume (same :func:`basis_streams`
    derivation, same per-chunk spawned streams) and stops as soon as the
    Wilson relative error of the observed rate reaches the rule's target —
    so the sampled prefix is bit-identical to the fixed run's first chunks,
    for every worker count.  Pass the
    :class:`~repro.analysis.stats.StoppingRule` itself (the one derivation,
    e.g. ``budget.stopping_rule()``), or the raw ``target_rse`` /
    ``max_shots`` / ``confidence`` knobs to build one here.
    ``store_factory(basis)`` may supply a :class:`repro.cache.ChunkStore`
    per basis to resume from (and refine) previously measured chunks.

    Returns the rates plus the per-basis
    :class:`repro.parallel.AdaptiveEstimate` dict (``{"Z": ..., "X": ...}``).
    """
    # Imported lazily: repro.parallel imports this module at load time.
    from repro.analysis.stats import StoppingRule, z_for_confidence
    from repro.parallel import adaptive_sample_and_decode

    if rule is None:
        if max_shots is None:
            raise ValueError("pass either a StoppingRule or max_shots")
        rule = StoppingRule(
            max_shots=max_shots, target_rse=target_rse, z=z_for_confidence(confidence)
        )
    estimates = {}
    for basis, stream in basis_streams(seed):
        experiment = build_memory_experiment(code, schedule, noise, basis=basis)
        dem = build_detector_error_model(experiment.circuit)
        estimates[basis] = adaptive_sample_and_decode(
            dem,
            decoder_factory,
            stream,
            rule,
            chunk_shots=chunk_shots,
            pool=pool,
            lookahead=lookahead,
            store=store_factory(basis) if store_factory is not None else None,
        )
    return rates_from_adaptive_estimates(schedule.depth, estimates), estimates
