"""Decoder-in-the-loop logical error rate estimation.

This is the evaluation function at the heart of AlphaSyndrome (Section 4.4):
given a code, a schedule, a noise model and a decoder, build the Figure 10
sampling circuits for both logical bases, sample them, decode every shot and
report the logical X / logical Z / overall error rates.  The overall score
used by the MCTS search is ``1 / overall`` as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.circuits.memory import build_memory_experiment
from repro.codes.base import StabilizerCode
from repro.noise.models import NoiseModel
from repro.scheduling.schedule import Schedule
from repro.sim.dem import DetectorErrorModel, build_detector_error_model
from repro.sim.sampler import sample_detector_error_model

__all__ = ["LogicalErrorRates", "estimate_logical_error_rates", "evaluate_basis"]

#: A decoder factory takes a DEM and returns an object with ``decode_batch``.
DecoderFactory = Callable[[DetectorErrorModel], "object"]


@dataclass
class LogicalErrorRates:
    """Logical error rates of a schedule under a noise model and decoder."""

    error_x: float
    error_z: float
    shots: int
    depth: int

    @property
    def overall(self) -> float:
        """Probability that at least one logical error (X or Z) occurred."""
        return 1.0 - (1.0 - self.error_x) * (1.0 - self.error_z)

    @property
    def score(self) -> float:
        """The MCTS evaluation score ``1 / overall`` (capped for zero errors)."""
        overall = self.overall
        if overall <= 0.0:
            return float("inf")
        return 1.0 / overall

    def __str__(self) -> str:
        return (
            f"err_x={self.error_x:.3e} err_z={self.error_z:.3e} "
            f"overall={self.overall:.3e} depth={self.depth}"
        )


def evaluate_basis(
    code: StabilizerCode,
    schedule: Schedule,
    noise: NoiseModel,
    decoder_factory: DecoderFactory,
    *,
    basis: str,
    shots: int,
    seed: int | None = None,
) -> float:
    """Return the logical error rate for one basis.

    ``basis='Z'`` measures logical Z operators and therefore reports the
    logical X error rate; ``basis='X'`` reports the logical Z error rate.
    A shot counts as a logical error when the decoder's predicted observable
    flip disagrees with the actual flip for at least one logical qubit.
    """
    experiment = build_memory_experiment(code, schedule, noise, basis=basis)
    dem = build_detector_error_model(experiment.circuit)
    batch = sample_detector_error_model(dem, shots, seed=seed)
    decoder = decoder_factory(dem)
    predictions = decoder.decode_batch(batch.detectors)
    if predictions.shape != batch.observables.shape:
        raise ValueError(
            f"decoder returned predictions of shape {predictions.shape}, "
            f"expected {batch.observables.shape}"
        )
    wrong = (predictions != batch.observables).any(axis=1)
    return float(np.count_nonzero(wrong)) / shots


def estimate_logical_error_rates(
    code: StabilizerCode,
    schedule: Schedule,
    noise: NoiseModel,
    decoder_factory: DecoderFactory,
    *,
    shots: int = 2000,
    seed: int | None = None,
) -> LogicalErrorRates:
    """Estimate logical X, Z and overall error rates of ``schedule``."""
    seed_x = None if seed is None else seed
    seed_z = None if seed is None else seed + 1
    error_x = evaluate_basis(
        code, schedule, noise, decoder_factory, basis="Z", shots=shots, seed=seed_x
    )
    error_z = evaluate_basis(
        code, schedule, noise, decoder_factory, basis="X", shots=shots, seed=seed_z
    )
    return LogicalErrorRates(
        error_x=error_x, error_z=error_z, shots=shots, depth=schedule.depth
    )
