"""Bit-packed GF(2) kernels for the sampling/decoding hot path.

Everything in this module operates on *bit-packed* binary matrices: a
``(rows, bits)`` array of 0/1 values becomes a ``(rows, ceil(bits / 64))``
array of ``uint64`` words, where bit ``i`` of word ``j`` in a row is column
``64 * j + i`` of that row.  The byte layout is pinned to little-endian
(``np.dtype('<u8')``) and the bit order within each byte to
``bitorder="little"``, so packed words — and anything keyed on them, such as
the lookup decoder's syndrome table — are identical on every platform.

Three kernels cover the hot path:

``xor_reduce_rows``
    XOR-accumulate selected rows of a packed matrix.  With fault draws
    packed *along the shot axis*, one XOR-reduce per detector replaces the
    dense ``int64`` matmul-mod-2 of the naive sampler: 64 shots advance per
    word operation and no multiply is ever issued.

``packed_matmul_parity``
    Popcount-based GF(2) matrix product for operands packed along the shared
    axis (``parity(popcount(a_i & b_j))``).  Backs
    :func:`repro.pauli.gf2.gf2_matmul` for large operands.

``popcount``
    Vectorised per-element popcount (``np.bitwise_count`` when available,
    byte-table fallback otherwise — popcount is byte-order independent).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BITS",
    "packed_words",
    "pack_rows",
    "unpack_rows",
    "popcount",
    "xor_reduce_rows",
    "packed_matmul_parity",
    "get_bit_column",
    "xor_bit_column",
    "rowsum_g_exponents",
]

WORD_BITS = 64

#: Canonical packed dtype: explicitly little-endian 64-bit words, so packed
#: values never depend on the host byte order.
_WORD_DTYPE = np.dtype("<u8")

_POPCOUNT8 = np.array([bin(value).count("1") for value in range(256)], dtype=np.uint8)


def packed_words(num_bits: int) -> int:
    """Number of 64-bit words needed to hold ``num_bits`` bits (0 for 0)."""
    return (int(num_bits) + WORD_BITS - 1) // WORD_BITS


def pack_rows(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(rows, bits)`` 0/1 array into ``(rows, words)`` uint64 words.

    Any non-zero entry counts as 1 (``np.packbits`` semantics).  Padding
    bits beyond the last column are always zero, so packed rows of equal
    width compare equal iff the unpacked rows do.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError(f"pack_rows expects a 2-D array, got shape {bits.shape}")
    rows, num_bits = bits.shape
    words = packed_words(num_bits)
    packed_bytes = np.packbits(bits, axis=1, bitorder="little")
    padded = np.zeros((rows, words * 8), dtype=np.uint8)
    padded[:, : packed_bytes.shape[1]] = packed_bytes
    return padded.view(_WORD_DTYPE)


def unpack_rows(words: np.ndarray, num_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: ``(rows, words)`` -> ``(rows, num_bits)`` uint8."""
    words = np.asarray(words)
    if words.ndim != 2:
        raise ValueError(f"unpack_rows expects a 2-D array, got shape {words.shape}")
    if words.shape[1] < packed_words(num_bits):
        raise ValueError(
            f"{words.shape[1]} words cannot hold {num_bits} bits "
            f"(need {packed_words(num_bits)})"
        )
    as_bytes = np.ascontiguousarray(words, dtype=_WORD_DTYPE).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :num_bits]


if hasattr(np, "bitwise_count"):

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of an unsigned integer array."""
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised only on numpy < 2.0

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of an unsigned integer array (byte-table fallback)."""
        words = np.ascontiguousarray(words)
        per_byte = _POPCOUNT8[words.view(np.uint8)]
        return per_byte.reshape(*words.shape, words.dtype.itemsize).sum(
            axis=-1, dtype=np.uint8
        )


def xor_reduce_rows(packed: np.ndarray, groups: "list[np.ndarray | list[int]]") -> np.ndarray:
    """XOR-reduce selected rows of ``packed`` for every index group.

    Returns a ``(len(groups), words)`` array whose ``i``-th row is the XOR of
    ``packed[groups[i]]`` (all zeros for an empty group).  This is a GF(2)
    sparse matrix product with the group structure as the left operand.
    """
    packed = np.asarray(packed)
    out = np.zeros((len(groups), packed.shape[1]), dtype=packed.dtype)
    for index, group in enumerate(groups):
        if len(group):
            out[index] = np.bitwise_xor.reduce(packed[np.asarray(group)], axis=0)
    return out


def get_bit_column(packed: np.ndarray, column: int) -> np.ndarray:
    """Bit ``column`` of every row of a packed matrix, as a 0/1 uint8 vector."""
    word, bit = divmod(int(column), WORD_BITS)
    return ((packed[:, word] >> np.uint64(bit)) & np.uint64(1)).astype(np.uint8)


def xor_bit_column(packed: np.ndarray, column: int, values: np.ndarray) -> None:
    """XOR a 0/1 vector (one entry per row) into bit ``column``, in place."""
    word, bit = divmod(int(column), WORD_BITS)
    packed[:, word] ^= values.astype(_WORD_DTYPE) << np.uint64(bit)


def rowsum_g_exponents(
    source_x: np.ndarray,
    source_z: np.ndarray,
    target_x: np.ndarray,
    target_z: np.ndarray,
) -> np.ndarray:
    """Summed Aaronson–Gottesman ``g`` phase exponents over packed Pauli rows.

    All four operands are packed X/Z bit rows of equal word count (the
    source pair broadcasts against a stack of target rows).  The return
    value is the ``int64`` sum over the packed axis of
    ``g(x1, z1, x2, z2)`` per bit position — the phase-function total the
    CHP ``rowsum`` needs, computed as ``popcount(plus) - popcount(minus)``
    where the two masks pick out the bit positions contributing ``+1`` and
    ``-1`` respectively.  Padding bits are zero in every operand and
    contribute nothing.
    """
    sx = np.asarray(source_x)
    sz = np.asarray(source_z)
    tx = np.asarray(target_x)
    tz = np.asarray(target_z)
    source_y = sx & sz
    source_x_only = sx & ~sz
    source_z_only = ~sx & sz
    target_y = tx & tz
    plus = (source_y & tz & ~tx) | (source_x_only & target_y) | (source_z_only & tx & ~tz)
    minus = (source_y & tx & ~tz) | (source_x_only & tz & ~tx) | (source_z_only & target_y)
    return popcount(plus).astype(np.int64).sum(axis=-1) - popcount(minus).astype(
        np.int64
    ).sum(axis=-1)


def packed_matmul_parity(
    a_packed: np.ndarray, b_packed: np.ndarray, *, block_elements: int = 1 << 21
) -> np.ndarray:
    """GF(2) product of two row-packed operands sharing their packed axis.

    ``a_packed`` is ``(n, words)`` and ``b_packed`` is ``(m, words)``, both
    packed along a shared length-``k`` axis; the result is the ``(n, m)``
    uint8 matrix with entries ``parity(|row_a AND row_b|)`` — exactly
    ``(A @ B.T) mod 2`` on the unpacked operands.  Work is blocked over rows
    of ``a_packed`` to bound the temporary ``(block, m, words)`` allocation.
    """
    a_packed = np.asarray(a_packed)
    b_packed = np.asarray(b_packed)
    if a_packed.shape[1] != b_packed.shape[1]:
        raise ValueError(
            f"packed operands disagree on word count: "
            f"{a_packed.shape[1]} vs {b_packed.shape[1]}"
        )
    n, words = a_packed.shape
    m = b_packed.shape[0]
    out = np.empty((n, m), dtype=np.uint8)
    block = max(1, block_elements // max(1, m * max(1, words)))
    for start in range(0, n, block):
        stop = min(start + block, n)
        intersect = a_packed[start:stop, None, :] & b_packed[None, :, :]
        counts = popcount(intersect).sum(axis=-1, dtype=np.int64)
        out[start:stop] = (counts & 1).astype(np.uint8)
    return out
