"""Detector error model (DEM) extraction.

Every stochastic Pauli noise channel in a circuit is decomposed into
elementary *fault mechanisms* (a single Pauli applied with some
probability).  Each mechanism is propagated through the remainder of the
circuit to find the set of detectors and logical observables it flips; the
resulting list of ``(probability, detectors, observables)`` triples is the
detector error model, exactly analogous to stim's DEM.

Mechanisms with identical symptoms are merged (probabilities combine as
``p = p1 (1 - p2) + p2 (1 - p1)``), and mechanisms that flip nothing are
dropped.  The DEM doubles as the decoding problem: ``check_matrix`` (H),
``observable_matrix`` (L) and ``priors`` are what every decoder in
``repro.decoders`` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import (
    GATE_NAMES,
    NOISE_NAMES,
    ONE_QUBIT_PAULIS,
    TWO_QUBIT_PAULIS,
    Circuit,
)
from repro.sim.propagation import SparsePauli, propagate_fault

__all__ = [
    "DemDecompositionError",
    "ErrorMechanism",
    "DetectorErrorModel",
    "build_detector_error_model",
]

#: Instruction names the first-order fault decomposition understands.  The
#: propagation kernel silently ignores anything else, which would make a
#: DEM built from a richer circuit silently wrong — so decomposition checks
#: membership up front and refuses loudly instead.
_DECOMPOSABLE_NAMES = frozenset(GATE_NAMES | NOISE_NAMES | {"TICK", "DETECTOR", "OBSERVABLE"})


class DemDecompositionError(ValueError):
    """A circuit instruction cannot be decomposed into DEM mechanisms.

    Raised instead of building a silently incomplete model.  Circuit-level
    samplers (``sampler="frames"``) do not require DEM decomposition for
    sampling, so callers with richer circuits can route around this.
    """

# Canonical Pauli orders shared with the circuit IR (PAULI_CHANNEL_1/2
# probability tuples are defined in exactly this order).
_ONE_QUBIT_PAULIS = ONE_QUBIT_PAULIS
_TWO_QUBIT_PAULIS = TWO_QUBIT_PAULIS


@dataclass(frozen=True)
class ErrorMechanism:
    """One independent error mechanism of the DEM."""

    probability: float
    detectors: frozenset[int]
    observables: frozenset[int]


@dataclass
class DetectorErrorModel:
    """A collection of independent error mechanisms plus decoding matrices."""

    num_detectors: int
    num_observables: int
    mechanisms: list[ErrorMechanism] = field(default_factory=list)

    @property
    def num_mechanisms(self) -> int:
        return len(self.mechanisms)

    @property
    def priors(self) -> np.ndarray:
        return np.array([m.probability for m in self.mechanisms], dtype=np.float64)

    @property
    def check_matrix(self) -> np.ndarray:
        """Detector-by-mechanism incidence matrix H (uint8)."""
        matrix = np.zeros((self.num_detectors, self.num_mechanisms), dtype=np.uint8)
        for column, mechanism in enumerate(self.mechanisms):
            for detector in mechanism.detectors:
                matrix[detector, column] = 1
        return matrix

    @property
    def observable_matrix(self) -> np.ndarray:
        """Observable-by-mechanism incidence matrix L (uint8)."""
        matrix = np.zeros((self.num_observables, self.num_mechanisms), dtype=np.uint8)
        for column, mechanism in enumerate(self.mechanisms):
            for observable in mechanism.observables:
                matrix[observable, column] = 1
        return matrix

    def is_graphlike(self) -> bool:
        """True when every mechanism flips at most two detectors."""
        return all(len(m.detectors) <= 2 for m in self.mechanisms)


def _mechanism_paulis(instruction) -> list[tuple[float, SparsePauli]]:
    """Decompose a noise instruction into (probability, Pauli) mechanisms."""
    name = instruction.name
    probability = instruction.probability
    mechanisms: list[tuple[float, SparsePauli]] = []
    if name in ("X_ERROR", "Z_ERROR", "Y_ERROR"):
        letter = name[0]
        for qubit in instruction.qubits:
            mechanisms.append((probability, SparsePauli.single(qubit, letter)))
    elif name == "DEPOLARIZE1":
        share = probability / 3.0
        for qubit in instruction.qubits:
            for letter in _ONE_QUBIT_PAULIS:
                mechanisms.append((share, SparsePauli.single(qubit, letter)))
    elif name == "DEPOLARIZE2":
        share = probability / 15.0
        pairs = list(zip(instruction.qubits[::2], instruction.qubits[1::2]))
        for first, second in pairs:
            for letter_a, letter_b in _TWO_QUBIT_PAULIS:
                mechanisms.append((share, _pair_pauli(first, second, letter_a, letter_b)))
    elif name == "PAULI_CHANNEL_1":
        for qubit in instruction.qubits:
            for letter, share in zip(_ONE_QUBIT_PAULIS, instruction.probabilities):
                mechanisms.append((share, SparsePauli.single(qubit, letter)))
    elif name == "PAULI_CHANNEL_2":
        pairs = list(zip(instruction.qubits[::2], instruction.qubits[1::2]))
        for first, second in pairs:
            for (letter_a, letter_b), share in zip(
                _TWO_QUBIT_PAULIS, instruction.probabilities
            ):
                mechanisms.append((share, _pair_pauli(first, second, letter_a, letter_b)))
    else:
        raise DemDecompositionError(
            f"noise instruction {name!r} has no first-order fault decomposition"
        )
    return mechanisms


def _pair_pauli(first: int, second: int, letter_a: str, letter_b: str) -> SparsePauli:
    """The two-qubit :class:`SparsePauli` ``letter_a ⊗ letter_b`` on ``(first, second)``."""
    pauli = SparsePauli()
    if letter_a != "I":
        pauli.multiply_by(first, *_letter_bits(letter_a))
    if letter_b != "I":
        pauli.multiply_by(second, *_letter_bits(letter_b))
    return pauli


def _letter_bits(letter: str) -> tuple[int, int]:
    return {"X": (1, 0), "Z": (0, 1), "Y": (1, 1)}[letter]


def build_detector_error_model(circuit: Circuit) -> DetectorErrorModel:
    """Extract the detector error model of ``circuit``.

    The circuit's detectors and observables are defined over absolute
    measurement indices; each noise channel is expanded into elementary
    Pauli mechanisms, propagated forward, mapped onto detector/observable
    flips and merged by symptom.
    """
    for instruction in circuit.instructions:
        if instruction.name not in _DECOMPOSABLE_NAMES:
            raise DemDecompositionError(
                f"instruction {instruction.name!r} cannot be decomposed into a "
                "detector error model: fault propagation only understands the "
                "stochastic-Pauli instruction set"
            )
    detector_members = circuit.detectors()
    observable_members = circuit.observables()
    num_detectors = len(detector_members)
    num_observables = circuit.num_observables

    measurement_to_detectors: dict[int, list[int]] = {}
    for detector_index, members in enumerate(detector_members):
        for measurement in members:
            measurement_to_detectors.setdefault(measurement, []).append(detector_index)
    measurement_to_observables: dict[int, list[int]] = {}
    for observable_index, members in observable_members.items():
        for measurement in members:
            measurement_to_observables.setdefault(measurement, []).append(
                observable_index
            )

    merged: dict[tuple[frozenset[int], frozenset[int]], float] = {}
    for position, instruction in enumerate(circuit.instructions):
        if not instruction.is_noise():
            continue
        for probability, pauli in _mechanism_paulis(instruction):
            if probability <= 0:
                continue
            flipped_measurements = propagate_fault(circuit, position, pauli)
            detectors: set[int] = set()
            observables: set[int] = set()
            for measurement in flipped_measurements:
                for detector in measurement_to_detectors.get(measurement, ()):
                    detectors.symmetric_difference_update({detector})
                for observable in measurement_to_observables.get(measurement, ()):
                    observables.symmetric_difference_update({observable})
            if not detectors and not observables:
                continue
            key = (frozenset(detectors), frozenset(observables))
            existing = merged.get(key, 0.0)
            merged[key] = existing * (1 - probability) + probability * (1 - existing)

    mechanisms = [
        ErrorMechanism(probability, detectors, observables)
        for (detectors, observables), probability in sorted(
            merged.items(), key=lambda item: (sorted(item[0][0]), sorted(item[0][1]))
        )
    ]
    return DetectorErrorModel(
        num_detectors=num_detectors,
        num_observables=num_observables,
        mechanisms=mechanisms,
    )
