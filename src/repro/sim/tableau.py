"""Aaronson–Gottesman stabilizer tableau simulator.

A reference Clifford simulator used for verification: it executes the
circuit IR exactly (including measurement randomness), which lets the test
suite confirm that

* detectors declared by the builders are deterministic under zero noise,
* syndrome circuits really measure the intended stabilizers, and
* the DEM-based sampler agrees with direct simulation when noise is
  injected as explicit Pauli gates.

The implementation follows the CHP construction: ``2n + 1`` rows of X/Z bit
matrices plus sign bits, the first ``n`` rows being destabilizers and the
next ``n`` rows stabilizers.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit, Instruction

__all__ = ["TableauSimulator", "simulate_circuit"]


class TableauSimulator:
    """Stabilizer-state simulator over ``num_qubits`` qubits (all start in |0>)."""

    def __init__(self, num_qubits: int, *, seed: int | None = None) -> None:
        self.num_qubits = num_qubits
        self.rng = np.random.default_rng(seed)
        size = 2 * num_qubits
        self.x_bits = np.zeros((size, num_qubits), dtype=np.uint8)
        self.z_bits = np.zeros((size, num_qubits), dtype=np.uint8)
        self.signs = np.zeros(size, dtype=np.uint8)
        for qubit in range(num_qubits):
            self.x_bits[qubit, qubit] = 1                # destabilizers X_i
            self.z_bits[num_qubits + qubit, qubit] = 1   # stabilizers Z_i
        self.measurement_record: list[int] = []

    # ------------------------------------------------------------------
    # Elementary gates
    # ------------------------------------------------------------------
    def hadamard(self, qubit: int) -> None:
        x_col = self.x_bits[:, qubit].copy()
        z_col = self.z_bits[:, qubit].copy()
        self.signs ^= x_col & z_col
        self.x_bits[:, qubit] = z_col
        self.z_bits[:, qubit] = x_col

    def phase(self, qubit: int) -> None:
        x_col = self.x_bits[:, qubit]
        z_col = self.z_bits[:, qubit]
        self.signs ^= x_col & z_col
        self.z_bits[:, qubit] = z_col ^ x_col

    def cnot(self, control: int, target: int) -> None:
        x_c = self.x_bits[:, control]
        z_c = self.z_bits[:, control]
        x_t = self.x_bits[:, target]
        z_t = self.z_bits[:, target]
        self.signs ^= x_c & z_t & (x_t ^ z_c ^ 1)
        self.x_bits[:, target] = x_t ^ x_c
        self.z_bits[:, control] = z_c ^ z_t

    def cz(self, control: int, target: int) -> None:
        self.hadamard(target)
        self.cnot(control, target)
        self.hadamard(target)

    def x_gate(self, qubit: int) -> None:
        self.signs ^= self.z_bits[:, qubit]

    def z_gate(self, qubit: int) -> None:
        self.signs ^= self.x_bits[:, qubit]

    def y_gate(self, qubit: int) -> None:
        self.x_gate(qubit)
        self.z_gate(qubit)

    def cpauli(self, control: int, target: int, pauli: str) -> None:
        if pauli == "X":
            self.cnot(control, target)
        elif pauli == "Z":
            self.cz(control, target)
        else:  # Y = S X S^dagger up to phase: use S_target^dag CX S_target
            self.phase(target)
            self.phase(target)
            self.phase(target)
            self.cnot(control, target)
            self.phase(target)

    def swap(self, first: int, second: int) -> None:
        self.cnot(first, second)
        self.cnot(second, first)
        self.cnot(first, second)

    # ------------------------------------------------------------------
    # Measurement and reset
    # ------------------------------------------------------------------
    def _row_multiply(self, target_row: int, source_row: int) -> None:
        """Multiply row ``target_row`` by row ``source_row`` (left multiplication)."""
        phase = 0
        for qubit in range(self.num_qubits):
            x1, z1 = self.x_bits[source_row, qubit], self.z_bits[source_row, qubit]
            x2, z2 = self.x_bits[target_row, qubit], self.z_bits[target_row, qubit]
            phase += _g(x1, z1, x2, z2)
        phase += 2 * (self.signs[source_row] + self.signs[target_row])
        self.signs[target_row] = (phase % 4) // 2
        self.x_bits[target_row] ^= self.x_bits[source_row]
        self.z_bits[target_row] ^= self.z_bits[source_row]

    def measure_z(self, qubit: int, *, forced: int | None = None) -> int:
        n = self.num_qubits
        stabilizer_rows = np.nonzero(self.x_bits[n:, qubit])[0]
        if stabilizer_rows.size:
            # Outcome is random.
            pivot = int(stabilizer_rows[0]) + n
            for row in range(2 * n):
                if row != pivot and self.x_bits[row, qubit]:
                    self._row_multiply(row, pivot)
            # The old stabilizer becomes the destabilizer.
            self.x_bits[pivot - n] = self.x_bits[pivot]
            self.z_bits[pivot - n] = self.z_bits[pivot]
            self.signs[pivot - n] = self.signs[pivot]
            self.x_bits[pivot] = 0
            self.z_bits[pivot] = 0
            self.z_bits[pivot, qubit] = 1
            outcome = int(self.rng.integers(0, 2)) if forced is None else forced
            self.signs[pivot] = outcome
            self.measurement_record.append(outcome)
            return outcome
        # Deterministic outcome: accumulate the product of stabilizers.
        scratch = 2 * n  # virtual scratch row index handled manually
        scratch_x = np.zeros(self.num_qubits, dtype=np.uint8)
        scratch_z = np.zeros(self.num_qubits, dtype=np.uint8)
        scratch_sign = 0
        for destab_row in range(n):
            if self.x_bits[destab_row, qubit]:
                stab_row = destab_row + n
                phase = 0
                for q in range(self.num_qubits):
                    phase += _g(
                        self.x_bits[stab_row, q],
                        self.z_bits[stab_row, q],
                        scratch_x[q],
                        scratch_z[q],
                    )
                phase += 2 * (self.signs[stab_row] + scratch_sign)
                scratch_sign = (phase % 4) // 2
                scratch_x ^= self.x_bits[stab_row]
                scratch_z ^= self.z_bits[stab_row]
        del scratch
        outcome = int(scratch_sign)
        self.measurement_record.append(outcome)
        return outcome

    def measure_x(self, qubit: int) -> int:
        self.hadamard(qubit)
        outcome = self.measure_z(qubit)
        self.hadamard(qubit)
        return outcome

    def reset_z(self, qubit: int) -> None:
        outcome = self.measure_z(qubit)
        self.measurement_record.pop()
        if outcome:
            self.x_gate(qubit)

    def reset_x(self, qubit: int) -> None:
        self.reset_z(qubit)
        self.hadamard(qubit)

    # ------------------------------------------------------------------
    # Circuit execution
    # ------------------------------------------------------------------
    def run_instruction(self, instruction: Instruction) -> None:
        name = instruction.name
        if name == "H":
            for qubit in instruction.qubits:
                self.hadamard(qubit)
        elif name == "S":
            for qubit in instruction.qubits:
                self.phase(qubit)
        elif name == "X":
            for qubit in instruction.qubits:
                self.x_gate(qubit)
        elif name == "Y":
            for qubit in instruction.qubits:
                self.y_gate(qubit)
        elif name == "Z":
            for qubit in instruction.qubits:
                self.z_gate(qubit)
        elif name == "CPAULI":
            self.cpauli(instruction.qubits[0], instruction.qubits[1], instruction.pauli)
        elif name == "SWAP":
            for first, second in zip(instruction.qubits[::2], instruction.qubits[1::2]):
                self.swap(first, second)
        elif name == "R":
            for qubit in instruction.qubits:
                self.reset_z(qubit)
        elif name == "RX":
            for qubit in instruction.qubits:
                self.reset_x(qubit)
        elif name == "M":
            for qubit in instruction.qubits:
                self.measure_z(qubit)
        elif name == "MX":
            for qubit in instruction.qubits:
                self.measure_x(qubit)
        elif name in ("X_ERROR", "Z_ERROR", "Y_ERROR"):
            gate = {"X": self.x_gate, "Z": self.z_gate, "Y": self.y_gate}[name[0]]
            for qubit in instruction.qubits:
                if self.rng.random() < instruction.probability:
                    gate(qubit)
        elif name == "DEPOLARIZE1":
            for qubit in instruction.qubits:
                if self.rng.random() < instruction.probability:
                    choice = self.rng.integers(0, 3)
                    (self.x_gate, self.y_gate, self.z_gate)[choice](qubit)
        elif name == "DEPOLARIZE2":
            pairs = list(zip(instruction.qubits[::2], instruction.qubits[1::2]))
            for first, second in pairs:
                if self.rng.random() < instruction.probability:
                    index = int(self.rng.integers(1, 16))
                    self._apply_two_qubit_pauli(first, second, index)
        elif name == "PAULI_CHANNEL_1":
            gates = (self.x_gate, self.y_gate, self.z_gate)
            for qubit in instruction.qubits:
                choice = self._sample_channel_index(instruction.probabilities)
                if choice is not None:
                    gates[choice](qubit)
        elif name == "PAULI_CHANNEL_2":
            pairs = list(zip(instruction.qubits[::2], instruction.qubits[1::2]))
            for first, second in pairs:
                choice = self._sample_channel_index(instruction.probabilities)
                if choice is not None:
                    # Probability tuples follow TWO_QUBIT_PAULIS order, which
                    # enumerates pair index 1..15 (II skipped).
                    self._apply_two_qubit_pauli(first, second, choice + 1)
        # TICK / DETECTOR / OBSERVABLE are annotations.

    def _sample_channel_index(self, probabilities) -> int | None:
        """Draw which (if any) Pauli of a general channel fires this shot."""
        draw = self.rng.random()
        cumulative = 0.0
        for index, probability in enumerate(probabilities):
            cumulative += probability
            if draw < cumulative:
                return index
        return None

    def _apply_two_qubit_pauli(self, first: int, second: int, index: int) -> None:
        first_letter = index // 4
        second_letter = index % 4
        gates = (None, self.x_gate, self.y_gate, self.z_gate)
        if gates[first_letter] is not None:
            gates[first_letter](first)
        if gates[second_letter] is not None:
            gates[second_letter](second)

    def run(self, circuit: Circuit) -> list[int]:
        """Execute the circuit; returns the measurement record (0/1 list)."""
        for instruction in circuit.instructions:
            self.run_instruction(instruction)
        return list(self.measurement_record)


def _g(x1: int, z1: int, x2: int, z2: int) -> int:
    """Aaronson–Gottesman phase function for row multiplication."""
    if x1 == 0 and z1 == 0:
        return 0
    if x1 == 1 and z1 == 1:
        return int(z2) - int(x2)
    if x1 == 1 and z1 == 0:
        return int(z2) * (2 * int(x2) - 1)
    return int(x2) * (1 - 2 * int(z2))


def simulate_circuit(
    circuit: Circuit, *, seed: int | None = None
) -> tuple[list[int], list[int], dict[int, int]]:
    """Run ``circuit`` once; return (measurements, detector values, observable values)."""
    simulator = TableauSimulator(circuit.num_qubits, seed=seed)
    measurements = simulator.run(circuit)
    detector_values = [
        int(sum(measurements[m] for m in members) % 2)
        for members in circuit.detectors()
    ]
    observable_values = {
        index: int(sum(measurements[m] for m in members) % 2)
        for index, members in circuit.observables().items()
    }
    return measurements, detector_values, observable_values
