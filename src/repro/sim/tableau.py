"""Aaronson–Gottesman stabilizer tableau simulator (bit-packed + dense).

A Clifford simulator used both as the verification reference and as the
circuit-level fallback sampler: it executes the circuit IR exactly
(including measurement randomness), which lets the test suite confirm that

* detectors declared by the builders are deterministic under zero noise,
* syndrome circuits really measure the intended stabilizers, and
* the DEM-based sampler agrees with direct simulation when noise is
  injected as explicit Pauli gates.

The implementation follows the CHP construction: ``2n`` rows of X/Z bit
matrices plus sign bits, the first ``n`` rows being destabilizers and the
next ``n`` rows stabilizers.  Two storage backends share one gate/measure/
RNG skeleton (:class:`_TableauBase`):

:class:`TableauSimulator`
    the default — X/Z matrices as little-endian packed ``uint64`` words
    (:mod:`repro.sim.bitops` layout), with rowsum phases computed by
    word-wide popcount masks (:func:`repro.sim.bitops.rowsum_g_exponents`)
    and gates as single-bit-column updates.  64 qubits advance per word
    operation in every row update.

:class:`DenseTableauSimulator`
    the conformance reference — plain ``(2n, n)`` uint8 matrices with the
    same vectorised row operations, kept for bit-identity regression tests
    (spec string ``"tableau:dense"``).

Both backends consume the *same* RNG stream in the same order (one
``integers(0, 2)`` draw per random measurement, plus the per-instruction
noise draws), so for equal seeds they produce identical measurement
records bit for bit — that equivalence is pinned by the conformance tests.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit, Instruction
from repro.sim.bitops import (
    WORD_BITS,
    get_bit_column,
    packed_words,
    rowsum_g_exponents,
    unpack_rows,
    xor_bit_column,
)

__all__ = [
    "TableauSimulator",
    "DenseTableauSimulator",
    "simulate_circuit",
]

_WORD_DTYPE = np.dtype("<u8")


class _TableauBase:
    """Shared gate algebra, measurement skeleton and RNG discipline.

    Subclasses provide the storage primitives (single-qubit/two-qubit gate
    column updates, ``_x_column``, the vectorised rowsum
    ``_multiply_rows_by`` and ``_deterministic_outcome``); everything else —
    gate composition, the measurement branches, and crucially the *order*
    in which ``self.rng`` is consumed — lives here once, so the packed and
    dense backends cannot drift apart.
    """

    def __init__(self, num_qubits: int, *, seed=None) -> None:
        self.num_qubits = num_qubits
        # ``default_rng`` passes an existing Generator through unchanged,
        # which is what lets a batch driver share one stream across shots.
        self.rng = np.random.default_rng(seed)
        self.signs = np.zeros(2 * num_qubits, dtype=np.uint8)
        self.measurement_record: list[int] = []

    # ------------------------------------------------------------------
    # Storage primitives (subclass responsibility)
    # ------------------------------------------------------------------
    def hadamard(self, qubit: int) -> None:
        raise NotImplementedError

    def phase(self, qubit: int) -> None:
        raise NotImplementedError

    def cnot(self, control: int, target: int) -> None:
        raise NotImplementedError

    def x_gate(self, qubit: int) -> None:
        raise NotImplementedError

    def z_gate(self, qubit: int) -> None:
        raise NotImplementedError

    def _x_column(self, qubit: int) -> np.ndarray:
        """The X bit of ``qubit`` in every tableau row (0/1 vector)."""
        raise NotImplementedError

    def _multiply_rows_by(self, rows: np.ndarray, pivot: int) -> None:
        """Left-multiply every row in ``rows`` by row ``pivot`` (CHP rowsum)."""
        raise NotImplementedError

    def _promote_pivot(self, pivot: int, qubit: int) -> None:
        """Move the pivot stabilizer to its destabilizer slot; set it to Z_qubit."""
        raise NotImplementedError

    def _deterministic_outcome(self, x_column: np.ndarray) -> int:
        """Sign of the stabilizer product fixing a deterministic measurement."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Composed gates
    # ------------------------------------------------------------------
    def cz(self, control: int, target: int) -> None:
        self.hadamard(target)
        self.cnot(control, target)
        self.hadamard(target)

    def y_gate(self, qubit: int) -> None:
        self.x_gate(qubit)
        self.z_gate(qubit)

    def cpauli(self, control: int, target: int, pauli: str) -> None:
        if pauli == "X":
            self.cnot(control, target)
        elif pauli == "Z":
            self.cz(control, target)
        else:  # Y = S X S^dagger up to phase: use S_target^dag CX S_target
            self.phase(target)
            self.phase(target)
            self.phase(target)
            self.cnot(control, target)
            self.phase(target)

    def swap(self, first: int, second: int) -> None:
        self.cnot(first, second)
        self.cnot(second, first)
        self.cnot(first, second)

    # ------------------------------------------------------------------
    # Measurement and reset
    # ------------------------------------------------------------------
    def measure_z(self, qubit: int, *, forced: int | None = None) -> int:
        n = self.num_qubits
        x_column = self._x_column(qubit)
        stabilizer_rows = np.nonzero(x_column[n:])[0]
        if stabilizer_rows.size:
            # Outcome is random: rowsum every other anticommuting row by the
            # pivot.  The updates are independent (the pivot row itself never
            # changes), so they happen as one vectorised gather.
            pivot = int(stabilizer_rows[0]) + n
            rows = np.nonzero(x_column)[0]
            rows = rows[rows != pivot]
            if rows.size:
                self._multiply_rows_by(rows, pivot)
            self._promote_pivot(pivot, qubit)
            outcome = int(self.rng.integers(0, 2)) if forced is None else forced
            self.signs[pivot] = outcome
            self.measurement_record.append(outcome)
            return outcome
        # Deterministic outcome: accumulate the product of stabilizers.
        outcome = self._deterministic_outcome(x_column)
        self.measurement_record.append(outcome)
        return outcome

    def measure_x(self, qubit: int) -> int:
        self.hadamard(qubit)
        outcome = self.measure_z(qubit)
        self.hadamard(qubit)
        return outcome

    def reset_z(self, qubit: int) -> None:
        outcome = self.measure_z(qubit)
        self.measurement_record.pop()
        if outcome:
            self.x_gate(qubit)

    def reset_x(self, qubit: int) -> None:
        self.reset_z(qubit)
        self.hadamard(qubit)

    # ------------------------------------------------------------------
    # Circuit execution
    # ------------------------------------------------------------------
    def run_instruction(self, instruction: Instruction) -> None:
        name = instruction.name
        if name == "H":
            for qubit in instruction.qubits:
                self.hadamard(qubit)
        elif name == "S":
            for qubit in instruction.qubits:
                self.phase(qubit)
        elif name == "X":
            for qubit in instruction.qubits:
                self.x_gate(qubit)
        elif name == "Y":
            for qubit in instruction.qubits:
                self.y_gate(qubit)
        elif name == "Z":
            for qubit in instruction.qubits:
                self.z_gate(qubit)
        elif name == "CPAULI":
            self.cpauli(instruction.qubits[0], instruction.qubits[1], instruction.pauli)
        elif name == "SWAP":
            for first, second in zip(instruction.qubits[::2], instruction.qubits[1::2]):
                self.swap(first, second)
        elif name == "R":
            for qubit in instruction.qubits:
                self.reset_z(qubit)
        elif name == "RX":
            for qubit in instruction.qubits:
                self.reset_x(qubit)
        elif name == "M":
            for qubit in instruction.qubits:
                self.measure_z(qubit)
        elif name == "MX":
            for qubit in instruction.qubits:
                self.measure_x(qubit)
        elif name in ("X_ERROR", "Z_ERROR", "Y_ERROR"):
            gate = {"X": self.x_gate, "Z": self.z_gate, "Y": self.y_gate}[name[0]]
            for qubit in instruction.qubits:
                if self.rng.random() < instruction.probability:
                    gate(qubit)
        elif name == "DEPOLARIZE1":
            for qubit in instruction.qubits:
                if self.rng.random() < instruction.probability:
                    choice = self.rng.integers(0, 3)
                    (self.x_gate, self.y_gate, self.z_gate)[choice](qubit)
        elif name == "DEPOLARIZE2":
            pairs = list(zip(instruction.qubits[::2], instruction.qubits[1::2]))
            for first, second in pairs:
                if self.rng.random() < instruction.probability:
                    index = int(self.rng.integers(1, 16))
                    self._apply_two_qubit_pauli(first, second, index)
        elif name == "PAULI_CHANNEL_1":
            gates = (self.x_gate, self.y_gate, self.z_gate)
            for qubit in instruction.qubits:
                choice = self._sample_channel_index(instruction.probabilities)
                if choice is not None:
                    gates[choice](qubit)
        elif name == "PAULI_CHANNEL_2":
            pairs = list(zip(instruction.qubits[::2], instruction.qubits[1::2]))
            for first, second in pairs:
                choice = self._sample_channel_index(instruction.probabilities)
                if choice is not None:
                    # Probability tuples follow TWO_QUBIT_PAULIS order, which
                    # enumerates pair index 1..15 (II skipped).
                    self._apply_two_qubit_pauli(first, second, choice + 1)
        # TICK / DETECTOR / OBSERVABLE are annotations.

    def _sample_channel_index(self, probabilities) -> int | None:
        """Draw which (if any) Pauli of a general channel fires this shot."""
        draw = self.rng.random()
        cumulative = 0.0
        for index, probability in enumerate(probabilities):
            cumulative += probability
            if draw < cumulative:
                return index
        return None

    def _apply_two_qubit_pauli(self, first: int, second: int, index: int) -> None:
        first_letter = index // 4
        second_letter = index % 4
        gates = (None, self.x_gate, self.y_gate, self.z_gate)
        if gates[first_letter] is not None:
            gates[first_letter](first)
        if gates[second_letter] is not None:
            gates[second_letter](second)

    def run(self, circuit: Circuit) -> list[int]:
        """Execute the circuit; returns the measurement record (0/1 list)."""
        for instruction in circuit.instructions:
            self.run_instruction(instruction)
        return list(self.measurement_record)


class TableauSimulator(_TableauBase):
    """Bit-packed stabilizer simulator over ``num_qubits`` qubits (all |0>).

    X/Z matrices are ``(2n, words)`` little-endian ``uint64`` arrays in the
    :mod:`repro.sim.bitops` layout; rowsum phases come from the popcount
    masks of :func:`repro.sim.bitops.rowsum_g_exponents`, so every row
    update touches 64 qubits per word operation.
    """

    def __init__(self, num_qubits: int, *, seed=None) -> None:
        super().__init__(num_qubits, seed=seed)
        self.num_words = packed_words(num_qubits)
        size = 2 * num_qubits
        self.x_words = np.zeros((size, self.num_words), dtype=_WORD_DTYPE)
        self.z_words = np.zeros((size, self.num_words), dtype=_WORD_DTYPE)
        one = np.uint64(1)
        for qubit in range(num_qubits):
            word, bit = divmod(qubit, WORD_BITS)
            self.x_words[qubit, word] |= one << np.uint64(bit)               # destabilizers X_i
            self.z_words[num_qubits + qubit, word] |= one << np.uint64(bit)  # stabilizers Z_i

    # Unpacked views, for conformance tests and debugging.
    @property
    def x_bits(self) -> np.ndarray:
        return unpack_rows(self.x_words, self.num_qubits)

    @property
    def z_bits(self) -> np.ndarray:
        return unpack_rows(self.z_words, self.num_qubits)

    # ------------------------------------------------------------------
    # Elementary gates (single bit-column updates)
    # ------------------------------------------------------------------
    def hadamard(self, qubit: int) -> None:
        x_col = get_bit_column(self.x_words, qubit)
        z_col = get_bit_column(self.z_words, qubit)
        self.signs ^= x_col & z_col
        swap_mask = x_col ^ z_col
        xor_bit_column(self.x_words, qubit, swap_mask)
        xor_bit_column(self.z_words, qubit, swap_mask)

    def phase(self, qubit: int) -> None:
        x_col = get_bit_column(self.x_words, qubit)
        z_col = get_bit_column(self.z_words, qubit)
        self.signs ^= x_col & z_col
        xor_bit_column(self.z_words, qubit, x_col)

    def cnot(self, control: int, target: int) -> None:
        x_c = get_bit_column(self.x_words, control)
        z_c = get_bit_column(self.z_words, control)
        x_t = get_bit_column(self.x_words, target)
        z_t = get_bit_column(self.z_words, target)
        self.signs ^= x_c & z_t & (x_t ^ z_c ^ 1)
        xor_bit_column(self.x_words, target, x_c)
        xor_bit_column(self.z_words, control, z_t)

    def x_gate(self, qubit: int) -> None:
        self.signs ^= get_bit_column(self.z_words, qubit)

    def z_gate(self, qubit: int) -> None:
        self.signs ^= get_bit_column(self.x_words, qubit)

    # ------------------------------------------------------------------
    # Measurement storage primitives
    # ------------------------------------------------------------------
    def _x_column(self, qubit: int) -> np.ndarray:
        return get_bit_column(self.x_words, qubit)

    def _multiply_rows_by(self, rows: np.ndarray, pivot: int) -> None:
        g_sum = rowsum_g_exponents(
            self.x_words[pivot], self.z_words[pivot],
            self.x_words[rows], self.z_words[rows],
        )
        exponent = g_sum + 2 * (int(self.signs[pivot]) + self.signs[rows].astype(np.int64))
        self.signs[rows] = ((exponent % 4) // 2).astype(np.uint8)
        self.x_words[rows] ^= self.x_words[pivot]
        self.z_words[rows] ^= self.z_words[pivot]

    def _promote_pivot(self, pivot: int, qubit: int) -> None:
        n = self.num_qubits
        self.x_words[pivot - n] = self.x_words[pivot]
        self.z_words[pivot - n] = self.z_words[pivot]
        self.signs[pivot - n] = self.signs[pivot]
        self.x_words[pivot] = 0
        self.z_words[pivot] = 0
        word, bit = divmod(qubit, WORD_BITS)
        self.z_words[pivot, word] = np.uint64(1) << np.uint64(bit)

    def _deterministic_outcome(self, x_column: np.ndarray) -> int:
        n = self.num_qubits
        scratch_x = np.zeros(self.num_words, dtype=_WORD_DTYPE)
        scratch_z = np.zeros(self.num_words, dtype=_WORD_DTYPE)
        sign = 0
        # Sequential by construction: each rowsum's phase depends on the
        # scratch row accumulated so far.  Each step is still one word-wide
        # kernel call rather than a per-qubit Python loop.
        for destab_row in np.nonzero(x_column[:n])[0]:
            stab_row = int(destab_row) + n
            g_sum = int(
                rowsum_g_exponents(
                    self.x_words[stab_row], self.z_words[stab_row], scratch_x, scratch_z
                )
            )
            sign = ((g_sum + 2 * (int(self.signs[stab_row]) + sign)) % 4) // 2
            scratch_x ^= self.x_words[stab_row]
            scratch_z ^= self.z_words[stab_row]
        return int(sign)


class DenseTableauSimulator(_TableauBase):
    """Dense uint8 reference backend (spec string ``"tableau:dense"``).

    Same row-operation algebra as :class:`TableauSimulator` on plain
    ``(2n, n)`` bit matrices; kept as the conformance baseline the packed
    backend is regression-tested against.
    """

    def __init__(self, num_qubits: int, *, seed=None) -> None:
        super().__init__(num_qubits, seed=seed)
        size = 2 * num_qubits
        self.x_bits = np.zeros((size, num_qubits), dtype=np.uint8)
        self.z_bits = np.zeros((size, num_qubits), dtype=np.uint8)
        for qubit in range(num_qubits):
            self.x_bits[qubit, qubit] = 1                # destabilizers X_i
            self.z_bits[num_qubits + qubit, qubit] = 1   # stabilizers Z_i

    # ------------------------------------------------------------------
    # Elementary gates
    # ------------------------------------------------------------------
    def hadamard(self, qubit: int) -> None:
        x_col = self.x_bits[:, qubit].copy()
        z_col = self.z_bits[:, qubit].copy()
        self.signs ^= x_col & z_col
        self.x_bits[:, qubit] = z_col
        self.z_bits[:, qubit] = x_col

    def phase(self, qubit: int) -> None:
        x_col = self.x_bits[:, qubit]
        z_col = self.z_bits[:, qubit]
        self.signs ^= x_col & z_col
        self.z_bits[:, qubit] = z_col ^ x_col

    def cnot(self, control: int, target: int) -> None:
        x_c = self.x_bits[:, control]
        z_c = self.z_bits[:, control]
        x_t = self.x_bits[:, target]
        z_t = self.z_bits[:, target]
        self.signs ^= x_c & z_t & (x_t ^ z_c ^ 1)
        self.x_bits[:, target] = x_t ^ x_c
        self.z_bits[:, control] = z_c ^ z_t

    def x_gate(self, qubit: int) -> None:
        self.signs ^= self.z_bits[:, qubit]

    def z_gate(self, qubit: int) -> None:
        self.signs ^= self.x_bits[:, qubit]

    # ------------------------------------------------------------------
    # Measurement storage primitives
    # ------------------------------------------------------------------
    def _x_column(self, qubit: int) -> np.ndarray:
        return self.x_bits[:, qubit]

    def _g_sums(self, source_row: int, target_x, target_z) -> np.ndarray:
        """Vectorised ``sum_q g(source, target)`` over one or many target rows."""
        x1 = self.x_bits[source_row].astype(np.int64)
        z1 = self.z_bits[source_row].astype(np.int64)
        x2 = np.asarray(target_x, dtype=np.int64)
        z2 = np.asarray(target_z, dtype=np.int64)
        g = (
            x1 * z1 * (z2 - x2)
            + x1 * (1 - z1) * z2 * (2 * x2 - 1)
            + (1 - x1) * z1 * x2 * (1 - 2 * z2)
        )
        return g.sum(axis=-1)

    def _multiply_rows_by(self, rows: np.ndarray, pivot: int) -> None:
        g_sum = self._g_sums(pivot, self.x_bits[rows], self.z_bits[rows])
        exponent = g_sum + 2 * (int(self.signs[pivot]) + self.signs[rows].astype(np.int64))
        self.signs[rows] = ((exponent % 4) // 2).astype(np.uint8)
        self.x_bits[rows] ^= self.x_bits[pivot]
        self.z_bits[rows] ^= self.z_bits[pivot]

    def _promote_pivot(self, pivot: int, qubit: int) -> None:
        n = self.num_qubits
        self.x_bits[pivot - n] = self.x_bits[pivot]
        self.z_bits[pivot - n] = self.z_bits[pivot]
        self.signs[pivot - n] = self.signs[pivot]
        self.x_bits[pivot] = 0
        self.z_bits[pivot] = 0
        self.z_bits[pivot, qubit] = 1

    def _deterministic_outcome(self, x_column: np.ndarray) -> int:
        n = self.num_qubits
        scratch_x = np.zeros(n, dtype=np.uint8)
        scratch_z = np.zeros(n, dtype=np.uint8)
        sign = 0
        for destab_row in np.nonzero(x_column[:n])[0]:
            stab_row = int(destab_row) + n
            g_sum = int(self._g_sums(stab_row, scratch_x, scratch_z))
            sign = ((g_sum + 2 * (int(self.signs[stab_row]) + sign)) % 4) // 2
            scratch_x ^= self.x_bits[stab_row]
            scratch_z ^= self.z_bits[stab_row]
        return int(sign)


#: Storage backends by spec mode string.
_SIMULATOR_MODES = {
    "packed": TableauSimulator,
    "dense": DenseTableauSimulator,
}


def simulate_circuit(
    circuit: Circuit, *, seed=None, mode: str = "packed"
) -> tuple[list[int], list[int], dict[int, int]]:
    """Run ``circuit`` once; return (measurements, detector values, observable values).

    ``mode`` selects the storage backend (``"packed"`` default,
    ``"dense"`` reference); both produce identical output for equal seeds.
    """
    try:
        simulator_class = _SIMULATOR_MODES[mode]
    except KeyError:
        raise ValueError(
            f"unknown tableau mode {mode!r}; expected one of {sorted(_SIMULATOR_MODES)}"
        ) from None
    simulator = simulator_class(circuit.num_qubits, seed=seed)
    measurements = simulator.run(circuit)
    detector_values = [
        int(sum(measurements[m] for m in members) % 2)
        for members in circuit.detectors()
    ]
    observable_values = {
        index: int(sum(measurements[m] for m in members) % 2)
        for index, members in circuit.observables().items()
    }
    return measurements, detector_values, observable_values
