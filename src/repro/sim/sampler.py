"""Vectorised sampling of detector error models.

Because every fault mechanism of a :class:`DetectorErrorModel` is an
independent Bernoulli variable, sampling a memory experiment reduces to a
binary matrix multiplication: draw the fault vector for every shot, then
XOR together the detector/observable signatures of the triggered faults.
This is mathematically identical to frame-simulating the Clifford circuit
with Pauli noise (what stim does), but needs only numpy.

Two backends compute that XOR:

``"packed"`` (the default)
    Fault draws are bit-packed along the *shot* axis into ``uint64`` words
    (:mod:`repro.sim.bitops`), and each detector/observable row is one
    XOR-reduce over the packed rows of the mechanisms that flip it — 64
    shots per word operation, no multiplies, no ``(shots, mechanisms)``
    ``int64`` temporaries.

``"dense"``
    The original ``int64`` matmul-mod-2, kept as the bit-identical
    reference the packed backend is benchmarked and tested against.

Both backends consume the random stream identically (one
``rng.random((shots, mechanisms))`` draw), so for a fixed seed they produce
bit-identical :class:`SampleBatch` contents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.bitops import pack_rows, unpack_rows, xor_reduce_rows
from repro.sim.dem import DetectorErrorModel

__all__ = ["SampleBatch", "DemSampler", "sample_detector_error_model"]


@dataclass
class SampleBatch:
    """Sampled detector and observable flips.

    ``detectors`` has shape ``(shots, num_detectors)``; ``observables`` has
    shape ``(shots, num_observables)``; both are uint8 arrays of 0/1 values.
    ``faults`` (shots x num_mechanisms) is retained for tests and ablations.
    ``packed_detectors`` is the bit-packed form of ``detectors`` (shape
    ``(shots, ceil(num_detectors / 64))``, little-endian ``uint64`` words as
    produced by :func:`repro.sim.bitops.pack_rows`).  Every decoder's batch
    front end now consumes it directly — ``decode_batch_packed``
    deduplicates repeated syndromes on the packed words and unpacks only
    the unique rows — so the packed form is the primary hand-off from
    sampler to decoder, not a fast-path extra.  It is ``None`` only when
    the batch came from the dense reference backend.
    """

    detectors: np.ndarray
    observables: np.ndarray
    faults: np.ndarray
    packed_detectors: np.ndarray | None = None

    @property
    def num_shots(self) -> int:
        return int(self.detectors.shape[0])


class DemSampler:
    """DEM-backed sampler on the common sampler interface (spec ``"dem"``).

    The default sampler backend: wraps :func:`sample_detector_error_model`
    over a prebuilt :class:`DetectorErrorModel`, so its batches are
    bit-identical to the historical direct calls for equal seeds.  The
    ``circuit`` argument is part of the shared factory signature
    ``factory(circuit, dem)`` and is unused here.
    """

    def __init__(self, circuit=None, dem: DetectorErrorModel | None = None, backend: str = "packed") -> None:
        if dem is None:
            raise ValueError("DemSampler requires a detector error model")
        if backend not in ("packed", "dense"):
            raise ValueError(f"backend must be 'packed' or 'dense', got {backend!r}")
        self.dem = dem
        self.backend = backend

    def sample(
        self, shots: int, *, seed: "int | np.random.SeedSequence | None" = None
    ) -> SampleBatch:
        return sample_detector_error_model(
            self.dem, shots, seed=seed, backend=self.backend
        )


def _signature_groups(dem: DetectorErrorModel) -> tuple[list[list[int]], list[list[int]]]:
    """Mechanism column indices per detector row / observable row.

    This is the sparse, transposed view of ``dem.check_matrix`` /
    ``dem.observable_matrix`` the XOR backend reduces over.
    """
    detector_groups: list[list[int]] = [[] for _ in range(dem.num_detectors)]
    observable_groups: list[list[int]] = [[] for _ in range(dem.num_observables)]
    for column, mechanism in enumerate(dem.mechanisms):
        for detector in mechanism.detectors:
            detector_groups[detector].append(column)
        for observable in mechanism.observables:
            observable_groups[observable].append(column)
    return detector_groups, observable_groups


def _sample_packed(dem: DetectorErrorModel, shots: int, faults: np.ndarray) -> SampleBatch:
    """XOR/popcount word-ops backend: faults bit-packed along the shot axis."""
    packed_faults = pack_rows(faults.T)  # (mechanisms, shot_words)
    detector_groups, observable_groups = _signature_groups(dem)
    detectors_by_row = xor_reduce_rows(packed_faults, detector_groups)
    observables_by_row = xor_reduce_rows(packed_faults, observable_groups)
    detectors = np.ascontiguousarray(unpack_rows(detectors_by_row, shots).T)
    observables = np.ascontiguousarray(unpack_rows(observables_by_row, shots).T)
    return SampleBatch(
        detectors=detectors,
        observables=observables,
        faults=faults.view(np.uint8),
        packed_detectors=pack_rows(detectors),
    )


def _sample_dense(dem: DetectorErrorModel, shots: int, faults: np.ndarray) -> SampleBatch:
    """Reference dense ``int64`` matmul backend (bit-identical to packed)."""
    check = dem.check_matrix
    observable = dem.observable_matrix
    wide = faults.astype(np.int64)
    detectors = (wide @ check.T.astype(np.int64)) % 2
    observables = (wide @ observable.T.astype(np.int64)) % 2
    return SampleBatch(
        detectors=detectors.astype(np.uint8),
        observables=observables.astype(np.uint8),
        faults=faults.view(np.uint8),
    )


def sample_detector_error_model(
    dem: DetectorErrorModel,
    shots: int,
    *,
    seed: "int | np.random.SeedSequence | None" = None,
    backend: str = "packed",
) -> SampleBatch:
    """Draw ``shots`` independent samples from the DEM.

    ``seed`` may be an integer, ``None`` (fresh OS entropy), or a
    :class:`numpy.random.SeedSequence` stream derived with
    :mod:`repro.seeding` — the latter is what the estimator and the
    ``repro.api`` pipeline pass so that every stage draws from an
    independent stream.

    ``backend`` selects the XOR/popcount bit-packed path (``"packed"``, the
    default) or the dense ``int64`` matmul reference (``"dense"``).  The two
    are bit-identical for the same seed; only speed differs.
    """
    if backend not in ("packed", "dense"):
        raise ValueError(f"backend must be 'packed' or 'dense', got {backend!r}")
    rng = np.random.default_rng(seed)
    priors = dem.priors
    if dem.num_mechanisms == 0:
        detectors = np.zeros((shots, dem.num_detectors), dtype=np.uint8)
        return SampleBatch(
            detectors=detectors,
            observables=np.zeros((shots, dem.num_observables), dtype=np.uint8),
            faults=np.zeros((shots, 0), dtype=np.uint8),
            packed_detectors=pack_rows(detectors) if backend == "packed" else None,
        )
    faults = rng.random((shots, dem.num_mechanisms)) < priors
    if backend == "dense":
        return _sample_dense(dem, shots, faults)
    return _sample_packed(dem, shots, faults)
