"""Vectorised sampling of detector error models.

Because every fault mechanism of a :class:`DetectorErrorModel` is an
independent Bernoulli variable, sampling a memory experiment reduces to a
binary matrix multiplication: draw the fault vector for every shot, then
XOR together the detector/observable signatures of the triggered faults.
This is mathematically identical to frame-simulating the Clifford circuit
with Pauli noise (what stim does), but needs only numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.dem import DetectorErrorModel

__all__ = ["SampleBatch", "sample_detector_error_model"]


@dataclass
class SampleBatch:
    """Sampled detector and observable flips.

    ``detectors`` has shape ``(shots, num_detectors)``; ``observables`` has
    shape ``(shots, num_observables)``; both are uint8 arrays of 0/1 values.
    ``faults`` (shots x num_mechanisms) is retained for tests and ablations.
    """

    detectors: np.ndarray
    observables: np.ndarray
    faults: np.ndarray

    @property
    def num_shots(self) -> int:
        return int(self.detectors.shape[0])


def sample_detector_error_model(
    dem: DetectorErrorModel,
    shots: int,
    *,
    seed: "int | np.random.SeedSequence | None" = None,
) -> SampleBatch:
    """Draw ``shots`` independent samples from the DEM.

    ``seed`` may be an integer, ``None`` (fresh OS entropy), or a
    :class:`numpy.random.SeedSequence` stream derived with
    :mod:`repro.seeding` — the latter is what the estimator and the
    ``repro.api`` pipeline pass so that every stage draws from an
    independent stream.
    """
    rng = np.random.default_rng(seed)
    priors = dem.priors
    if dem.num_mechanisms == 0:
        return SampleBatch(
            detectors=np.zeros((shots, dem.num_detectors), dtype=np.uint8),
            observables=np.zeros((shots, dem.num_observables), dtype=np.uint8),
            faults=np.zeros((shots, 0), dtype=np.uint8),
        )
    faults = (rng.random((shots, dem.num_mechanisms)) < priors).astype(np.uint8)
    check = dem.check_matrix
    observable = dem.observable_matrix
    detectors = (faults.astype(np.int64) @ check.T.astype(np.int64)) % 2
    observables = (faults.astype(np.int64) @ observable.T.astype(np.int64)) % 2
    return SampleBatch(
        detectors=detectors.astype(np.uint8),
        observables=observables.astype(np.uint8),
        faults=faults,
    )
