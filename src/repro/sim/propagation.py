"""Forward propagation of Pauli faults through Clifford circuits.

The detector-error-model extraction injects a single Pauli fault after a
given instruction and asks which later measurements flip.  For stochastic
Pauli noise on Clifford circuits this is exact and is the same machinery a
frame simulator uses.  Signs are irrelevant for flip analysis, so the
tracker stores only the X/Z bit of each touched qubit (sparsely).
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit, Instruction

__all__ = ["SparsePauli", "propagate_fault", "measurement_flips"]


class SparsePauli:
    """A Pauli operator stored as ``{qubit: (x_bit, z_bit)}`` (no sign)."""

    __slots__ = ("components",)

    def __init__(self, components: dict[int, tuple[int, int]] | None = None) -> None:
        self.components: dict[int, tuple[int, int]] = dict(components or {})

    @classmethod
    def single(cls, qubit: int, letter: str) -> "SparsePauli":
        bits = {"X": (1, 0), "Z": (0, 1), "Y": (1, 1)}[letter]
        return cls({qubit: bits})

    def get(self, qubit: int) -> tuple[int, int]:
        return self.components.get(qubit, (0, 0))

    def set(self, qubit: int, x_bit: int, z_bit: int) -> None:
        if x_bit == 0 and z_bit == 0:
            self.components.pop(qubit, None)
        else:
            self.components[qubit] = (x_bit, z_bit)

    def multiply_by(self, qubit: int, x_bit: int, z_bit: int) -> None:
        """XOR-in a Pauli on ``qubit`` (sign discarded)."""
        current_x, current_z = self.get(qubit)
        self.set(qubit, current_x ^ x_bit, current_z ^ z_bit)

    def is_identity(self) -> bool:
        return not self.components

    def copy(self) -> "SparsePauli":
        return SparsePauli(self.components)


_LETTER_BITS = {"X": (1, 0), "Z": (0, 1), "Y": (1, 1)}


def _apply_instruction(pauli: SparsePauli, instruction: Instruction) -> int | None:
    """Conjugate ``pauli`` through ``instruction`` in place.

    Returns the number of measurement results produced by the instruction
    (0 for non-measurements) so the caller can keep a running measurement
    index; flip detection is done separately in :func:`propagate_fault`.
    """
    name = instruction.name
    if name == "H":
        for qubit in instruction.qubits:
            x_bit, z_bit = pauli.get(qubit)
            if x_bit or z_bit:
                pauli.set(qubit, z_bit, x_bit)
    elif name == "S":
        for qubit in instruction.qubits:
            x_bit, z_bit = pauli.get(qubit)
            if x_bit:
                pauli.set(qubit, x_bit, z_bit ^ 1)
    elif name == "CPAULI":
        control, target = instruction.qubits
        target_x, target_z = _LETTER_BITS[instruction.pauli]
        control_bits = pauli.get(control)
        target_bits = pauli.get(target)
        # X (or Y) on the control propagates the check Pauli onto the target.
        if control_bits[0]:
            pauli.multiply_by(target, target_x, target_z)
        # A target Pauli anticommuting with the check Pauli propagates Z onto
        # the control (phase kickback of the controlled-Pauli).
        anticommutes = (target_bits[0] * target_z + target_bits[1] * target_x) % 2
        if anticommutes:
            pauli.multiply_by(control, 0, 1)
    elif name == "SWAP":
        for first, second in zip(instruction.qubits[::2], instruction.qubits[1::2]):
            first_bits = pauli.get(first)
            second_bits = pauli.get(second)
            pauli.set(first, *second_bits)
            pauli.set(second, *first_bits)
    elif name in ("R", "RX"):
        for qubit in instruction.qubits:
            pauli.set(qubit, 0, 0)
    elif name in ("M", "MX"):
        return len(instruction.qubits)
    # Pauli gates (X/Y/Z), noise channels and annotations commute with the
    # tracked frame up to sign and are ignored.
    return 0


def propagate_fault(
    circuit: Circuit,
    start_index: int,
    initial: SparsePauli,
) -> set[int]:
    """Propagate a fault injected *after* instruction ``start_index``.

    Returns the set of measurement-record indices whose outcome the fault
    flips.
    """
    pauli = initial.copy()
    flipped: set[int] = set()
    measurement_index = 0
    for position, instruction in enumerate(circuit.instructions):
        if instruction.name in ("M", "MX"):
            if position <= start_index:
                measurement_index += len(instruction.qubits)
                continue
            for qubit in instruction.qubits:
                x_bit, z_bit = pauli.get(qubit)
                anticommutes = x_bit if instruction.name == "M" else z_bit
                if anticommutes:
                    flipped.add(measurement_index)
                measurement_index += 1
            continue
        if position <= start_index:
            continue
        _apply_instruction(pauli, instruction)
    return flipped


def measurement_flips(
    circuit: Circuit, start_index: int, qubit: int, letter: str
) -> set[int]:
    """Convenience wrapper: flips caused by a single-qubit fault."""
    return propagate_fault(circuit, start_index, SparsePauli.single(qubit, letter))
