"""Stabilizer partitioning (Algorithm 1 of the paper).

Stabilizers whose Pauli checks anticommute on a shared data qubit cannot be
scheduled with unrestricted interleaving; Algorithm 1 groups stabilizers into
partitions such that, within a partition, any two stabilizers either do not
overlap or apply the *same* Pauli letter on every shared data qubit.  Checks
within a partition therefore commute freely and the search space inside a
partition is unconstrained; partitions are scheduled one after another and
their circuits concatenated.

For CSS codes the partition is simply {X-type stabilizers}, {Z-type
stabilizers}; for codes with mixed stabilizers (e.g. the XZZX surface code)
the grouping is non-trivial.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

import networkx as nx

from repro.codes.base import StabilizerCode

__all__ = [
    "partition_stabilizers",
    "partition_stabilizers_algorithm1",
    "compatible_stabilizers",
    "validate_partition",
]


def compatible_stabilizers(
    code: StabilizerCode, first: int, second: int
) -> bool:
    """Return True if two stabilizers may share a scheduling partition.

    They are compatible when, on every shared data qubit, they apply the
    same Pauli letter (so all of their partial checks commute).
    """
    first_checks = dict(code.checks()[first])
    second_checks = dict(code.checks()[second])
    for qubit, letter in first_checks.items():
        other = second_checks.get(qubit)
        if other is not None and other != letter:
            return False
    return True


def partition_stabilizers(code: StabilizerCode) -> list[list[int]]:
    """Partition stabilizer indices into compatible groups.

    The grouping problem is a graph colouring of the *incompatibility graph*
    (stabilizers joined when they anticommute on a shared data qubit); this
    implementation uses a deterministic greedy colouring (largest degree
    first), which recovers the natural two-partition split {X stabilizers},
    {Z stabilizers} for CSS codes and keeps the number of sequential blocks
    small for mixed-stabilizer codes.  The paper's randomised Algorithm 1 is
    available as :func:`partition_stabilizers_algorithm1`.
    """
    # CSS codes always admit the natural two-block split; returning it
    # directly keeps the partition count minimal regardless of the greedy
    # colouring order below (which is only needed for mixed stabilizers).
    x_block: list[int] = []
    z_block: list[int] = []
    is_css = True
    for index, stabilizer in enumerate(code.stabilizers):
        letters = {stabilizer.pauli_at(q) for q in stabilizer.support}
        if letters == {"X"}:
            x_block.append(index)
        elif letters == {"Z"}:
            z_block.append(index)
        else:
            is_css = False
            break
    if is_css:
        return [block for block in (x_block, z_block) if block]

    graph = nx.Graph()
    graph.add_nodes_from(range(code.num_stabilizers))
    for first in range(code.num_stabilizers):
        for second in range(first + 1, code.num_stabilizers):
            if not compatible_stabilizers(code, first, second):
                graph.add_edge(first, second)
    best: dict[int, int] | None = None
    for strategy in ("connected_sequential_bfs", "largest_first", "smallest_last"):
        colouring = nx.coloring.greedy_color(graph, strategy=strategy)
        if best is None or max(colouring.values(), default=0) < max(best.values(), default=0):
            best = colouring
    partitions: dict[int, list[int]] = {}
    for stabilizer, colour in best.items():
        partitions.setdefault(colour, []).append(stabilizer)
    return [sorted(partitions[colour]) for colour in sorted(partitions)]


def partition_stabilizers_algorithm1(
    code: StabilizerCode, *, rng: random.Random | None = None
) -> list[list[int]]:
    """The paper's randomised greedy partition (Algorithm 1).

    Repeatedly seed a partition with a random remaining stabilizer and
    greedily add every remaining stabilizer compatible with all current
    members.  May produce more partitions than
    :func:`partition_stabilizers`.
    """
    rng = rng or random.Random(0)
    remaining = list(range(code.num_stabilizers))
    partitions: list[list[int]] = []
    while remaining:
        seed_position = rng.randrange(len(remaining))
        seed = remaining.pop(seed_position)
        partition = [seed]
        still_remaining: list[int] = []
        for candidate in remaining:
            if all(compatible_stabilizers(code, candidate, member) for member in partition):
                partition.append(candidate)
            else:
                still_remaining.append(candidate)
        remaining = still_remaining
        partitions.append(sorted(partition))
    return partitions


def validate_partition(code: StabilizerCode, partitions: Sequence[Sequence[int]]) -> None:
    """Raise ``ValueError`` if ``partitions`` is not a valid grouping."""
    seen: set[int] = set()
    for partition in partitions:
        for stabilizer in partition:
            if stabilizer in seen:
                raise ValueError(f"stabilizer {stabilizer} appears in two partitions")
            seen.add(stabilizer)
        for position, first in enumerate(partition):
            for second in partition[position + 1 :]:
                if not compatible_stabilizers(code, first, second):
                    raise ValueError(
                        f"stabilizers {first} and {second} are incompatible but share a partition"
                    )
    if seen != set(range(code.num_stabilizers)):
        raise ValueError("partitions do not cover all stabilizers")
