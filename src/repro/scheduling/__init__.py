"""Syndrome-measurement schedule representation, baselines and hand-crafted orders."""

from repro.scheduling.baselines import (
    lowest_depth_schedule,
    random_order_schedule,
    schedule_from_orders,
    trivial_schedule,
)
from repro.scheduling.handcrafted import (
    anticlockwise_surface_schedule,
    clockwise_surface_schedule,
    google_surface_schedule,
    ibm_bb_schedule,
)
from repro.scheduling.partition import (
    compatible_stabilizers,
    partition_stabilizers,
    validate_partition,
)
from repro.scheduling.schedule import PauliCheck, Schedule, ScheduleError, checks_of_code

__all__ = [
    "PauliCheck",
    "Schedule",
    "ScheduleError",
    "checks_of_code",
    "partition_stabilizers",
    "compatible_stabilizers",
    "validate_partition",
    "trivial_schedule",
    "lowest_depth_schedule",
    "random_order_schedule",
    "schedule_from_orders",
    "google_surface_schedule",
    "clockwise_surface_schedule",
    "anticlockwise_surface_schedule",
    "ibm_bb_schedule",
]
