"""Schedule representation for syndrome-measurement circuits.

A :class:`Schedule` assigns a *tick* (a positive integer time step) to every
Pauli check ``(stabilizer index, data qubit, pauli letter)`` of a code, as in
Section 4.1 of the paper.  Ancilla qubits are implicit: stabilizer ``s`` uses
ancilla ``code.num_qubits + s``.

Validity conditions (checked by :meth:`Schedule.validate`):

* completeness — every Pauli check of every stabilizer has a tick;
* non-conflict — no data qubit and no ancilla participates in two checks in
  the same tick;
* commutation parity — for every pair of stabilizers that overlap on data
  qubits where their Pauli letters anticommute, the number of overlap qubits
  on which the first stabilizer's check precedes the second's must be even
  (Gehér et al., PRX Quantum 5, 010348).  This is the condition under which
  interleaved ("tangled") schedules still measure the intended stabilizers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codes.base import StabilizerCode

__all__ = ["PauliCheck", "Schedule", "ScheduleError"]


class ScheduleError(ValueError):
    """Raised when a schedule violates a validity condition."""


@dataclass(frozen=True)
class PauliCheck:
    """A single data-ancilla interaction: measure ``pauli`` on ``data_qubit``.

    ``stabilizer`` is the index of the stabilizer (and therefore of the
    ancilla) this check belongs to.
    """

    stabilizer: int
    data_qubit: int
    pauli: str

    def __post_init__(self) -> None:
        if self.pauli not in ("X", "Y", "Z"):
            raise ScheduleError(f"invalid Pauli letter {self.pauli!r}")


def checks_of_code(code: StabilizerCode) -> list[PauliCheck]:
    """Enumerate every Pauli check of ``code`` (one per non-identity letter)."""
    checks: list[PauliCheck] = []
    for stab_index, stab_checks in enumerate(code.checks()):
        for qubit, letter in stab_checks:
            checks.append(PauliCheck(stab_index, qubit, letter))
    return checks


@dataclass
class Schedule:
    """A (possibly partial) assignment of Pauli checks to ticks."""

    code: StabilizerCode
    assignment: dict[PauliCheck, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """The largest assigned tick (0 for an empty schedule)."""
        return max(self.assignment.values(), default=0)

    @property
    def num_assigned(self) -> int:
        return len(self.assignment)

    def is_complete(self) -> bool:
        return self.num_assigned == len(checks_of_code(self.code))

    def ancilla_of(self, stabilizer: int) -> int:
        return self.code.num_qubits + stabilizer

    def copy(self) -> "Schedule":
        return Schedule(self.code, dict(self.assignment))

    def ticks(self) -> dict[int, list[PauliCheck]]:
        """Return ``{tick: [checks]}`` sorted by tick."""
        by_tick: dict[int, list[PauliCheck]] = {}
        for check, tick in self.assignment.items():
            by_tick.setdefault(tick, []).append(check)
        return {tick: sorted(by_tick[tick], key=lambda c: (c.stabilizer, c.data_qubit))
                for tick in sorted(by_tick)}

    def tick_of(self, stabilizer: int, data_qubit: int) -> int | None:
        for check, tick in self.assignment.items():
            if check.stabilizer == stabilizer and check.data_qubit == data_qubit:
                return tick
        return None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def assign(self, check: PauliCheck, tick: int) -> None:
        if tick < 1:
            raise ScheduleError("ticks are 1-based positive integers")
        if check in self.assignment:
            raise ScheduleError(f"{check} already scheduled")
        for other, other_tick in self.assignment.items():
            if other_tick != tick:
                continue
            if other.data_qubit == check.data_qubit:
                raise ScheduleError(
                    f"data qubit {check.data_qubit} used twice in tick {tick}"
                )
            if other.stabilizer == check.stabilizer:
                raise ScheduleError(
                    f"ancilla of stabilizer {check.stabilizer} used twice in tick {tick}"
                )
        self.assignment[check] = tick

    def earliest_valid_tick(self, check: PauliCheck) -> int:
        """Smallest tick satisfying the non-conflict condition for ``check``.

        Mirrors Section 4.3: take the maximum tick among already scheduled
        checks sharing the data qubit or the ancilla, plus one.
        """
        latest = 0
        for other, tick in self.assignment.items():
            if other.data_qubit == check.data_qubit or other.stabilizer == check.stabilizer:
                latest = max(latest, tick)
        return latest + 1

    def shifted(self, offset: int) -> "Schedule":
        """Return a copy with every tick shifted by ``offset``."""
        return Schedule(
            self.code, {check: tick + offset for check, tick in self.assignment.items()}
        )

    def merged_with(self, other: "Schedule") -> "Schedule":
        """Concatenate another schedule after this one (partition composition)."""
        if other.code is not self.code and other.code.name != self.code.name:
            raise ScheduleError("cannot merge schedules of different codes")
        merged = self.copy()
        offset = self.depth
        for check, tick in other.assignment.items():
            merged.assignment[check] = tick + offset
        return merged

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, *, require_complete: bool = True) -> None:
        """Raise :class:`ScheduleError` if the schedule is invalid."""
        if require_complete and not self.is_complete():
            raise ScheduleError(
                f"schedule is incomplete: {self.num_assigned} of "
                f"{len(checks_of_code(self.code))} checks assigned"
            )
        self._check_conflicts()
        self._check_commutation_parity()

    def _check_conflicts(self) -> None:
        seen_data: dict[tuple[int, int], PauliCheck] = {}
        seen_ancilla: dict[tuple[int, int], PauliCheck] = {}
        for check, tick in self.assignment.items():
            data_key = (tick, check.data_qubit)
            ancilla_key = (tick, check.stabilizer)
            if data_key in seen_data:
                raise ScheduleError(
                    f"data qubit {check.data_qubit} double-booked in tick {tick}"
                )
            if ancilla_key in seen_ancilla:
                raise ScheduleError(
                    f"ancilla {self.ancilla_of(check.stabilizer)} double-booked in tick {tick}"
                )
            seen_data[data_key] = check
            seen_ancilla[ancilla_key] = check

    def _check_commutation_parity(self) -> None:
        by_stabilizer: dict[int, dict[int, tuple[str, int]]] = {}
        for check, tick in self.assignment.items():
            by_stabilizer.setdefault(check.stabilizer, {})[check.data_qubit] = (
                check.pauli,
                tick,
            )
        stabilizers = sorted(by_stabilizer)
        for index, first in enumerate(stabilizers):
            for second in stabilizers[index + 1 :]:
                first_checks = by_stabilizer[first]
                second_checks = by_stabilizer[second]
                shared = set(first_checks) & set(second_checks)
                inversions = 0
                relevant = 0
                for qubit in shared:
                    pauli_a, tick_a = first_checks[qubit]
                    pauli_b, tick_b = second_checks[qubit]
                    if pauli_a == pauli_b:
                        continue
                    relevant += 1
                    if tick_a < tick_b:
                        inversions += 1
                if relevant and inversions % 2 != 0:
                    raise ScheduleError(
                        f"stabilizers {first} and {second} interleave anticommuting "
                        f"checks with odd crossing parity"
                    )

    def __repr__(self) -> str:
        return (
            f"<Schedule {self.code.name} depth={self.depth} "
            f"checks={self.num_assigned}>"
        )
