"""Baseline schedulers: trivial ordering and lowest-depth scheduling.

Both schedulers operate partition-by-partition (see
:mod:`repro.scheduling.partition`): stabilizers whose checks anticommute on
shared qubits are placed in separate blocks that execute back-to-back, which
automatically satisfies the commutation-parity condition.

The lowest-depth scheduler replaces the paper's integer-programming
formulation (solved with ``pulp``, unavailable offline) with an exact
bipartite edge-colouring: within a partition every check is an edge between
its data qubit and its ancilla, all checks commute, and König's theorem
guarantees the minimum number of ticks equals the maximum qubit degree.
The constructive alternating-path algorithm below achieves that bound, so
the produced schedules are depth-optimal within the partitioned framework.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.codes.base import StabilizerCode
from repro.scheduling.partition import partition_stabilizers
from repro.scheduling.schedule import PauliCheck, Schedule

__all__ = ["trivial_schedule", "lowest_depth_schedule", "schedule_from_orders"]


def _partition_checks(code: StabilizerCode, partition: Sequence[int]) -> list[PauliCheck]:
    checks = []
    for stabilizer in partition:
        for qubit, letter in code.checks()[stabilizer]:
            checks.append(PauliCheck(stabilizer, qubit, letter))
    return checks


def trivial_schedule(
    code: StabilizerCode, *, partitions: Sequence[Sequence[int]] | None = None
) -> Schedule:
    """Schedule checks in (stabilizer index, data qubit index) order.

    This is the "trivial lexical ordering" baseline used by several QEC
    experiments: iterate stabilizers by index, iterate each stabilizer's data
    qubits by index, and place every check at the earliest non-conflicting
    tick of its partition block.
    """
    partitions = partitions or partition_stabilizers(code)
    schedule = Schedule(code)
    offset = 0
    for partition in partitions:
        block = Schedule(code)
        for check in sorted(
            _partition_checks(code, partition),
            key=lambda c: (c.stabilizer, c.data_qubit),
        ):
            block.assign(check, block.earliest_valid_tick(check))
        for check, tick in block.assignment.items():
            schedule.assignment[check] = tick + offset
        offset = schedule.depth
    schedule.validate()
    return schedule


def lowest_depth_schedule(
    code: StabilizerCode, *, partitions: Sequence[Sequence[int]] | None = None
) -> Schedule:
    """Depth-optimal schedule via bipartite edge colouring of each partition."""
    partitions = partitions or partition_stabilizers(code)
    schedule = Schedule(code)
    offset = 0
    for partition in partitions:
        checks = _partition_checks(code, partition)
        colouring = _bipartite_edge_colouring(checks)
        for check, colour in colouring.items():
            schedule.assignment[check] = colour + offset
        offset = schedule.depth
    schedule.validate()
    return schedule


def _bipartite_edge_colouring(checks: list[PauliCheck]) -> dict[PauliCheck, int]:
    """Colour the data-qubit / ancilla bipartite multigraph with Delta colours.

    Colours are 1-based so they can be used directly as ticks.  Uses the
    constructive proof of König's edge-colouring theorem: insert edges one by
    one; when the free colours at the two endpoints are disjoint, flip an
    alternating path to free a common colour.
    """
    max_degree = _max_degree(checks)
    colours = list(range(1, max_degree + 1))
    # colour_at[('d', qubit)][colour] -> check using that colour at the vertex.
    colour_at: dict[tuple[str, int], dict[int, PauliCheck]] = {}
    assignment: dict[PauliCheck, int] = {}

    def vertex_keys(check: PauliCheck) -> tuple[tuple[str, int], tuple[str, int]]:
        return ("d", check.data_qubit), ("a", check.stabilizer)

    def free_colours(vertex: tuple[str, int]) -> list[int]:
        used = colour_at.get(vertex, {})
        return [c for c in colours if c not in used]

    for check in checks:
        data_vertex, ancilla_vertex = vertex_keys(check)
        free_data = free_colours(data_vertex)
        free_ancilla = free_colours(ancilla_vertex)
        common = [c for c in free_data if c in free_ancilla]
        if common:
            colour = common[0]
        else:
            colour = free_data[0]
            other = free_ancilla[0]
            # Flip the alternating (colour, other) path starting at the
            # ancilla vertex so that ``colour`` becomes free there.
            _flip_alternating_path(colour_at, assignment, ancilla_vertex, colour, other)
        assignment[check] = colour
        colour_at.setdefault(data_vertex, {})[colour] = check
        colour_at.setdefault(ancilla_vertex, {})[colour] = check
    return assignment


def _flip_alternating_path(
    colour_at: dict[tuple[str, int], dict[int, PauliCheck]],
    assignment: dict[PauliCheck, int],
    start: tuple[str, int],
    colour: int,
    other: int,
) -> None:
    """Swap colours ``colour``/``other`` along the alternating path from ``start``.

    In a bipartite multigraph the walk that alternates between the two
    colours starting at ``start`` is a simple path, so collecting it first
    and flipping afterwards terminates and frees ``colour`` at ``start``.
    """
    path: list[tuple[PauliCheck, int]] = []
    seen: set[int] = set()
    vertex = start
    want = colour
    while True:
        edge = colour_at.get(vertex, {}).get(want)
        if edge is None or id(edge) in seen:
            break
        seen.add(id(edge))
        path.append((edge, want))
        data_vertex = ("d", edge.data_qubit)
        ancilla_vertex = ("a", edge.stabilizer)
        vertex = ancilla_vertex if vertex == data_vertex else data_vertex
        want = other if want == colour else colour
    # Remove the path edges from the colour tables, then re-add with the
    # alternate colour.
    for edge, old_colour in path:
        for endpoint in (("d", edge.data_qubit), ("a", edge.stabilizer)):
            if colour_at.get(endpoint, {}).get(old_colour) is edge:
                del colour_at[endpoint][old_colour]
    for edge, old_colour in path:
        new_colour = other if old_colour == colour else colour
        assignment[edge] = new_colour
        colour_at.setdefault(("d", edge.data_qubit), {})[new_colour] = edge
        colour_at.setdefault(("a", edge.stabilizer), {})[new_colour] = edge


def _max_degree(checks: list[PauliCheck]) -> int:
    data_degree: dict[int, int] = {}
    ancilla_degree: dict[int, int] = {}
    for check in checks:
        data_degree[check.data_qubit] = data_degree.get(check.data_qubit, 0) + 1
        ancilla_degree[check.stabilizer] = ancilla_degree.get(check.stabilizer, 0) + 1
    return max(max(data_degree.values(), default=1), max(ancilla_degree.values(), default=1))


def schedule_from_orders(
    code: StabilizerCode,
    orders: dict[int, Sequence[int]],
    *,
    partitions: Sequence[Sequence[int]] | None = None,
) -> Schedule:
    """Build a schedule from per-stabilizer data-qubit orders.

    ``orders`` maps each stabilizer index to the sequence of its data qubits
    in desired execution order.  Each check is placed at the earliest
    non-conflicting tick of its partition block while preserving that order.
    Used by the hand-crafted schedules and by random rollouts.
    """
    partitions = partitions or partition_stabilizers(code)
    schedule = Schedule(code)
    offset = 0
    letters = [dict(stab_checks) for stab_checks in code.checks()]
    for partition in partitions:
        block = Schedule(code)
        pending = {
            stabilizer: list(orders[stabilizer]) for stabilizer in partition
        }
        while any(pending.values()):
            for stabilizer in partition:
                if not pending[stabilizer]:
                    continue
                qubit = pending[stabilizer].pop(0)
                check = PauliCheck(stabilizer, qubit, letters[stabilizer][qubit])
                block.assign(check, block.earliest_valid_tick(check))
        for check, tick in block.assignment.items():
            schedule.assignment[check] = tick + offset
        offset = schedule.depth
    schedule.validate()
    return schedule


def random_order_schedule(
    code: StabilizerCode,
    *,
    rng: random.Random | None = None,
    partitions: Sequence[Sequence[int]] | None = None,
) -> Schedule:
    """Schedule with a uniformly random per-stabilizer data-qubit order."""
    rng = rng or random.Random()
    orders = {}
    for stabilizer, stab_checks in enumerate(code.checks()):
        qubits = [qubit for qubit, _ in stab_checks]
        rng.shuffle(qubits)
        orders[stabilizer] = qubits
    return schedule_from_orders(code, orders, partitions=partitions)
