"""Industry hand-crafted schedules (Google's surface-code order, IBM's BB order).

``google_surface_schedule`` reproduces the zig-zag ordering used by Google's
surface-code experiments: X-type plaquettes touch their data qubits in
row-major (Z-shaped) order NW, NE, SW, SE while Z-type plaquettes use
column-major (N-shaped) order NW, SW, NE, SE.  Late checks of a Z plaquette
are therefore vertically aligned (perpendicular to the horizontal logical Z)
and late checks of an X plaquette horizontally aligned, which steers hook
errors away from the logical operators; all plaquettes fit in four
conflict-free ticks.

``clockwise_surface_schedule`` / ``anticlockwise_surface_schedule`` build the
two orders studied in Figure 7 (within the partitioned framework, X block
followed by Z block).

``ibm_bb_schedule`` approximates IBM's published schedule for bivariate
bicycle codes by ordering each ancilla's six CNOTs by monomial label
(A-terms before B-terms for X checks, B-terms before A-terms for Z checks)
inside the partitioned framework; the true depth-7 interleaved schedule from
Bravyi et al. is not reproduced exactly (documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.codes.base import CSSCode, StabilizerCode
from repro.scheduling.baselines import schedule_from_orders
from repro.scheduling.partition import partition_stabilizers
from repro.scheduling.schedule import PauliCheck, Schedule, ScheduleError

__all__ = [
    "google_surface_schedule",
    "clockwise_surface_schedule",
    "anticlockwise_surface_schedule",
    "ibm_bb_schedule",
]

_GOOGLE_X_ORDER = ((0, 0), (0, 1), (1, 0), (1, 1))  # NW, NE, SW, SE
_GOOGLE_Z_ORDER = ((0, 0), (1, 0), (0, 1), (1, 1))  # NW, SW, NE, SE
_CLOCKWISE = ((0, 0), (0, 1), (1, 1), (1, 0))  # NW, NE, SE, SW
_ANTICLOCKWISE = ((0, 0), (1, 0), (1, 1), (0, 1))  # NW, SW, SE, NE


def _surface_plaquette_info(code: StabilizerCode) -> list[dict]:
    plaquettes = code.metadata.get("plaquettes")
    if plaquettes is None:
        raise ScheduleError(
            f"{code.name} has no plaquette metadata; hand-crafted surface "
            "schedules only apply to rotated surface codes"
        )
    return plaquettes


def _stabilizer_lookup(code: CSSCode) -> dict[tuple[str, frozenset[int]], int]:
    """Map (type, support) to stabilizer index."""
    lookup: dict[tuple[str, frozenset[int]], int] = {}
    for index, stab in enumerate(code.stabilizers):
        letters = {stab.pauli_at(q) for q in stab.support}
        stype = "X" if letters == {"X"} else "Z"
        lookup[(stype, frozenset(stab.support))] = index
    return lookup


def google_surface_schedule(code: CSSCode) -> Schedule:
    """Google's interleaved zig-zag schedule for rotated surface codes (depth 4)."""
    return _surface_corner_schedule(
        code, x_order=_GOOGLE_X_ORDER, z_order=_GOOGLE_Z_ORDER, interleave=True
    )


def clockwise_surface_schedule(code: CSSCode) -> Schedule:
    """Clockwise per-plaquette order of Figure 7(a), X block then Z block."""
    return _surface_corner_schedule(
        code, x_order=_CLOCKWISE, z_order=_CLOCKWISE, interleave=False
    )


def anticlockwise_surface_schedule(code: CSSCode) -> Schedule:
    """Anti-clockwise per-plaquette order of Figure 7(b), X block then Z block."""
    return _surface_corner_schedule(
        code, x_order=_ANTICLOCKWISE, z_order=_ANTICLOCKWISE, interleave=False
    )


def _surface_corner_schedule(
    code: CSSCode,
    *,
    x_order: tuple[tuple[int, int], ...],
    z_order: tuple[tuple[int, int], ...],
    interleave: bool,
) -> Schedule:
    plaquettes = _surface_plaquette_info(code)
    rows = code.metadata["rows"]
    cols = code.metadata["cols"]
    lookup = _stabilizer_lookup(code)

    def qubit_index(row: int, col: int) -> int:
        return row * cols + col

    if interleave:
        schedule = Schedule(code)
        for plaq in plaquettes:
            corner_order = x_order if plaq["type"] == "X" else z_order
            anchor_row = int(plaq["position"][0] - 0.5)
            anchor_col = int(plaq["position"][1] - 0.5)
            support = frozenset(qubit_index(r, c) for r, c in plaq["qubits"])
            stabilizer = lookup[(plaq["type"], support)]
            for tick_offset, (dr, dc) in enumerate(corner_order):
                corner = (anchor_row + dr, anchor_col + dc)
                if corner not in plaq["qubits"]:
                    continue
                check = PauliCheck(stabilizer, qubit_index(*corner), plaq["type"])
                schedule.assignment[check] = tick_offset + 1
        schedule.validate()
        return schedule

    orders: dict[int, list[int]] = {}
    for plaq in plaquettes:
        corner_order = x_order if plaq["type"] == "X" else z_order
        anchor_row = int(plaq["position"][0] - 0.5)
        anchor_col = int(plaq["position"][1] - 0.5)
        support = frozenset(qubit_index(r, c) for r, c in plaq["qubits"])
        stabilizer = lookup[(plaq["type"], support)]
        ordered = [
            qubit_index(anchor_row + dr, anchor_col + dc)
            for dr, dc in corner_order
            if (anchor_row + dr, anchor_col + dc) in plaq["qubits"]
        ]
        orders[stabilizer] = ordered
    return schedule_from_orders(code, orders)


def ibm_bb_schedule(code: CSSCode) -> Schedule:
    """Monomial-ordered schedule for bivariate bicycle codes.

    X-check ancillas execute their three A-monomial checks (left block)
    before their three B-monomial checks (right block); Z-check ancillas do
    the reverse.  Checks are placed at the earliest non-conflicting tick
    within the X block / Z block of the partitioned framework.
    """
    if code.metadata.get("family") != "bivariate_bicycle":
        raise ScheduleError("ibm_bb_schedule requires a bivariate bicycle code")
    half = code.num_qubits // 2
    orders: dict[int, list[int]] = {}
    num_x = code.hx.shape[0]
    for index, stab in enumerate(code.stabilizers):
        support = list(stab.support)
        left = sorted(q for q in support if q < half)
        right = sorted(q for q in support if q >= half)
        if index < num_x:
            orders[index] = left + right
        else:
            orders[index] = right + left
    return schedule_from_orders(code, orders)
