"""Schedule evaluation function (Section 4.4).

The evaluator wraps the decoder-in-the-loop logical-error-rate estimation
into a cached, deterministic scoring function used by the MCTS search: a
complete schedule is mapped to ``score = 1 / overall logical error rate``
(the paper's evaluation), with an optional ``-log`` variant kept for the
ablation study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.codes.base import StabilizerCode
from repro.noise.models import NoiseModel
from repro.scheduling.schedule import Schedule
from repro.sim.estimator import DecoderFactory, LogicalErrorRates, estimate_logical_error_rates

__all__ = ["ScheduleEvaluator"]

#: Score assigned when no logical error is observed in the sample budget.
_PERFECT_SCORE_CAP = 1e6


@dataclass
class ScheduleEvaluator:
    """Caches and scores complete schedules for a fixed code/noise/decoder.

    Parameters
    ----------
    code, noise, decoder_factory:
        The decoding context the schedule is optimised for.
    shots:
        Monte-Carlo shots per logical basis per evaluation.  The paper uses
        large parallel stim batches; here the default is laptop-sized and
        should be raised for final measurements.
    seed:
        Base RNG seed.  Evaluations are deterministic given the seed and the
        schedule, which keeps MCTS runs reproducible.
    objective:
        ``"inverse"`` (paper: ``1 / overall``) or ``"neg_log"``
        (``-log(overall)``, ablation variant).
    """

    code: StabilizerCode
    noise: NoiseModel
    decoder_factory: DecoderFactory
    shots: int = 500
    seed: int = 0
    objective: str = "inverse"
    _cache: dict[tuple, LogicalErrorRates] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.objective not in ("inverse", "neg_log"):
            raise ValueError("objective must be 'inverse' or 'neg_log'")

    # ------------------------------------------------------------------
    def schedule_key(self, schedule: Schedule) -> tuple:
        return tuple(
            sorted(
                (check.stabilizer, check.data_qubit, check.pauli, tick)
                for check, tick in schedule.assignment.items()
            )
        )

    def evaluate(self, schedule: Schedule) -> LogicalErrorRates:
        """Return (cached) logical error rates for a complete schedule."""
        key = self.schedule_key(schedule)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        rates = estimate_logical_error_rates(
            self.code,
            schedule,
            self.noise,
            self.decoder_factory,
            shots=self.shots,
            seed=self.seed,
        )
        self._cache[key] = rates
        return rates

    def score(self, schedule: Schedule) -> float:
        """Scalar score of a complete schedule (higher is better)."""
        rates = self.evaluate(schedule)
        overall = rates.overall
        if self.objective == "neg_log":
            if overall <= 0:
                return math.log(_PERFECT_SCORE_CAP)
            return -math.log(overall)
        if overall <= 0:
            return _PERFECT_SCORE_CAP
        return min(1.0 / overall, _PERFECT_SCORE_CAP)

    @property
    def cache_size(self) -> int:
        return len(self._cache)
