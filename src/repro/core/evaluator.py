"""Schedule evaluation function (Section 4.4).

The evaluator wraps the decoder-in-the-loop logical-error-rate estimation
into a cached, deterministic scoring function used by the MCTS search: a
complete schedule is mapped to ``score = 1 / overall logical error rate``
(the paper's evaluation), with an optional ``-log`` variant kept for the
ablation study.

Evaluation is batch-capable and optionally pool-backed: ``evaluate_many``
/ ``score_many`` accept a list of candidate schedules and, with
``workers > 1``, fan the per-basis estimations of every cache miss out to a
process pool (two tasks per schedule — both logical bases and all
candidates run concurrently).  Results are bit-identical to the serial path
for any worker count: each task derives the same ``SeedSequence`` streams
:func:`repro.sim.estimate_logical_error_rates` would, so the pool is purely
an execution detail.  This is what lets
:class:`~repro.core.mcts.PartitionMCTS` score a whole batch of rollouts
across cores.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.codes.base import StabilizerCode
from repro.noise.models import NoiseModel
from repro.scheduling.schedule import Schedule
from repro.circuits.memory import build_memory_experiment
from repro.sim.dem import build_detector_error_model
from repro.sim.estimator import (
    DecoderFactory,
    LogicalErrorRates,
    basis_streams,
    estimate_logical_error_rates,
    evaluate_basis,
    rates_from_adaptive_estimates,
)

__all__ = ["ScheduleEvaluator"]

#: Score assigned when no logical error is observed in the sample budget.
_PERFECT_SCORE_CAP = 1e6


def _basis_error_rate(
    code: StabilizerCode,
    schedule: Schedule,
    noise: NoiseModel,
    decoder_factory: DecoderFactory,
    basis: str,
    shots: int,
    stream,
) -> float:
    """One (schedule, basis) estimation — module-level so it pickles to pool workers."""
    return evaluate_basis(
        code, schedule, noise, decoder_factory, basis=basis, shots=shots, seed=stream
    )


def _basis_adaptive_estimate(
    code: StabilizerCode,
    schedule: Schedule,
    noise: NoiseModel,
    decoder_factory: DecoderFactory,
    basis: str,
    rule,
    stream,
):
    """One (schedule, basis) *adaptive* estimation, self-contained per task.

    The whole chunk-streaming loop runs inside the (possibly pooled) task,
    so serial and pooled evaluation consume identical chunk streams and the
    stopping point is a pure function of ``(schedule, basis, rule, stream)``
    — worker count never changes a score.  Returns the
    :class:`repro.parallel.AdaptiveEstimate` (picklable).
    """
    from repro.parallel import adaptive_sample_and_decode

    experiment = build_memory_experiment(code, schedule, noise, basis=basis)
    dem = build_detector_error_model(experiment.circuit)
    return adaptive_sample_and_decode(dem, decoder_factory, stream, rule)


@dataclass
class ScheduleEvaluator:
    """Caches and scores complete schedules for a fixed code/noise/decoder.

    Parameters
    ----------
    code, noise, decoder_factory:
        The decoding context the schedule is optimised for.  With
        ``workers > 1`` the factory crosses a process-pool boundary and must
        be picklable (everything built by ``repro.api.registries.decoders``
        is; ad-hoc lambdas are not).
    shots:
        Monte-Carlo shots per logical basis per evaluation.  The paper uses
        large parallel stim batches; here the default is laptop-sized and
        should be raised for final measurements.
    seed:
        Base RNG seed.  Evaluations are deterministic given the seed and the
        schedule — for *any* ``workers`` value — which keeps MCTS runs
        reproducible.
    objective:
        ``"inverse"`` (paper: ``1 / overall``) or ``"neg_log"``
        (``-log(overall)``, ablation variant).
    workers:
        Process-pool width used by :meth:`evaluate_many` /
        :meth:`score_many` for cache misses.  ``1`` (the default) evaluates
        in process.
    target_rse / max_shots / confidence:
        Optional precision target.  With ``target_rse`` set, every
        evaluation streams fixed deterministic chunks through a Wilson
        stopping rule (:mod:`repro.analysis.stats`) per basis and stops
        early once the observed rate is precise enough, up to ``max_shots``
        (default: ``shots``).  Scores stay deterministic for any worker
        count; ``target_rse=None`` keeps the fixed-shot behaviour
        bit-identical to before.
    """

    code: StabilizerCode
    noise: NoiseModel
    decoder_factory: DecoderFactory
    shots: int = 500
    seed: int = 0
    objective: str = "inverse"
    workers: int = 1
    target_rse: float | None = None
    max_shots: int | None = None
    confidence: float = 0.95
    _cache: dict[tuple, LogicalErrorRates] = field(default_factory=dict, repr=False)
    _pool: ProcessPoolExecutor | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.objective not in ("inverse", "neg_log"):
            raise ValueError("objective must be 'inverse' or 'neg_log'")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.target_rse is not None and self.target_rse <= 0:
            raise ValueError(f"target_rse must be positive, got {self.target_rse}")

    def _stopping_rule(self):
        """The Wilson stopping rule (``None`` in fixed-shot mode).

        Derived through :meth:`repro.api.spec.Budget.stopping_rule` — the
        single place that encodes the max_shots-defaults-to-shots fallback
        and the confidence-to-z conversion — so the evaluator can never
        drift from the Pipeline's derivation.
        """
        if self.target_rse is None:
            return None
        from repro.api.spec import Budget

        return Budget(
            shots=self.shots,
            target_rse=self.target_rse,
            max_shots=self.max_shots,
            confidence=self.confidence,
        ).stopping_rule()

    # ------------------------------------------------------------------
    def schedule_key(self, schedule: Schedule) -> tuple:
        """Canonical cache key: sorted check/tick tuples, so permuting the
        ``assignment`` insertion order of an otherwise identical schedule
        still hits the cache."""
        return tuple(
            sorted(
                (check.stabilizer, check.data_qubit, check.pauli, tick)
                for check, tick in schedule.assignment.items()
            )
        )

    def evaluate(self, schedule: Schedule) -> LogicalErrorRates:
        """Return (cached) logical error rates for a complete schedule."""
        key = self.schedule_key(schedule)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        rule = self._stopping_rule()
        if rule is not None:
            rates = self._evaluate_adaptive(schedule, rule)
        else:
            rates = estimate_logical_error_rates(
                self.code,
                schedule,
                self.noise,
                self.decoder_factory,
                shots=self.shots,
                seed=self.seed,
            )
        self._cache[key] = rates
        return rates

    def _evaluate_adaptive(self, schedule: Schedule, rule) -> LogicalErrorRates:
        """Serial adaptive estimation: the estimator's shared adaptive path."""
        from repro.sim.estimator import estimate_logical_error_rates_adaptive

        rates, _estimates = estimate_logical_error_rates_adaptive(
            self.code,
            schedule,
            self.noise,
            self.decoder_factory,
            rule=rule,
            seed=self.seed,
        )
        return rates

    def evaluate_many(self, schedules: "list[Schedule]") -> list[LogicalErrorRates]:
        """Evaluate a batch of schedules, fanning cache misses out to the pool.

        Duplicate schedules within the batch (and anything already cached)
        are estimated once.  The returned list is ordered like the input and
        bit-identical to calling :meth:`evaluate` serially.
        """
        keys = [self.schedule_key(schedule) for schedule in schedules]
        misses: dict[tuple, Schedule] = {}
        for key, schedule in zip(keys, schedules):
            if key not in self._cache and key not in misses:
                misses[key] = schedule
        if misses:
            if self.workers <= 1:
                for schedule in misses.values():
                    self.evaluate(schedule)
            else:
                self._evaluate_pooled(misses)
        return [self._cache[key] for key in keys]

    def _evaluate_pooled(self, misses: "dict[tuple, Schedule]") -> None:
        """Submit two basis tasks per miss, via the serial path's own
        :func:`repro.sim.estimator.basis_streams` plan — one shared
        derivation, so the pooled results cannot drift from serial.  In
        adaptive mode each task runs its whole chunk-streaming loop
        in-worker, keeping the stopping point worker-count independent."""
        pool = self._ensure_pool()
        rule = self._stopping_rule()
        submitted = []
        for key, schedule in misses.items():
            if rule is not None:
                futures = {
                    basis: pool.submit(
                        _basis_adaptive_estimate,
                        self.code,
                        schedule,
                        self.noise,
                        self.decoder_factory,
                        basis,
                        rule,
                        stream,
                    )
                    for basis, stream in basis_streams(self.seed)
                }
            else:
                futures = {
                    basis: pool.submit(
                        _basis_error_rate,
                        self.code,
                        schedule,
                        self.noise,
                        self.decoder_factory,
                        basis,
                        self.shots,
                        stream,
                    )
                    for basis, stream in basis_streams(self.seed)
                }
            submitted.append((key, schedule, futures))
        for key, schedule, futures in submitted:
            if rule is not None:
                self._cache[key] = rates_from_adaptive_estimates(
                    schedule.depth,
                    {basis: future.result() for basis, future in futures.items()},
                )
            else:
                self._cache[key] = LogicalErrorRates(
                    error_x=futures["Z"].result(),
                    error_z=futures["X"].result(),
                    shots=self.shots,
                    depth=schedule.depth,
                )

    # ------------------------------------------------------------------
    def _score_of(self, rates: LogicalErrorRates) -> float:
        overall = rates.overall
        if self.objective == "neg_log":
            if overall <= 0:
                return math.log(_PERFECT_SCORE_CAP)
            return -math.log(overall)
        if overall <= 0:
            return _PERFECT_SCORE_CAP
        return min(1.0 / overall, _PERFECT_SCORE_CAP)

    def score(self, schedule: Schedule) -> float:
        """Scalar score of a complete schedule (higher is better)."""
        return self._score_of(self.evaluate(schedule))

    def score_many(self, schedules: "list[Schedule]") -> list[float]:
        """Batch variant of :meth:`score` (shares the pool fan-out)."""
        return [self._score_of(rates) for rates in self.evaluate_many(schedules)]

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the process pool down (recreated lazily on next use)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ScheduleEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def cache_size(self) -> int:
        return len(self._cache)
