"""AlphaSyndrome: end-to-end syndrome-measurement schedule synthesis.

Ties the pieces together exactly as the paper describes:

1. partition the stabilizers into freely-commuting groups (Algorithm 1);
2. for each partition, run the continuous MCTS scheduler, scoring complete
   candidates with the decoder-in-the-loop evaluation (partitions not yet
   optimised use their lowest-depth schedule while another partition is
   being searched);
3. concatenate the per-partition schedules into the final round schedule.

The public entry point is :class:`AlphaSyndrome`; :func:`synthesize_schedule`
is a convenience wrapper used by the examples and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codes.base import StabilizerCode
from repro.core.evaluator import ScheduleEvaluator
from repro.core.mcts import MCTSConfig, PartitionMCTS
from repro.noise.models import NoiseModel
from repro.scheduling.baselines import lowest_depth_schedule
from repro.scheduling.partition import partition_stabilizers
from repro.scheduling.schedule import PauliCheck, Schedule
from repro.sim.estimator import DecoderFactory, LogicalErrorRates

__all__ = ["SynthesisResult", "AlphaSyndrome", "synthesize_schedule"]


@dataclass
class SynthesisResult:
    """Output of one AlphaSyndrome synthesis run."""

    schedule: Schedule
    rates: LogicalErrorRates
    baseline_rates: LogicalErrorRates
    partitions: list[list[int]]
    evaluations: int

    @property
    def overall_reduction(self) -> float:
        """Fractional reduction of the overall logical error rate vs. the baseline."""
        baseline = self.baseline_rates.overall
        if baseline <= 0:
            return 0.0
        return 1.0 - self.rates.overall / baseline


@dataclass
class AlphaSyndrome:
    """Schedule synthesiser for a (code, noise model, decoder) triple.

    Parameters mirror the paper's framework; ``shots`` and
    ``mcts_config.iterations_per_step`` trade synthesis time for schedule
    quality (the paper used 4000-8000 iterations per step on a 144-core
    server; the defaults here are laptop-sized).  ``workers > 1`` backs the
    evaluator with a process pool; it never changes the search itself, so
    synthesis output stays bit-identical for every worker count.  The
    paper's many-core rollout parallelism is the *search hyper-parameter*
    ``mcts_config.rollout_batch``: setting it above 1 scores that many
    rollouts per round through the pooled evaluator — deterministic for a
    fixed config, but a different (batched) search trajectory than
    ``rollout_batch=1``.
    """

    code: StabilizerCode
    noise: NoiseModel
    decoder_factory: DecoderFactory
    shots: int = 500
    mcts_config: MCTSConfig = field(default_factory=MCTSConfig)
    objective: str = "inverse"
    seed: int = 0
    workers: int = 1

    def __post_init__(self) -> None:
        self.evaluator = ScheduleEvaluator(
            code=self.code,
            noise=self.noise,
            decoder_factory=self.decoder_factory,
            shots=self.shots,
            seed=self.seed,
            objective=self.objective,
            workers=self.workers,
        )

    # ------------------------------------------------------------------
    def synthesize(self) -> SynthesisResult:
        """Run the full synthesis and return the optimised schedule with metrics."""
        try:
            return self._synthesize()
        finally:
            self.evaluator.close()

    def _synthesize(self) -> SynthesisResult:
        partitions = partition_stabilizers(self.code)
        defaults = self._default_partition_schedules(partitions)
        chosen: dict[int, Schedule] = {}
        total_evaluations = 0

        for index, partition in enumerate(partitions):
            checks = self._partition_checks(partition)

            def compose(candidate: Schedule, *, _index: int = index) -> Schedule:
                return self._compose(partitions, chosen, defaults, _index, candidate)

            search = PartitionMCTS(
                evaluator=self.evaluator,
                checks=tuple(checks),
                compose=compose,
                config=self.mcts_config,
            )
            partition_schedule, _ = search.search()
            chosen[index] = partition_schedule
            total_evaluations += search.evaluations_used

        final = self._concatenate(
            [chosen[i] for i in range(len(partitions))]
        )
        final.validate()
        rates = self.evaluator.evaluate(final)
        baseline = lowest_depth_schedule(self.code, partitions=partitions)
        baseline_rates = self.evaluator.evaluate(baseline)
        return SynthesisResult(
            schedule=final,
            rates=rates,
            baseline_rates=baseline_rates,
            partitions=partitions,
            evaluations=total_evaluations,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _partition_checks(self, partition: list[int]) -> list[PauliCheck]:
        checks = []
        for stabilizer in partition:
            for qubit, letter in self.code.checks()[stabilizer]:
                checks.append(PauliCheck(stabilizer, qubit, letter))
        return checks

    def _default_partition_schedules(
        self, partitions: list[list[int]]
    ) -> list[Schedule]:
        """Lowest-depth schedule of each partition, used before it is optimised."""
        full_default = lowest_depth_schedule(self.code, partitions=partitions)
        defaults = []
        for partition in partitions:
            members = set(partition)
            block = Schedule(self.code)
            ticks = [
                tick
                for check, tick in full_default.assignment.items()
                if check.stabilizer in members
            ]
            offset = min(ticks) - 1 if ticks else 0
            for check, tick in full_default.assignment.items():
                if check.stabilizer in members:
                    block.assignment[check] = tick - offset
            defaults.append(block)
        return defaults

    def _compose(
        self,
        partitions: list[list[int]],
        chosen: dict[int, Schedule],
        defaults: list[Schedule],
        active_index: int,
        candidate: Schedule,
    ) -> Schedule:
        blocks: list[Schedule] = []
        for index in range(len(partitions)):
            if index == active_index:
                blocks.append(candidate)
            elif index in chosen:
                blocks.append(chosen[index])
            else:
                blocks.append(defaults[index])
        return self._concatenate(blocks)

    def _concatenate(self, blocks: list[Schedule]) -> Schedule:
        merged = Schedule(self.code)
        offset = 0
        for block in blocks:
            if not block.assignment:
                continue
            for check, tick in block.assignment.items():
                merged.assignment[check] = tick + offset
            offset = merged.depth
        return merged


def synthesize_schedule(
    code: StabilizerCode,
    noise: NoiseModel,
    decoder_factory: DecoderFactory,
    *,
    shots: int = 500,
    iterations_per_step: int = 32,
    seed: int = 0,
) -> SynthesisResult:
    """One-call convenience wrapper around :class:`AlphaSyndrome`."""
    synthesiser = AlphaSyndrome(
        code=code,
        noise=noise,
        decoder_factory=decoder_factory,
        shots=shots,
        mcts_config=MCTSConfig(iterations_per_step=iterations_per_step, seed=seed),
        seed=seed,
    )
    return synthesiser.synthesize()
