"""Monte-Carlo Tree Search over syndrome-measurement schedules (Section 4).

The search constructs the schedule of one stabilizer *partition* (see
:mod:`repro.scheduling.partition`) incrementally.  A state is a partial
assignment of the partition's Pauli checks to ticks; a move appends one
unassigned check at its earliest non-conflicting tick (Section 4.3); a
terminal state is a complete partition schedule, which is scored by the
decoder-in-the-loop evaluator (Section 4.4) after being composed with the
schedules chosen for the other partitions.

The four MCTS phases (selection with UCT, expansion, random rollout,
backpropagation) follow Section 2.3, and the *continuous search* of Section
4.5 is implemented by re-rooting the tree at the chosen child and only
topping its visit count up to the per-step iteration budget.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.core.evaluator import ScheduleEvaluator
from repro.scheduling.schedule import PauliCheck, Schedule

__all__ = ["MCTSConfig", "MCTSNode", "PartitionMCTS"]


@dataclass
class MCTSConfig:
    """Search hyper-parameters.

    ``iterations_per_step`` is the paper's ``#iters_per_step`` (4000-8000 at
    paper scale; laptop defaults are much smaller).  ``exploration`` is the
    UCT constant ``c``.  ``reuse_subtree`` toggles the continuous-search
    optimisation of Section 4.5 (kept as a switch for the ablation study).
    ``rollout_batch`` collects that many leaves per round (diversified by a
    virtual-visit count on the selection path) and scores them in one
    :meth:`~repro.core.evaluator.ScheduleEvaluator.score_many` call, so a
    pool-backed evaluator spreads rollout scoring across cores;  ``1``
    reproduces the classic serial iteration exactly.
    """

    iterations_per_step: int = 32
    exploration: float = math.sqrt(2.0)
    reuse_subtree: bool = True
    seed: int = 0
    max_total_evaluations: int | None = None
    rollout_batch: int = 1


class MCTSNode:
    """One node of the search tree: a partial schedule of the partition."""

    __slots__ = ("schedule", "remaining", "parent", "children", "visits", "total_score", "move")

    def __init__(
        self,
        schedule: Schedule,
        remaining: tuple[PauliCheck, ...],
        parent: "MCTSNode | None" = None,
        move: PauliCheck | None = None,
    ) -> None:
        self.schedule = schedule
        self.remaining = remaining
        self.parent = parent
        self.children: list[MCTSNode] = []
        self.visits = 0
        self.total_score = 0.0
        self.move = move

    # ------------------------------------------------------------------
    @property
    def is_terminal(self) -> bool:
        return not self.remaining

    @property
    def is_fully_expanded(self) -> bool:
        return len(self.children) == len(self.remaining)

    @property
    def expectation(self) -> float:
        return self.total_score / self.visits if self.visits else 0.0

    def uct(self, exploration: float) -> float:
        if self.visits == 0:
            return math.inf
        parent_visits = self.parent.visits if self.parent else self.visits
        return self.expectation + exploration * math.sqrt(
            math.log(max(parent_visits, 1)) / self.visits
        )

    def child_for_move(self, move: PauliCheck) -> "MCTSNode":
        schedule = self.schedule.copy()
        schedule.assign(move, schedule.earliest_valid_tick(move))
        remaining = tuple(check for check in self.remaining if check != move)
        return MCTSNode(schedule, remaining, parent=self, move=move)


@dataclass
class PartitionMCTS:
    """MCTS scheduler for one partition.

    ``compose`` maps a complete partition schedule to the full-code schedule
    that the evaluator can score (i.e. it splices in the schedules used for
    the other partitions); it is supplied by
    :class:`~repro.core.alphasyndrome.AlphaSyndrome`.
    """

    evaluator: ScheduleEvaluator
    checks: tuple[PauliCheck, ...]
    compose: "callable"
    config: MCTSConfig = field(default_factory=MCTSConfig)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.config.seed)
        self._evaluations = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def search(self) -> tuple[Schedule, list[PauliCheck]]:
        """Run the continuous search; returns (partition schedule, move sequence)."""
        root = MCTSNode(Schedule(self.evaluator.code), tuple(self.checks))
        moves: list[PauliCheck] = []
        while not root.is_terminal:
            budget = self.config.iterations_per_step
            if self.config.reuse_subtree:
                budget = max(budget - root.visits, 1)
            remaining = budget
            while remaining > 0:
                requested = min(max(1, self.config.rollout_batch), remaining)
                completed = self._iterate_batch(root, requested)
                if completed == 0:
                    break
                remaining -= completed
                if completed < requested:
                    break
            best = self._best_child(root)
            moves.append(best.move)
            if self.config.reuse_subtree:
                best.parent = None
                root = best
            else:
                root = MCTSNode(best.schedule, best.remaining)
        return root.schedule, moves

    @property
    def evaluations_used(self) -> int:
        return self._evaluations

    # ------------------------------------------------------------------
    # The four MCTS phases (selection/expansion/rollout collected per batch,
    # evaluation dispatched through the evaluator's batch API, then one
    # backpropagation pass per leaf)
    # ------------------------------------------------------------------
    def _iterate_batch(self, root: MCTSNode, count: int) -> int:
        """Collect up to ``count`` leaves, score them as one batch, backpropagate.

        Visits are incremented along each selection path as soon as the leaf
        is collected (a virtual-visit count), so later selections within the
        same batch are steered away from already-pending leaves; scores are
        added after the whole batch is evaluated.  With ``count == 1`` the
        visit/score updates collapse to the classic single-iteration MCTS,
        consuming the RNG in exactly the same order.

        Returns how many rollouts actually ran (less than ``count`` when
        ``max_total_evaluations`` cut the batch short).
        """
        pending: list[tuple[MCTSNode, Schedule]] = []
        for _ in range(count):
            if self._budget_exhausted(len(pending)):
                break
            leaf = self._select(root)
            expanded = self._expand(leaf)
            candidate = self._rollout(expanded)
            node: MCTSNode | None = expanded
            while node is not None:
                node.visits += 1
                node = node.parent
            pending.append((expanded, candidate))
        if not pending:
            return 0
        scores = self.evaluator.score_many([candidate for _, candidate in pending])
        self._evaluations += len(pending)
        for (expanded, _), score in zip(pending, scores):
            node = expanded
            while node is not None:
                node.total_score += score
                node = node.parent
        return len(pending)

    def _select(self, node: MCTSNode) -> MCTSNode:
        current = node
        while not current.is_terminal and current.is_fully_expanded and current.children:
            current = max(
                current.children, key=lambda child: child.uct(self.config.exploration)
            )
        return current

    def _expand(self, node: MCTSNode) -> MCTSNode:
        if node.is_terminal:
            return node
        tried = {child.move for child in node.children}
        untried = [check for check in node.remaining if check not in tried]
        move = self._rng.choice(untried)
        child = node.child_for_move(move)
        node.children.append(child)
        return child

    def _rollout(self, node: MCTSNode) -> Schedule:
        """Randomly complete ``node``'s partial schedule and compose it for scoring."""
        schedule = node.schedule.copy()
        remaining = list(node.remaining)
        self._rng.shuffle(remaining)
        for check in remaining:
            schedule.assign(check, schedule.earliest_valid_tick(check))
        return self.compose(schedule)

    # ------------------------------------------------------------------
    def _best_child(self, node: MCTSNode) -> MCTSNode:
        if not node.children:
            # Budget exhausted before expansion: fall back to a random move.
            move = self._rng.choice(list(node.remaining))
            child = node.child_for_move(move)
            node.children.append(child)
            return child
        return max(node.children, key=lambda child: child.expectation)

    def _budget_exhausted(self, pending: int = 0) -> bool:
        limit = self.config.max_total_evaluations
        return limit is not None and self._evaluations + pending >= limit
