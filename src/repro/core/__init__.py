"""AlphaSyndrome core: schedule evaluation and MCTS-based synthesis."""

from repro.core.alphasyndrome import AlphaSyndrome, SynthesisResult, synthesize_schedule
from repro.core.evaluator import ScheduleEvaluator
from repro.core.mcts import MCTSConfig, MCTSNode, PartitionMCTS

__all__ = [
    "AlphaSyndrome",
    "SynthesisResult",
    "synthesize_schedule",
    "ScheduleEvaluator",
    "MCTSConfig",
    "MCTSNode",
    "PartitionMCTS",
]
