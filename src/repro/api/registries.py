"""The five concrete registries behind ``repro.api``.

``codes``, ``decoders``, ``noise``, ``schedulers`` and ``samplers`` are the
single source of truth for everything the library can construct by name.  They replace the
legacy ``CODE_BUILDERS`` dict in :mod:`repro.codes.library` and the
``decoder_factory`` string dispatcher in :mod:`repro.decoders.base`, both of
which now forward here through thin deprecation shims.

Registered builders follow per-registry conventions:

* **codes** — builder returns a :class:`~repro.codes.base.StabilizerCode`.
  Parametric families take spec arguments (``"surface:d=5"``); the legacy
  fixed names (``"rotated_surface_d5"``, ...) remain registered for
  backwards compatibility with results files and older scripts.
* **decoders** — builder returns a *decoder factory*
  (``DetectorErrorModel -> Decoder``), so constructor arguments can be bound
  from the spec before the DEM exists (``"lookup:max_order=3"``).
* **noise** — builder returns a :class:`~repro.noise.NoiseModel`.  Builders
  may declare an optional ``code`` parameter to receive the code being run
  (e.g. ``"nonuniform"`` needs its ancilla indices).
* **schedulers** — builder takes the code and returns either a
  :class:`~repro.scheduling.Schedule` or a full
  :class:`~repro.core.SynthesisResult` (the ``"alphasyndrome"`` scheduler).
  Builders may declare optional ``noise``/``decoder_factory``/``budget``/
  ``seed`` parameters to receive the run context.
* **samplers** — builder returns a *sampler factory*
  ``(circuit, dem) -> sampler`` where the sampler exposes
  ``sample(shots, seed=...) -> SampleBatch``.  The factory form lets spec
  arguments bind before the per-basis circuit/DEM exist, mirroring the
  decoder convention, and the factories are picklable ``partial`` objects
  (or plain classes) so the chunked process pool can ship them.
"""

from __future__ import annotations

from functools import partial

from repro.api.registry import Registry
from repro.codes.bivariate_bicycle import bb_code_72_12_6, bivariate_bicycle_code
from repro.codes.color import hexagonal_color_code, square_octagonal_color_code, steane_code
from repro.codes.hypergraph_product import (
    hyperbolic_color_substitute,
    hyperbolic_surface_substitute,
    toric_code,
)
from repro.codes.small import five_qubit_code, repetition_code, shor_code
from repro.codes.surface import (
    defect_surface_code,
    planar_surface_code,
    rectangular_surface_code,
    rotated_surface_code,
)
from repro.codes.xzzx import xzzx_surface_code
from repro.decoders.bposd import BPOSDDecoder
from repro.decoders.lookup import LookupDecoder
from repro.decoders.matching import MWPMDecoder
from repro.decoders.union_find import UnionFindDecoder
from repro.noise.channels import biased_noise, dephasing_noise, drifting_noise
from repro.noise.models import NoiseModel, brisbane_noise, non_uniform_noise, scaled_noise
from repro.scheduling.baselines import (
    lowest_depth_schedule,
    random_order_schedule,
    trivial_schedule,
)
from repro.scheduling.handcrafted import (
    anticlockwise_surface_schedule,
    clockwise_surface_schedule,
    google_surface_schedule,
    ibm_bb_schedule,
)
from repro.sim.frames import FrameSampler, TableauSampler
from repro.sim.sampler import DemSampler

__all__ = [
    "codes",
    "decoders",
    "noise",
    "schedulers",
    "samplers",
    "register_code",
    "register_decoder",
    "register_noise",
    "register_scheduler",
    "register_sampler",
]

codes = Registry("code")
decoders = Registry("decoder")
noise = Registry("noise")
schedulers = Registry("scheduler")
samplers = Registry("sampler")

#: Decorators for third-party / downstream registration.
register_code = codes.register
register_decoder = decoders.register
register_noise = noise.register
register_scheduler = schedulers.register
register_sampler = samplers.register


# ----------------------------------------------------------------------
# Codes: parametric families
# ----------------------------------------------------------------------
@register_code("surface", aliases=("rotated_surface",), help="Rotated surface code of distance d")
def _surface(d: int = 3):
    return rotated_surface_code(int(d))


@register_code("planar_surface", help="Unrotated planar surface code of distance d")
def _planar_surface(d: int = 3):
    return planar_surface_code(int(d))


@register_code("rectangular_surface", help="Rotated surface code with dx != dz")
def _rectangular_surface(rows: int = 5, cols: int = 9):
    return rectangular_surface_code(int(rows), int(cols))


@register_code("defect_surface", help="Surface code with a measurement defect")
def _defect_surface(d: int = 5):
    return defect_surface_code(int(d))


@register_code("color", aliases=("hexagonal_color",), help="Hexagonal (6.6.6) colour code")
def _color(d: int = 3):
    return hexagonal_color_code(int(d))


@register_code("square_octagonal", help="Square-octagonal (4.8.8) colour code")
def _square_octagonal(d: int = 3):
    return square_octagonal_color_code(int(d))


@register_code("xzzx", help="XZZX-twisted rotated surface code")
def _xzzx(d: int = 3):
    return xzzx_surface_code(int(d))


@register_code("toric", help="Toric code on a d x d torus")
def _toric(d: int = 3):
    return toric_code(int(d))


@register_code("repetition", help="Z-type repetition code of length d")
def _repetition(d: int = 3):
    return repetition_code(int(d))


@register_code("bb", aliases=("bivariate_bicycle",), help="Bivariate bicycle code bb:l,m")
def _bb(l: int = 3, m: int = 3):  # noqa: E741 - paper notation
    monomials = [(0, 0), (1, 0), (0, 1)]
    return bivariate_bicycle_code(int(l), int(m), monomials, monomials, name=f"bb_{l}x{m}")


@register_code("hyperbolic_surface", help="Hyperbolic surface-code substitute by variant")
def _hyperbolic_surface(variant: str = "small_k4"):
    return hyperbolic_surface_substitute(variant)


@register_code("hyperbolic_color", help="Hyperbolic colour-code substitute by variant")
def _hyperbolic_color(variant: str = "k4"):
    return hyperbolic_color_substitute(variant)


@register_code("stimfile", help="Circuit imported from a stim text file: stimfile:PATH")
def _stimfile(path: str = ""):
    # Imported lazily: the stim converters are only needed for this spec.
    from repro.io.imported import ImportedCircuit
    from repro.io.stim_text import load_stim_circuit

    # parse_spec coerces bare tokens (a path like "7" or "1.5" would arrive
    # as int/float); the file system wants the literal text back.
    path = str(path)
    if not path:
        raise ValueError("stimfile needs a path: code='stimfile:circuits/memory.stim'")
    return ImportedCircuit(circuit=load_stim_circuit(path), source=path)


# ----------------------------------------------------------------------
# Codes: legacy fixed names (kept verbatim from the old CODE_BUILDERS table
# so every name in historical results files still resolves).
# ----------------------------------------------------------------------
_FIXED_CODES = {
    # Surface-code family (Figure 12, Figure 15).
    "rotated_surface_d3": lambda: rotated_surface_code(3),
    "rotated_surface_d5": lambda: rotated_surface_code(5),
    "rotated_surface_d7": lambda: rotated_surface_code(7),
    "rotated_surface_d9": lambda: rotated_surface_code(9),
    "rotated_surface_5x9": lambda: rectangular_surface_code(5, 9),
    "planar_surface_d3": lambda: planar_surface_code(3),
    "planar_surface_d5": lambda: planar_surface_code(5),
    # Defect surface codes (Table 2).
    "defect_surface_d5": lambda: defect_surface_code(5),
    "defect_surface_d7": lambda: defect_surface_code(7),
    # Hexagonal colour codes (Table 2, Table 4).
    "hexagonal_color_d3": lambda: hexagonal_color_code(3),
    "hexagonal_color_d5": lambda: hexagonal_color_code(5),
    "hexagonal_color_d7": lambda: hexagonal_color_code(7),
    "hexagonal_color_d9": lambda: hexagonal_color_code(9),
    # Square-octagonal colour codes (substituted; see DESIGN.md).
    "square_octagonal_d3": lambda: square_octagonal_color_code(3),
    "square_octagonal_d5": lambda: square_octagonal_color_code(5),
    "square_octagonal_d7": lambda: square_octagonal_color_code(7),
    # Hyperbolic substitutes (Table 2).
    "hyperbolic_surface_k4": lambda: hyperbolic_surface_substitute("small_k4"),
    "hyperbolic_surface_toric3": lambda: hyperbolic_surface_substitute("toric_3"),
    "hyperbolic_surface_toric4": lambda: hyperbolic_surface_substitute("toric_4"),
    "hyperbolic_surface_k16": lambda: hyperbolic_surface_substitute("medium_k16"),
    "hyperbolic_color_k4": lambda: hyperbolic_color_substitute("k4"),
    "hyperbolic_color_k8": lambda: hyperbolic_color_substitute("k8"),
    "hyperbolic_color_k16": lambda: hyperbolic_color_substitute("k16"),
    # Bivariate bicycle (Figure 13).  "bb_18" is a small instance of the same
    # construction used where the full [[72,12,6]] code would be too slow.
    "bb_72_12_6": bb_code_72_12_6,
    "bb_18": lambda: bivariate_bicycle_code(
        3, 3, [(0, 0), (1, 0), (0, 1)], [(0, 0), (1, 0), (0, 1)], name="bb_18"
    ),
    # XZZX code mentioned in Section 5.3.1.
    "xzzx_d3": lambda: xzzx_surface_code(3),
    "xzzx_d5": lambda: xzzx_surface_code(5),
    # Small reference codes.
    "steane": steane_code,
    "five_qubit": five_qubit_code,
    "shor": shor_code,
    "repetition_3": lambda: repetition_code(3),
    "repetition_5": lambda: repetition_code(5),
    "toric_d3": lambda: toric_code(3),
    "toric_d4": lambda: toric_code(4),
}

for _name, _builder in _FIXED_CODES.items():
    codes.add(_name, _builder, help="Fixed-parameter instance (legacy name)")


# ----------------------------------------------------------------------
# Decoders (builders return a DetectorErrorModel -> Decoder factory).
# The factories are ``functools.partial`` objects rather than lambdas so
# they pickle into process-pool workers — the sharded hot path
# (repro.parallel) ships the factory, not the decoder instance.
# ----------------------------------------------------------------------
@register_decoder("mwpm", aliases=("matching",), help="Minimum-weight perfect matching")
def _mwpm(**kwargs):
    return partial(MWPMDecoder, **kwargs)


@register_decoder("unionfind", aliases=("union_find", "uf"), help="(Hypergraph) union-find")
def _unionfind(**kwargs):
    return partial(UnionFindDecoder, **kwargs)


@register_decoder("bposd", aliases=("bp_osd",), help="Belief propagation + ordered statistics")
def _bposd(**kwargs):
    return partial(BPOSDDecoder, **kwargs)


@register_decoder("lookup", help="Most-likely-error table (exact, small DEMs only)")
def _lookup(**kwargs):
    return partial(LookupDecoder, **kwargs)


# ----------------------------------------------------------------------
# Noise models
# ----------------------------------------------------------------------
@register_noise("brisbane", aliases=("default",), help="Uniform IBM-Brisbane-derived model")
def _brisbane():
    return brisbane_noise()


@register_noise("scaled", aliases=("uniform",), help="Uniform model at rate p (Figure 14 sweep)")
def _scaled(p: float = 0.001):
    return scaled_noise(float(p))


@register_noise("depolarizing", help="Explicit two-qubit / idle / readout rates")
def _depolarizing(
    two_qubit: float = 0.0074,
    idle: float = 0.0052,
    measurement: float = 0.0,
    reset: float = 0.0,
):
    return NoiseModel(
        two_qubit_error=float(two_qubit),
        idle_error=float(idle),
        measurement_error=float(measurement),
        reset_error=float(reset),
    )


@register_noise("noiseless", help="All error rates zero (debugging)")
def _noiseless():
    return NoiseModel(two_qubit_error=0.0, idle_error=0.0)


# The channel-composition factories register directly: parse_spec already
# coerces spec tokens to int/float/bool/None, so one definition carries the
# signature, the defaults and what `repro list` advertises.
register_noise(
    "biased", help="Z-biased Pauli gate+idle channels at rate p, bias eta (eta=1 = depolarizing)"
)(biased_noise)
register_noise(
    "dephasing", help="Pure-Z dephasing at rate p on idles (and gates unless gates=false)"
)(dephasing_noise)
register_noise(
    "drift",
    help="Uniform model drifting per round: p(t)=p0*(1+slope*t); slope=0 equals scaled:p=p0",
)(drifting_noise)


@register_noise("nonuniform", aliases=("non_uniform",), help="Per-ancilla rate variation (Fig. 15)")
def _nonuniform(variance: float = 0.5, seed: "int | None" = 7, code=None):
    if code is None:
        raise ValueError(
            "the 'nonuniform' noise model needs the code it is built for; "
            "construct it through Pipeline/RunSpec or pass code=..."
        )
    ancillas = [code.num_qubits + s for s in range(code.num_stabilizers)]
    # "nonuniform:seed=None" (e.g. a figure15 suite built from an unseeded
    # config) draws a fresh profile, matching the unseeded legacy driver.
    return non_uniform_noise(
        ancillas, variance=float(variance), seed=None if seed is None else int(seed)
    )


# ----------------------------------------------------------------------
# Schedulers
# ----------------------------------------------------------------------
@register_scheduler("trivial", help="Lexical-order baseline")
def _trivial(code):
    return trivial_schedule(code)


@register_scheduler("lowest_depth", aliases=("lowest",), help="Depth-optimal edge colouring")
def _lowest_depth(code):
    return lowest_depth_schedule(code)


@register_scheduler("random", help="Uniformly random per-stabilizer order")
def _random(code, seed=None):
    import random as _random_module

    rng = None if seed is None else _random_module.Random(int(seed))
    return random_order_schedule(code, rng=rng)


@register_scheduler("google", help="Google zig-zag surface-code schedule")
def _google(code):
    return google_surface_schedule(code)


@register_scheduler("clockwise", help="Clockwise hand-crafted surface-code order")
def _clockwise(code):
    return clockwise_surface_schedule(code)


@register_scheduler("anticlockwise", help="Anti-clockwise hand-crafted surface-code order")
def _anticlockwise(code):
    return anticlockwise_surface_schedule(code)


@register_scheduler("ibm_bb", help="Monomial-ordered bivariate-bicycle schedule")
def _ibm_bb(code):
    return ibm_bb_schedule(code)


# ----------------------------------------------------------------------
# Samplers (builders return a (circuit, dem) -> sampler factory; samplers
# expose sample(shots, seed=...) -> SampleBatch).  Like decoders, the
# factories are ``partial`` objects / classes so they pickle into workers.
# ----------------------------------------------------------------------
@register_sampler(
    "dem", help="DEM mechanism sampler, first-order fault decomposition (backend packed|dense)"
)
def _dem_sampler(backend: str = "packed"):
    return partial(DemSampler, backend=backend)


@register_sampler(
    "frames", aliases=("frame",), help="Batched Pauli-frame circuit-level propagator"
)
def _frames_sampler():
    return FrameSampler


@register_sampler(
    "tableau", help="Per-shot stabilizer-tableau reference (mode packed|dense)"
)
def _tableau_sampler(mode: str = "packed"):
    return partial(TableauSampler, mode=mode)


@register_scheduler(
    "alphasyndrome",
    aliases=("alpha", "mcts"),
    help="AlphaSyndrome MCTS synthesis (returns a SynthesisResult)",
)
def _alphasyndrome(
    code,
    *,
    noise=None,
    decoder_factory=None,
    budget=None,
    seed=0,
    workers=1,
    rollout_batch=1,
    iterations_per_step=None,
    max_evaluations=None,
    synthesis_shots=None,
    compile_decoder=None,
):
    # Imported lazily: repro.core pulls in the MCTS machinery, which nothing
    # else in the registry layer needs.
    from repro.api.spec import Budget
    from repro.core.alphasyndrome import AlphaSyndrome
    from repro.core.mcts import MCTSConfig
    from repro.seeding import stage_seed

    if noise is None:
        noise = brisbane_noise()
    if compile_decoder is not None:
        # Cross-decoder runs (the paper's Table 4): synthesise the schedule
        # against ``compile_decoder`` while the run's own decoder does the
        # final evaluation, e.g. RunSpec(decoder="unionfind",
        # scheduler="alphasyndrome:compile_decoder=bposd").
        decoder_factory = decoders.build(str(compile_decoder))
    if decoder_factory is None:
        decoder_factory = decoders.build("mwpm")
    budget = budget or Budget()
    if iterations_per_step is not None:
        budget = budget.replace(iterations_per_step=int(iterations_per_step))
    if max_evaluations is not None:
        budget = budget.replace(max_evaluations=int(max_evaluations))
    if synthesis_shots is not None:
        budget = budget.replace(synthesis_shots=int(synthesis_shots))
    synthesis_seed = stage_seed(seed, "synthesis")
    alpha = AlphaSyndrome(
        code=code,
        noise=noise,
        decoder_factory=decoder_factory,
        shots=budget.synthesis_shots,
        mcts_config=MCTSConfig(
            iterations_per_step=budget.iterations_per_step,
            seed=0 if synthesis_seed is None else synthesis_seed,
            max_total_evaluations=budget.max_evaluations,
            # An explicit search hyper-parameter ("alphasyndrome:rollout_batch=8"),
            # deliberately NOT derived from `workers` — worker count must never
            # change the search trajectory (bit-identical results per seed).
            rollout_batch=int(rollout_batch),
        ),
        seed=0 if synthesis_seed is None else synthesis_seed,
        workers=int(workers),
    )
    return alpha.synthesize()
