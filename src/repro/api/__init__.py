"""``repro.api`` — the single front door to the library.

Three pillars:

* **Registries** (:data:`codes`, :data:`decoders`, :data:`noise`,
  :data:`schedulers`) — extensible name -> builder tables with decorator
  registration and spec-string parsing (``"surface:d=5"``,
  ``"lookup:max_order=3"``).
* **Declarative runs** (:class:`RunSpec`, :class:`Budget`,
  :class:`Pipeline`) — a frozen JSON-round-trippable config executed as a
  lazily staged pipeline with cached artifacts
  (``.schedule``/``.circuit``/``.dem``/``.syndromes``/``.rates``) and
  optional process-pool shot sharding.
* **CLI** — the ``repro`` console script (:mod:`repro.api.cli`) with
  ``run``, ``synth``, ``eval``, ``list`` and ``tables`` subcommands.

Quickstart::

    from repro.api import Pipeline, RunSpec

    spec = RunSpec(code="surface:d=3", decoder="mwpm", scheduler="lowest_depth")
    rates = Pipeline(spec).rates
    print(rates)
"""

from repro.api.pipeline import Pipeline, RunResult
from repro.api.registries import (
    codes,
    decoders,
    noise,
    register_code,
    register_decoder,
    register_noise,
    register_scheduler,
    schedulers,
)
from repro.api.registry import Registry, parse_spec
from repro.api.spec import Budget, RunSpec

__all__ = [
    "Registry",
    "parse_spec",
    "codes",
    "decoders",
    "noise",
    "schedulers",
    "register_code",
    "register_decoder",
    "register_noise",
    "register_scheduler",
    "Budget",
    "RunSpec",
    "Pipeline",
    "RunResult",
]
