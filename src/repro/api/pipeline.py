"""Staged execution of a :class:`~repro.api.spec.RunSpec`.

A :class:`Pipeline` walks the paper's end-to-end flow

    code -> noise -> schedule -> circuit -> DEM -> syndromes -> rates

exposing every intermediate product as a lazily computed, cached attribute.
Asking for a late stage (``pipeline.rates``) computes and caches everything
before it; asking for an early stage (``pipeline.dem``) never pays for the
later ones.  Per-basis artifacts (circuit, DEM, syndromes, predictions) are
dicts keyed by measurement basis ``"Z"`` / ``"X"``.

The sampling/decoding hot path is sharded into fixed-size chunks
(:mod:`repro.parallel`), so its output is **worker-count invariant**:
``Pipeline(workers=1)`` and ``Pipeline(workers=8)`` produce bit-identical
samples, predictions and rates for a fixed seed — ``workers`` only decides
whether the chunks run in process or on a process pool.  Runs that fit in a
single chunk (``shots <= repro.parallel.DEFAULT_CHUNK_SHOTS``) additionally
reproduce the legacy :func:`repro.sim.estimate_logical_error_rates` path
bit for bit — same SeedSequence streams, same sampling, same decode — which
the test suite pins.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from functools import cached_property

from pathlib import Path

from repro import parallel
from repro.api import registries
from repro.api.spec import Budget, RunSpec
from repro.circuits.memory import build_memory_experiment
from repro.core.alphasyndrome import SynthesisResult
from repro.parallel import (
    AdaptiveEstimate,
    adaptive_sample_and_decode,
    merge_chunks,
    sample_and_decode,
    submit_chunks,
)
from repro.sim.dem import DemDecompositionError, build_detector_error_model
from repro.sim.estimator import (
    LogicalErrorRates,
    basis_streams,
    fraction_wrong,
    rates_from_adaptive_estimates,
)

__all__ = ["Pipeline", "RunResult", "adaptive_report"]

#: Basis artifact order; execution streams come from
#: :func:`repro.sim.estimator.basis_streams` (basis Z reports the logical X
#: error rate and consumes the first child stream).
_BASES = ("Z", "X")


@dataclasses.dataclass
class RunResult:
    """Terminal artifact of a pipeline run: the spec plus its measured rates."""

    spec: RunSpec
    rates: LogicalErrorRates
    depth: int
    synthesis_evaluations: int | None = None
    baseline_overall: float | None = None
    adaptive: dict | None = None

    def to_dict(self) -> dict:
        """JSON-ready payload: spec, rates, depth plus optional synthesis/adaptive blocks."""
        payload = {
            "spec": self.spec.to_dict(),
            "error_x": self.rates.error_x,
            "error_z": self.rates.error_z,
            "overall": self.rates.overall,
            "shots": self.rates.shots,
            "depth": self.depth,
        }
        if self.synthesis_evaluations is not None:
            payload["synthesis_evaluations"] = self.synthesis_evaluations
        if self.baseline_overall is not None:
            payload["baseline_overall"] = self.baseline_overall
        if self.adaptive is not None:
            payload["adaptive"] = self.adaptive
        return payload


def adaptive_report(budget: Budget, estimates: "dict[str, AdaptiveEstimate]") -> dict:
    """JSON-ready summary of one adaptive run's per-basis estimates.

    The single encoding of the report shape, shared by
    :attr:`Pipeline.adaptive_report` and the ``repro serve`` job finalizer
    (:mod:`repro.serve.jobs`) so offline and served results carry identical
    adaptive blocks.
    """
    return {
        "target_rse": budget.target_rse,
        "confidence": budget.confidence,
        "max_shots": budget.plan_shots,
        "converged": all(estimate.converged for estimate in estimates.values()),
        "cache_hits": sum(estimate.cache_hits for estimate in estimates.values()),
        "fresh_chunks": sum(estimate.fresh_chunks for estimate in estimates.values()),
        "bases": {
            basis: {
                "shots": estimate.shots,
                "errors": estimate.errors,
                "rate": estimate.rate,
                "chunks": estimate.chunks,
                "converged": estimate.converged,
                "cache_hits": estimate.cache_hits,
                "fresh_chunks": estimate.fresh_chunks,
            }
            for basis, estimate in estimates.items()
        },
    }


class Pipeline:
    """Lazily executed, stage-cached run of one :class:`RunSpec`.

    Construct from a spec, or directly from field overrides (budget fields
    may be passed flat)::

        Pipeline(RunSpec(code="surface:d=5"))
        Pipeline(code="surface:d=5", decoder="unionfind", shots=5000, workers=4)
    """

    def __init__(self, spec: RunSpec | None = None, *, cache=None, **overrides) -> None:
        budget_fields = {f.name for f in dataclasses.fields(Budget)}
        flat_budget = {k: overrides.pop(k) for k in list(overrides) if k in budget_fields}
        if spec is None:
            spec = RunSpec(**overrides)
        elif overrides:
            spec = spec.replace(**overrides)
        if flat_budget:
            spec = spec.replace(budget=spec.budget.replace(**flat_budget))
        self.spec = spec
        if isinstance(cache, (str, Path)):
            # Imported lazily: repro.cache depends on the spec layer.
            from repro.cache import ResultCache

            cache = ResultCache(cache)
        #: Optional :class:`repro.cache.ResultCache`; consulted (and
        #: populated) only by the adaptive hot path — the fixed-shot path
        #: stays byte-identical to its pinned legacy behaviour.
        self.cache = cache

    def __repr__(self) -> str:
        return f"Pipeline({self.spec!r})"

    # ------------------------------------------------------------------
    # Staged artifacts (each cached after first access)
    # ------------------------------------------------------------------
    @cached_property
    def code(self):
        """The constructed :class:`~repro.codes.base.StabilizerCode`.

        For ``code="stimfile:PATH"`` specs this is an
        :class:`~repro.io.imported.ImportedCircuit` instead — the pipeline
        then skips circuit generation (see :attr:`imported`).
        """
        return registries.codes.build(self.spec.code)

    @property
    def imported(self):
        """The :class:`~repro.io.imported.ImportedCircuit`, or ``None``.

        Non-``None`` exactly when the code spec named an external circuit
        file; the generation stages (noise, schedule, experiment) then
        short-circuit and the imported circuit feeds both basis slots
        directly (two independent replicas under the per-basis seed
        streams — see :mod:`repro.io.imported`).
        """
        from repro.io.imported import ImportedCircuit

        code = self.code
        return code if isinstance(code, ImportedCircuit) else None

    @cached_property
    def noise(self):
        """The :class:`~repro.noise.NoiseModel` (built with code context).

        ``None`` for imported circuits: their noise channels are already in
        the instruction stream.
        """
        if self.imported is not None:
            return None
        return registries.noise.build(self.spec.noise, code=self.code)

    @cached_property
    def decoder_factory(self):
        """``DetectorErrorModel -> Decoder`` factory from the decoder spec."""
        return registries.decoders.build(self.spec.decoder)

    @cached_property
    def _scheduled(self):
        """Raw scheduler output: a Schedule or a SynthesisResult.

        ``workers`` is offered as context so synthesising schedulers
        (``"alphasyndrome"``) can parallelise rollout scoring; fixed
        schedulers simply ignore it (registry extras are signature-filtered).
        ``spec.rounds`` is deliberately *not* offered: synthesis scores
        schedules on the single-round experiment (see
        :class:`~repro.api.spec.RunSpec`), so the search is identical for
        every ``rounds`` value.
        """
        if self.imported is not None:
            return self.imported.schedule
        return registries.schedulers.build(
            self.spec.scheduler,
            code=self.code,
            noise=self.noise,
            decoder_factory=self.decoder_factory,
            budget=self.spec.budget,
            seed=self.spec.seed,
            workers=self.spec.workers,
        )

    @property
    def synthesis(self) -> SynthesisResult | None:
        """The full :class:`SynthesisResult` when the scheduler synthesised one."""
        scheduled = self._scheduled
        return scheduled if isinstance(scheduled, SynthesisResult) else None

    @cached_property
    def schedule(self):
        """The syndrome-measurement :class:`~repro.scheduling.Schedule`."""
        scheduled = self._scheduled
        return scheduled.schedule if isinstance(scheduled, SynthesisResult) else scheduled

    @cached_property
    def experiment(self) -> dict:
        """Per-basis memory experiments (Figure 10 sampling circuits).

        ``spec.rounds`` noisy syndrome rounds are inserted between the
        logical readouts (the paper's protocol uses one).
        """
        if self.imported is not None:
            raise RuntimeError(
                "imported circuits have no per-basis memory experiment: "
                f"{self.imported.source!r} arrived fully built.  Use "
                "pipeline.circuit / pipeline.dem / pipeline.rates directly."
            )
        return {
            basis: build_memory_experiment(
                self.code,
                self.schedule,
                self.noise,
                basis=basis,
                noisy_rounds=self.spec.rounds,
            )
            for basis in _BASES
        }

    @cached_property
    def circuit(self) -> dict:
        """Per-basis noisy Clifford circuits.

        Imported circuits fill both basis slots with the same circuit (two
        independent replicas under the two per-basis seed streams).
        """
        if self.imported is not None:
            return {basis: self.imported.circuit for basis in _BASES}
        return {basis: experiment.circuit for basis, experiment in self.experiment.items()}

    @cached_property
    def dem(self) -> dict:
        """Per-basis detector error models.

        When decomposition rejects an instruction the error names the fix:
        circuit-level sampling (``--sampler frames``) does not go through
        the DEM to sample, so richer circuits stay runnable.
        """
        try:
            return {
                basis: build_detector_error_model(circuit)
                for basis, circuit in self.circuit.items()
            }
        except DemDecompositionError as error:
            raise DemDecompositionError(
                f"{error}  Circuit-level sampling handles this: rerun with "
                "sampler='frames' (CLI: --sampler frames)."
            ) from error

    @cached_property
    def sampler_factory(self):
        """``(circuit, dem) -> sampler`` factory from the sampler spec."""
        return registries.samplers.build(self.spec.sampler)

    @cached_property
    def samplers(self) -> dict:
        """Per-basis sampler objects (``sample(shots, seed=...) -> SampleBatch``).

        ``None`` per basis for the default ``"dem"`` spec: the chunk engine
        then takes its historical direct
        :func:`~repro.sim.sampler.sample_detector_error_model` path, which
        keeps pre-existing runs (and their cached chunks) bit-identical
        without constructing anything.  Non-default specs build one sampler
        per basis; the objects are picklable and shipped to pool workers
        with each chunk.
        """
        if self.spec.sampler == "dem":
            return {basis: None for basis in _BASES}
        factory = self.sampler_factory
        return {
            basis: factory(self.circuit[basis], self.dem[basis]) for basis in _BASES
        }

    @cached_property
    def _executed(self) -> dict:
        """Per-basis ``(SampleBatch, predictions)`` from the sampling/decoding hot path.

        Chunk layout and per-chunk seed streams come from
        :mod:`repro.parallel` and depend only on the shot count, so the
        result is bit-identical for every ``workers`` value; the pool is
        purely an execution detail.
        """
        shots = self.spec.budget.shots
        executed: dict = {}
        samplers = self.samplers
        if self.spec.workers <= 1 or shots <= 0:
            for basis, stream in basis_streams(self.spec.eval_seed()):
                executed[basis] = sample_and_decode(
                    self.dem[basis],
                    self.decoder_factory,
                    shots,
                    stream,
                    sampler=samplers[basis],
                )
            return executed
        with ProcessPoolExecutor(max_workers=self.spec.workers) as pool:
            futures = {
                basis: submit_chunks(
                    pool,
                    self.dem[basis],
                    self.decoder_factory,
                    shots,
                    stream,
                    sampler=samplers[basis],
                )
                for basis, stream in basis_streams(self.spec.eval_seed())
            }
            for basis, basis_futures in futures.items():
                executed[basis] = merge_chunks(
                    [future.result() for future in basis_futures], self.dem[basis]
                )
        return executed

    # ------------------------------------------------------------------
    # Adaptive (precision-targeted) execution
    # ------------------------------------------------------------------
    @property
    def adaptive(self) -> bool:
        """True when the budget carries a precision target (``target_rse``)."""
        return self.spec.budget.adaptive

    @cached_property
    def estimates(self) -> "dict[str, AdaptiveEstimate] | None":
        """Per-basis :class:`~repro.parallel.AdaptiveEstimate` (adaptive mode only).

        The chunk plan is laid out for ``budget.plan_shots`` and consumed in
        chunk order through the budget's Wilson stopping rule; a pool only
        speculates on upcoming chunks, so — like the fixed path — the result
        is bit-identical for every ``workers`` value.  When the pipeline
        holds a :class:`repro.cache.ResultCache`, cached chunk summaries are
        replayed instead of resampled and fresh chunks are persisted.
        """
        if not self.adaptive:
            return None
        rule = self.spec.budget.stopping_rule()
        chunk_shots = parallel.DEFAULT_CHUNK_SHOTS
        stores = {
            basis: (
                self.cache.chunk_store(self.spec, basis, chunk_shots)
                if self.cache is not None
                else None
            )
            for basis in _BASES
        }

        # Materialise the staged artifacts up front: cached_property is not
        # thread-safe, and the driver threads below must only read them.
        dems = self.dem
        decoder_factory = self.decoder_factory
        samplers = self.samplers

        def run_basis(basis, stream, pool) -> AdaptiveEstimate:
            return adaptive_sample_and_decode(
                dems[basis],
                decoder_factory,
                stream,
                rule,
                chunk_shots=chunk_shots,
                pool=pool,
                lookahead=max(1, self.spec.workers),
                store=stores[basis],
                sampler=samplers[basis],
            )

        streams = basis_streams(self.spec.eval_seed())
        # A fully warm cache replays without sampling; skip process-pool
        # startup entirely in that case (the advertised cheap-resume path).
        # The probe itself costs cache reads, so it only runs when a pool
        # would otherwise be created.
        if self.spec.workers <= 1 or all(
            parallel.store_satisfies_rule(rule, stores[basis], chunk_shots=chunk_shots)
            for basis in _BASES
        ):
            return {basis: run_basis(basis, stream, None) for basis, stream in streams}
        # Two thread-level drivers share one process pool so the bases'
        # speculative chunks interleave across workers (mirroring the fixed
        # path); each basis still consumes its own chunks strictly in order,
        # so results are unchanged.
        with ProcessPoolExecutor(max_workers=self.spec.workers) as pool:
            with ThreadPoolExecutor(max_workers=len(streams)) as drivers:
                futures = {
                    basis: drivers.submit(run_basis, basis, stream, pool)
                    for basis, stream in streams
                }
                return {basis: future.result() for basis, future in futures.items()}

    @property
    def adaptive_report(self) -> dict | None:
        """JSON-ready summary of the adaptive run (``None`` in fixed mode)."""
        estimates = self.estimates
        if estimates is None:
            return None
        return adaptive_report(self.spec.budget, estimates)

    def _require_materialised(self, artifact: str) -> None:
        if self.adaptive:
            raise RuntimeError(
                f"Pipeline.{artifact} is not available in adaptive mode: with "
                "budget.target_rse set, sampling streams chunks through the "
                "stopping rule and retains only per-chunk counts.  Set "
                "target_rse=None to materialise full sample batches."
            )

    @property
    def syndromes(self) -> dict:
        """Per-basis sampled :class:`~repro.sim.SampleBatch` (detectors + observables)."""
        self._require_materialised("syndromes")
        return {basis: batch for basis, (batch, _) in self._executed.items()}

    @property
    def predictions(self) -> dict:
        """Per-basis decoder predictions for the sampled syndromes."""
        self._require_materialised("predictions")
        return {basis: predictions for basis, (_, predictions) in self._executed.items()}

    @cached_property
    def rates(self) -> LogicalErrorRates:
        """Logical error rates; equals the legacy estimator for ``workers=1``.

        In adaptive mode the rates derive from the streamed chunk counts
        (``shots`` then reports the larger per-basis sample size and
        ``shots_by_basis`` / ``converged`` are populated).
        """
        if self.adaptive:
            return rates_from_adaptive_estimates(self.schedule.depth, self.estimates)
        batch_z, predictions_z = self._executed["Z"]
        batch_x, predictions_x = self._executed["X"]
        return LogicalErrorRates(
            error_x=fraction_wrong(predictions_z, batch_z),
            error_z=fraction_wrong(predictions_x, batch_x),
            shots=self.spec.budget.shots,
            depth=self.schedule.depth,
        )

    @cached_property
    def result(self) -> RunResult:
        """Terminal :class:`RunResult` summarising the run."""
        synthesis = self.synthesis
        return RunResult(
            spec=self.spec,
            rates=self.rates,
            depth=self.schedule.depth,
            synthesis_evaluations=synthesis.evaluations if synthesis else None,
            baseline_overall=synthesis.baseline_rates.overall if synthesis else None,
            adaptive=self.adaptive_report,
        )

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute every stage and return the :class:`RunResult`."""
        return self.result
