"""Generic named-builder registry with decorator registration and spec strings.

A :class:`Registry` maps short names to builder callables and is the single
dispatch mechanism behind ``repro.api.codes``, ``.decoders``, ``.noise`` and
``.schedulers`` (replacing the hand-rolled ``CODE_BUILDERS`` dict and
``decoder_factory`` string dispatcher of earlier versions).

Builders are registered with a decorator::

    @codes.register("surface", aliases=("rotated_surface",))
    def _surface(d: int = 3) -> StabilizerCode:
        return rotated_surface_code(d)

and looked up with *spec strings* that may carry arguments::

    codes.build("surface")          # -> rotated_surface_code(3)
    codes.build("surface:d=5")      # -> rotated_surface_code(5)
    codes.build("surface:5")        # positional form, same thing
    codes.available()               # sorted canonical names

Argument values are coerced ``int`` → ``float`` → ``bool`` → ``str`` in that
order, so ``"lookup:max_order=3"`` builds ``LookupDecoder(max_order=3)``
without any per-registry parsing code.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

__all__ = ["Registry", "RegistryEntry", "builder_signature", "parse_spec"]

#: Contextual parameters the pipeline injects into builders (see
#: :meth:`Registry.build`); hidden from rendered signatures because users
#: never spell them inside a spec string.
_CONTEXT_PARAMS = frozenset({"code", "noise", "decoder_factory", "budget", "workers"})


def _coerce(token: str):
    """Coerce a spec-string argument token to int/float/bool, else keep str."""
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    lowered = token.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    return token


def parse_spec(spec: str) -> tuple[str, list, dict]:
    """Split ``"name:a,k=v"`` into ``("name", [a], {"k": v})``.

    The name may itself contain no ``:``; everything after the first ``:``
    is a comma-separated argument list where ``key=value`` tokens become
    keyword arguments and bare tokens positional ones.
    """
    name, _, argument_part = spec.partition(":")
    name = name.strip()
    positional: list = []
    keyword: dict = {}
    if argument_part.strip():
        for token in argument_part.split(","):
            token = token.strip()
            if not token:
                continue
            key, separator, value = token.partition("=")
            if separator:
                keyword[key.strip()] = _coerce(value.strip())
            else:
                positional.append(_coerce(token))
    return name, positional, keyword


def _format_default(value) -> str:
    """Render a builder default the way a spec string would spell it."""
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def builder_signature(builder: Callable) -> str:
    """Spec-string-style parameter signature of a registered builder.

    Renders the builder's user-facing parameters as the argument part of a
    spec string (``"p=0.001,eta=10.0"``), so ``repro list`` can show what
    each entry accepts without the user reading source.  Contextual
    parameters the pipeline injects (``code``, ``noise``, ...) are hidden;
    parameters without defaults render as ``name=<required>``; a
    ``**kwargs`` catch-all renders as ``...``.  Returns ``""`` for
    builders taking no user-facing arguments (or with unreadable
    signatures).
    """
    try:
        parameters = inspect.signature(builder).parameters
    except (TypeError, ValueError):
        return ""
    tokens: list[str] = []
    for name, parameter in parameters.items():
        if name in _CONTEXT_PARAMS:
            continue
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            tokens.append("...")
            continue
        if parameter.kind not in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            continue
        if parameter.default is inspect.Parameter.empty:
            tokens.append(f"{name}=<required>")
        else:
            tokens.append(f"{name}={_format_default(parameter.default)}")
    return ",".join(tokens)


@dataclass
class RegistryEntry:
    """One registered builder plus its discovery metadata."""

    name: str
    builder: Callable
    aliases: tuple[str, ...] = ()
    help: str = ""

    @property
    def signature(self) -> str:
        """Spec-string-style parameter signature (see :func:`builder_signature`)."""
        return builder_signature(self.builder)

    @property
    def spec_syntax(self) -> str:
        """The full spec-string syntax of this entry (``"name:args"`` or ``"name"``)."""
        signature = self.signature
        return f"{self.name}:{signature}" if signature else self.name


@dataclass
class Registry:
    """Name -> builder mapping with aliases, spec parsing and discovery."""

    kind: str
    _entries: dict[str, RegistryEntry] = field(default_factory=dict, repr=False)
    _aliases: dict[str, str] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str | None = None,
        *,
        aliases: tuple[str, ...] | list[str] = (),
        help: str = "",
    ) -> Callable:
        """Decorator registering a builder under ``name`` (default: its ``__name__``)."""

        def decorator(builder: Callable) -> Callable:
            self.add(name or builder.__name__.lstrip("_"), builder, aliases=aliases, help=help)
            return builder

        return decorator

    def add(
        self,
        name: str,
        builder: Callable,
        *,
        aliases: tuple[str, ...] | list[str] = (),
        help: str = "",
    ) -> None:
        """Imperatively register ``builder`` under ``name`` (used for bulk tables)."""
        if name in self._entries or name in self._aliases:
            raise ValueError(f"duplicate {self.kind} name {name!r}")
        entry = RegistryEntry(
            name=name,
            builder=builder,
            aliases=tuple(aliases),
            help=help or (inspect.getdoc(builder) or "").split("\n", 1)[0],
        )
        self._entries[name] = entry
        for alias in entry.aliases:
            if alias in self._entries or alias in self._aliases:
                raise ValueError(f"duplicate {self.kind} alias {alias!r}")
            self._aliases[alias] = name

    # ------------------------------------------------------------------
    # Lookup / construction
    # ------------------------------------------------------------------
    def entry(self, name: str) -> RegistryEntry:
        """Resolve ``name`` (canonical or alias) to its entry; KeyError otherwise."""
        canonical = self._aliases.get(name, name)
        try:
            return self._entries[canonical]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; available: {', '.join(self.available())}"
            ) from None

    def get(self, name: str) -> Callable:
        """Return the builder registered under ``name`` (aliases resolve)."""
        return self.entry(name).builder

    def build(self, spec: str, **extra):
        """Parse ``spec`` and call the builder with its arguments plus ``extra``.

        ``extra`` keyword arguments are *contextual* (e.g. the code object a
        noise model is being built for) and are silently dropped when the
        builder does not accept them, so callers can offer context
        unconditionally.
        """
        name, positional, keyword = parse_spec(spec)
        builder = self.get(name)
        merged = self._accepted(builder, extra)
        merged.update(keyword)  # explicit spec arguments beat contextual extras
        return builder(*positional, **merged)

    @staticmethod
    def _accepted(builder: Callable, extra: dict) -> dict:
        """Filter ``extra`` down to the kwargs ``builder`` can accept."""
        if not extra:
            return {}
        try:
            parameters = inspect.signature(builder).parameters
        except (TypeError, ValueError):
            return extra
        if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
            return extra
        accepted = {
            name
            for name, p in parameters.items()
            if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
        }
        return {key: value for key, value in extra.items() if key in accepted}

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def available(self, *, include_aliases: bool = False) -> list[str]:
        """Sorted canonical names (optionally including aliases)."""
        names = list(self._entries)
        if include_aliases:
            names += list(self._aliases)
        return sorted(names)

    def describe(self) -> list[tuple[str, str, str]]:
        """``(name, aliases, help)`` rows for CLI listings."""
        rows = []
        for name in self.available():
            entry = self._entries[name]
            rows.append((name, ", ".join(entry.aliases), entry.help))
        return rows

    def __contains__(self, name: str) -> bool:
        return name in self._entries or name in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self.available())

    def __len__(self) -> int:
        return len(self._entries)
