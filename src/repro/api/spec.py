"""Declarative run configuration: :class:`Budget` and :class:`RunSpec`.

A :class:`RunSpec` is a frozen, JSON/dict-round-trippable description of one
end-to-end run — which code, noise model, scheduler and decoder (all as
registry spec strings), the compute budget, the master seed and the worker
count.  It is the unit of configuration everywhere: the ``repro`` CLI reads
one from flags or a JSON file, :class:`repro.api.Pipeline` executes one, and
experiment sweeps are lists of them.

Because every field that names a component is a registry spec string, a
RunSpec is trivially serialisable and hashable, and sweeping a parameter is
just ``spec.replace(code="surface:d=5")``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Budget", "RunSpec", "canonical_spec"]


@dataclass(frozen=True)
class Budget:
    """Compute budget of one run (evaluation, precision and synthesis knobs).

    ``shots`` is the Monte-Carlo budget per logical basis for the final
    evaluation.  ``synthesis_shots`` / ``iterations_per_step`` /
    ``max_evaluations`` only matter when the scheduler is ``"alphasyndrome"``
    (they bound the MCTS search).

    The precision knobs switch evaluation from fixed-shot to *adaptive*
    mode: with ``target_rse`` set, sampling proceeds chunk by chunk
    (:mod:`repro.parallel`) and stops per basis as soon as the Wilson
    relative error of the observed rate drops to ``target_rse`` (at the
    given two-sided ``confidence``), or when ``max_shots`` — the adaptive
    ceiling, defaulting to ``shots`` — is exhausted.  ``target_rse=None``
    (the default) reproduces fixed-shot results bit for bit.
    """

    shots: int = 2000
    synthesis_shots: int = 300
    iterations_per_step: int = 4
    max_evaluations: int | None = None
    target_rse: float | None = None
    max_shots: int | None = None
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.target_rse is not None and self.target_rse <= 0:
            raise ValueError(f"target_rse must be positive, got {self.target_rse}")
        if self.max_shots is not None and self.max_shots < 0:
            raise ValueError(f"max_shots must be >= 0, got {self.max_shots}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")

    @property
    def adaptive(self) -> bool:
        """True when evaluation should stream chunks through a stopping rule."""
        return self.target_rse is not None

    @property
    def plan_shots(self) -> int:
        """The shot ceiling that fixes an adaptive run's deterministic chunk plan.

        An adaptive run lays out the chunk sizes and per-chunk seed streams
        for ``plan_shots`` up front and consumes a prefix, so any early stop
        is bit-identical to the first chunks of the fixed-shot run at
        ``shots=plan_shots`` (the prefix-reproducibility guarantee).
        """
        return self.max_shots if self.max_shots is not None else self.shots

    def stopping_rule(self):
        """The :class:`repro.analysis.stats.StoppingRule` for this budget."""
        # Imported here so the spec layer stays import-light for CLI startup.
        from repro.analysis.stats import StoppingRule, z_for_confidence

        return StoppingRule(
            max_shots=self.plan_shots,
            target_rse=self.target_rse,
            z=z_for_confidence(self.confidence),
        )

    def replace(self, **changes) -> "Budget":
        """Return a copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """Plain-dict form of the budget (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "Budget":
        """Rebuild a budget from :meth:`to_dict` output.

        Raises
        ------
        ValueError
            If ``payload`` carries keys that are not Budget fields.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown Budget fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True)
class RunSpec:
    """Frozen description of one code/noise/scheduler/decoder run.

    All component fields are registry spec strings (see
    :mod:`repro.api.registry`), e.g. ``code="surface:d=5"`` or
    ``decoder="lookup:max_order=3"``.  ``workers`` > 1 runs the
    sampling/decoding hot path on a process pool; because shards are
    fixed-size chunks with their own seed streams (:mod:`repro.parallel`),
    the results are bit-identical for every worker count.

    ``eval_stage`` optionally names a seeding *stage* for the evaluation
    sampling streams: when set, the pipeline derives its per-basis streams
    from ``named_stream(seed, eval_stage)`` (:mod:`repro.seeding`) instead
    of ``seed`` directly.  The experiment suites set it to ``"evaluation"``
    so their runs consume exactly the stage stream the legacy drivers used,
    keeping suite-backed tables bit-identical to the historical output; the
    default ``None`` keeps the original ``basis_streams(seed)`` derivation.

    ``sampler`` selects the syndrome-sampling backend by registry spec
    string (:data:`repro.api.registries.samplers`): ``"dem"`` (the default
    first-order DEM mechanism sampler, bit-identical to the historical
    behaviour), ``"frames"`` (the batched circuit-level Pauli-frame
    propagator) or ``"tableau"`` / ``"tableau:dense"`` (the per-shot
    reference simulator).  Worker-count invariance and the chunk cache
    apply to every backend: chunk layout and per-chunk seed streams depend
    only on the shot plan, and the sampler spec enters every chunk address.

    ``rounds`` is the number of consecutive noisy syndrome rounds in the
    memory experiment (the paper uses one).  More rounds grow the detector
    volume and give time-varying noise channels (``"drift:..."``) a time
    axis to act on; it is a sweepable axis like any other field.  It is an
    *evaluation* axis only: synthesising schedulers (``"alphasyndrome"``)
    score candidate schedules on the paper's single-round experiment
    regardless of ``rounds`` — a schedule is a per-round object, and one
    search therefore serves every ``rounds`` value (the suites memoise it
    accordingly).
    """

    code: str = "surface:d=3"
    noise: str = "brisbane"
    scheduler: str = "lowest_depth"
    decoder: str = "mwpm"
    budget: Budget = Budget()
    seed: int | None = 0
    workers: int = 1
    eval_stage: str | None = None
    rounds: int = 1
    sampler: str = "dem"

    def __post_init__(self) -> None:
        if isinstance(self.budget, dict):
            object.__setattr__(self, "budget", Budget.from_dict(self.budget))
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def replace(self, **changes) -> "RunSpec":
        """Return a copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def eval_seed(self):
        """Root seed of the evaluation's per-basis stream derivation.

        ``seed`` itself when no ``eval_stage`` is set (the historical
        behaviour), otherwise the independent named stage stream.  The
        result feeds :func:`repro.sim.estimator.basis_streams`.
        """
        if self.eval_stage is None:
            return self.seed
        # Imported here so the spec layer stays import-light for CLI startup.
        from repro.seeding import named_stream

        return named_stream(self.seed, self.eval_stage)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form of the spec, budget nested (inverse of :meth:`from_dict`).

        ``sampler`` is omitted while it holds its default (``"dem"``) — the
        output-side dual of :meth:`from_dict`'s missing-field defaulting.
        Together the two rules mean growing the spec a defaulted field
        never invalidates stored payloads: old chunk-cache addresses, suite
        fingerprints and serve job keys keep matching runs that don't use
        the new field, while any non-default value enters them all.
        """
        payload = dataclasses.asdict(self)
        payload["budget"] = self.budget.to_dict()
        if self.sampler == "dem":
            del payload["sampler"]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Missing fields assume their defaults (which is what lets old
        stored payloads keep matching as the spec grows fields).

        Raises
        ------
        ValueError
            If ``payload`` carries keys that are not RunSpec fields.
        """
        payload = dict(payload)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown RunSpec fields: {sorted(unknown)}")
        budget = payload.get("budget")
        if isinstance(budget, dict):
            payload["budget"] = Budget.from_dict(budget)
        return cls(**payload)

    def to_json(self, *, indent: int | None = 2) -> str:
        """JSON text form of the spec (inverse of :meth:`from_json`)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Parse a spec from :meth:`to_json` text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        """Write the spec as JSON to ``path``; returns the written path."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunSpec":
        """Read a spec previously written with :meth:`save` (or any spec JSON)."""
        return cls.from_json(Path(path).read_text())


def canonical_spec(payload: dict) -> dict:
    """Normalised spec payload used as a resume key (sweeps, suite rows).

    ``workers`` is dropped: it is an execution detail that never changes
    results (the worker-invariance guarantee), so work interrupted on an
    8-core server resumes cleanly on a 1-core laptop.  The payload is
    normalised through a :class:`RunSpec` round trip so rows written before
    a Budget/RunSpec field was introduced keep matching the spec they
    describe (missing fields assume their defaults); unknown or renamed
    fields leave the payload as-is, which simply never matches.
    """
    try:
        payload = RunSpec.from_dict(payload).to_dict()
    except (TypeError, ValueError):
        payload = dict(payload)
    payload.pop("workers", None)
    return payload
