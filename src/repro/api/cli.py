"""The ``repro`` command-line interface.

Subcommands::

    repro run [spec.json] [overrides]   execute a full RunSpec end to end
    repro synth [overrides]             AlphaSyndrome synthesis + comparison
    repro eval [overrides]              evaluate a named scheduler (no search)
    repro sweep [--grid f=v1,v2 ...]    run a spec grid, resumable JSONL output
    repro cache {ls,clear}              inspect / empty the chunk-result cache
    repro list {codes,decoders,noise,schedulers,samplers,all}
    repro experiments {run,ls,render}   declarative paper-table suites
    repro tables {table2,...,all}       legacy spelling of `experiments run`
    repro serve [--workers N ...]       run the distributed execution service
    repro worker --server URL           lease chunks from a server over HTTP
    repro submit [spec.json] [overrides]  submit a RunSpec to a running server
    repro jobs [job_id]                 list / inspect jobs on a running server
    repro import FILE [--dem]           validate a stim text file, show a summary
    repro export [overrides] [--dem]    emit a spec's circuit/DEM as stim text

``import``/``export`` speak stim's circuit and detector-error-model text
formats (:mod:`repro.io`); an imported circuit file runs end to end via the
``stimfile`` code spec (``repro run --code stimfile:PATH``), with the
sampler axis, chunk cache and serve stack applying unchanged.

``worker``/``submit``/``jobs`` find their server via ``--server`` or the
``REPRO_SERVER`` environment variable (default ``http://127.0.0.1:8642``,
the ``repro serve`` default bind).

``run``/``sweep`` accept ``--target-rse`` (with ``--max-shots`` /
``--confidence``) to switch evaluation to adaptive precision-targeted
sampling; adaptive runs resume from — and refine — the content-addressed
chunk cache under ``--cache-dir`` (``repro.cache``).

``run``/``synth``/``eval`` all build a :class:`repro.api.Pipeline`; flags
override fields of the JSON spec when both are given.  ``tables`` wraps the
experiment drivers historically reached via ``python -m repro.experiments``
(which now shares this implementation).

Installed as a console script via the ``[project.scripts]`` table in
``pyproject.toml``; also runnable as ``python -m repro.api.cli``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.api.pipeline import Pipeline
from repro.api.registries import codes, decoders, noise, samplers, schedulers
from repro.api.registry import parse_spec
from repro.api.spec import RunSpec, canonical_spec

__all__ = ["main", "add_budget_flags"]

_REGISTRIES = {
    "codes": codes,
    "decoders": decoders,
    "noise": noise,
    "schedulers": schedulers,
    "samplers": samplers,
}


def add_budget_flags(parser: argparse.ArgumentParser) -> None:
    """Add the shared compute-budget flags (used by ``run``/``synth``/``eval``/``tables``)."""
    parser.add_argument("--shots", type=int, default=None, help="evaluation shots per basis")
    parser.add_argument(
        "--synthesis-shots", type=int, default=None, help="shots used inside MCTS rollouts"
    )
    parser.add_argument(
        "--iterations", type=int, default=None, help="MCTS iterations per scheduling step"
    )
    parser.add_argument(
        "--max-evaluations",
        type=int,
        default=None,
        help="cap on rollout evaluations per partition",
    )
    parser.add_argument(
        "--target-rse",
        type=float,
        default=None,
        help="adaptive mode: stop sampling once the Wilson relative error of "
        "each basis rate reaches this target (e.g. 0.1 for 10%%)",
    )
    parser.add_argument(
        "--max-shots",
        type=int,
        default=None,
        help="adaptive mode: per-basis shot ceiling (defaults to --shots); "
        "also fixes the deterministic chunk plan",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=None,
        help="confidence level of the adaptive stopping rule (default 0.95)",
    )
    parser.add_argument("--seed", type=int, default=None, help="master seed")


def _add_component_flags(parser: argparse.ArgumentParser, *, scheduler: bool = True) -> None:
    parser.add_argument("--code", default=None, help='code spec, e.g. "surface:d=5"')
    parser.add_argument("--noise", default=None, help='noise spec, e.g. "scaled:p=0.001"')
    parser.add_argument("--decoder", default=None, help='decoder spec, e.g. "mwpm"')
    if scheduler:
        parser.add_argument(
            "--scheduler", default=None, help='scheduler spec, e.g. "lowest_depth"'
        )
    parser.add_argument(
        "--workers", type=int, default=None, help="process-pool shards for sampling/decoding"
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="noisy syndrome rounds per memory experiment (default 1; drift "
        "noise channels vary across rounds)",
    )
    parser.add_argument(
        "--sampler",
        default=None,
        help='sampling backend spec, e.g. "dem" (default), "frames", "tableau:dense"',
    )


def _spec_from_args(args: argparse.Namespace, *, base: RunSpec | None = None) -> RunSpec:
    """Assemble the RunSpec: JSON file (if given) overridden by explicit flags."""
    spec_path = getattr(args, "spec", None)
    spec = RunSpec.load(spec_path) if spec_path else (base or RunSpec())
    overrides = {
        field: getattr(args, field)
        for field in (
            "code",
            "noise",
            "scheduler",
            "decoder",
            "seed",
            "workers",
            "rounds",
            "sampler",
        )
        if getattr(args, field, None) is not None
    }
    if overrides:
        spec = spec.replace(**overrides)
    budget_overrides = {
        name: value
        for name, value in (
            ("shots", args.shots),
            ("synthesis_shots", args.synthesis_shots),
            ("iterations_per_step", args.iterations),
            ("max_evaluations", args.max_evaluations),
            ("target_rse", getattr(args, "target_rse", None)),
            ("max_shots", getattr(args, "max_shots", None)),
            ("confidence", getattr(args, "confidence", None)),
        )
        if value is not None
    }
    if budget_overrides:
        spec = spec.replace(budget=spec.budget.replace(**budget_overrides))
    _check_precision_flags(args, spec)
    return spec


def _check_precision_flags(args: argparse.Namespace, spec: RunSpec) -> None:
    """Reject ``--max-shots``/``--confidence`` that would be silently ignored.

    The precision knobs only take effect in adaptive mode
    (``target_rse`` set — by flag, by the spec file, or by a ``--grid``
    axis); accepting them in fixed-shot mode would store them in the spec
    while sampling ``budget.shots`` anyway, a confusing no-op.
    """
    if spec.budget.adaptive:
        return
    grid_fields = {
        _parse_grid_axis(axis)[0] for axis in getattr(args, "grid", None) or []
    }
    if "target_rse" in grid_fields:
        return
    given = [
        flag
        for flag, value in (
            ("--max-shots", getattr(args, "max_shots", None)),
            ("--confidence", getattr(args, "confidence", None)),
        )
        if value is not None
    ]
    given += [
        f"--grid {name}=..." for name in ("max_shots", "confidence") if name in grid_fields
    ]
    if given:
        raise ValueError(
            f"{' and '.join(given)} only take effect with --target-rse "
            "(adaptive mode); set a target (--target-rse or a target_rse "
            "grid axis) or drop them"
        )


#: Default cache directory of `repro run` / `repro sweep` / `repro cache`.
DEFAULT_CACHE_DIR = "results/cache"


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="content-addressed chunk-result cache directory (used by "
        "adaptive runs to resume and refine across processes)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the chunk-result cache for this invocation",
    )


def _cache_from_args(args: argparse.Namespace):
    """The ResultCache an adaptive run should use (None when disabled)."""
    if getattr(args, "no_cache", False) or not getattr(args, "cache_dir", None):
        return None
    from repro.cache import ResultCache

    return ResultCache(args.cache_dir)


def _print_rates(pipeline: Pipeline) -> None:
    rates = pipeline.rates
    print(
        f"{pipeline.spec.code} | scheduler={pipeline.spec.scheduler} "
        f"decoder={pipeline.spec.decoder} noise={pipeline.spec.noise}"
    )
    print(
        f"  depth={pipeline.schedule.depth} shots={rates.shots} "
        f"err_x={rates.error_x:.3e} err_z={rates.error_z:.3e} overall={rates.overall:.3e}"
    )
    report = pipeline.adaptive_report
    if report is not None:
        shots = " ".join(
            f"{basis}={entry['shots']}" for basis, entry in sorted(report["bases"].items())
        )
        print(
            f"  adaptive: target_rse={report['target_rse']} "
            f"converged={report['converged']} shots[{shots}] "
            f"cache_hits={report['cache_hits']} fresh_chunks={report['fresh_chunks']}"
        )


def _write_result(pipeline: Pipeline, out: str | None) -> None:
    if out is None:
        return
    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(pipeline.result.to_dict(), indent=2) + "\n")
    print(f"result written to {path}")


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    pipeline = Pipeline(_spec_from_args(args), cache=_cache_from_args(args))
    _print_rates(pipeline)
    synthesis = pipeline.synthesis
    if synthesis is not None:
        print(
            f"  synthesis: {synthesis.evaluations} rollout evaluations, "
            f"baseline overall {synthesis.baseline_rates.overall:.3e} "
            f"(reduction {synthesis.overall_reduction:.1%})"
        )
    _write_result(pipeline, args.out)
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args, base=RunSpec(scheduler="alphasyndrome"))
    pipeline = Pipeline(spec)
    _print_rates(pipeline)
    synthesis = pipeline.synthesis
    if synthesis is not None:
        print(
            f"  synthesis: {synthesis.evaluations} rollout evaluations, "
            f"baseline overall {synthesis.baseline_rates.overall:.3e} "
            f"(reduction {synthesis.overall_reduction:.1%})"
        )
    print("schedule (tick -> checks):")
    for tick, check_list in sorted(pipeline.schedule.ticks().items()):
        rendered = ", ".join(
            f"S{check.stabilizer}:{check.pauli}@q{check.data_qubit}" for check in check_list
        )
        print(f"  tick {tick:>2}: {rendered}")
    _write_result(pipeline, args.out)
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    scheduler_name = parse_spec(spec.scheduler)[0]
    if scheduler_name in schedulers and schedulers.entry(scheduler_name).name == "alphasyndrome":
        print("eval is for fixed schedulers; use 'repro synth' for AlphaSyndrome", file=sys.stderr)
        return 2
    pipeline = Pipeline(spec)
    _print_rates(pipeline)
    _write_result(pipeline, args.out)
    return 0


#: Budget fields addressable by ``--grid`` (mapped into ``spec.budget``),
#: with the caster each one's values go through.
_GRID_BUDGET_FIELDS = {
    "shots": int,
    "synthesis_shots": int,
    "iterations_per_step": int,
    "max_evaluations": int,
    "target_rse": float,
    "max_shots": int,
    "confidence": float,
}
#: Integer-valued top-level RunSpec fields.
_GRID_INT_FIELDS = ("seed", "workers", "rounds")
#: String-valued top-level RunSpec fields.
_GRID_COMPONENT_FIELDS = ("code", "noise", "scheduler", "decoder", "eval_stage", "sampler")


def _parse_grid_axis(text: str) -> tuple[str, list[str]]:
    """Parse one ``--grid field=v1,v2`` axis.

    Values are split on ``|`` when present, otherwise on ``,`` — the pipe
    form exists for registry specs that themselves contain commas
    (``--grid 'code=bb:l=3,m=3|surface:d=5'``).
    """
    name, separator, values_text = text.partition("=")
    name = name.strip()
    split_on = "|" if "|" in values_text else ","
    values = [value.strip() for value in values_text.split(split_on) if value.strip()]
    if not separator or not name or not values:
        raise ValueError(f"--grid expects FIELD=V1,V2[,...], got {text!r}")
    return name, values


def _apply_grid_value(spec: RunSpec, name: str, value: str) -> RunSpec:
    if name in _GRID_COMPONENT_FIELDS:
        return spec.replace(**{name: value})
    if name in _GRID_INT_FIELDS:
        return spec.replace(**{name: int(value)})
    caster = _GRID_BUDGET_FIELDS.get(name)
    if caster is not None:
        return spec.replace(budget=spec.budget.replace(**{name: caster(value)}))
    valid = ", ".join(
        _GRID_COMPONENT_FIELDS + _GRID_INT_FIELDS + tuple(_GRID_BUDGET_FIELDS)
    )
    raise ValueError(f"unknown --grid field {name!r}; expected one of: {valid}")


def _spec_fingerprint(payload: dict) -> str:
    """Canonical JSON of a spec dict — the resume key of one sweep entry.

    The normalisation (drop ``workers``, round-trip through RunSpec so old
    rows keep matching as fields grow defaults) is shared with the suite
    artifact store via :func:`repro.api.spec.canonical_spec`.
    """
    return json.dumps(canonical_spec(payload), sort_keys=True)


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Run the cartesian grid of specs, appending one JSONL row per run.

    Completed specs already present in ``--out`` are skipped, so an
    interrupted sweep resumes where it stopped (re-running with the same
    flags is idempotent).
    """
    base = _spec_from_args(args)
    specs = [base]
    for axis in args.grid or []:
        name, values = _parse_grid_axis(axis)
        specs = [_apply_grid_value(spec, name, value) for spec in specs for value in values]
    out = Path(args.out)
    done: set[str] = set()
    if out.exists():
        for line in out.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line from an interrupted run; re-run that spec
            if isinstance(payload, dict) and "spec" in payload:
                done.add(_spec_fingerprint(payload["spec"]))
    out.parent.mkdir(parents=True, exist_ok=True)
    cache = _cache_from_args(args)
    ran = skipped = 0
    with out.open("a") as handle:
        for index, spec in enumerate(specs, start=1):
            if _spec_fingerprint(spec.to_dict()) in done:
                skipped += 1
                continue
            pipeline = Pipeline(spec, cache=cache)
            result = pipeline.result
            handle.write(json.dumps(result.to_dict()) + "\n")
            handle.flush()
            ran += 1
            adaptive_note = ""
            if result.adaptive is not None:
                adaptive_note = (
                    f" shots={result.rates.shots}"
                    f" converged={result.adaptive['converged']}"
                    f" cache_hits={result.adaptive['cache_hits']}"
                    f" fresh_chunks={result.adaptive['fresh_chunks']}"
                )
            print(
                f"[{index}/{len(specs)}] {spec.code} scheduler={spec.scheduler} "
                f"decoder={spec.decoder} noise={spec.noise} "
                f"overall={result.rates.overall:.3e}{adaptive_note}"
            )
    print(f"sweep done: {ran} run, {skipped} already in {out}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect (`ls`) or empty (`clear`) the chunk-result cache directory."""
    from repro.cache import ResultCache

    cache = ResultCache(args.dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached chunk(s) from {cache.root}")
        return 0
    entries = cache.entries()
    print(f"{len(entries)} cached chunk(s) in {cache.root}")
    for entry in entries:
        address = entry.get("address", {})
        spec = address.get("spec", {})
        print(
            f"  {entry.get('key', '?')[:12]}  {spec.get('code', '?')} "
            f"decoder={spec.get('decoder', '?')} noise={spec.get('noise', '?')} "
            f"seed={spec.get('seed', '?')} basis={address.get('basis', '?')} "
            f"chunk={address.get('chunk', '?')} shots={entry.get('shots', '?')} "
            f"errors={entry.get('errors', '?')}"
        )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    """List registered components with their spec syntax and help text.

    Each line shows the entry's full spec-string syntax — name plus
    parameter signature with defaults (``biased:p=0.001,eta=10.0,...``) —
    so spec strings are discoverable without reading source.
    """
    categories = list(_REGISTRIES) if args.category == "all" else [args.category]
    for category in categories:
        registry = _REGISTRIES[category]
        print(f"{category} ({len(registry)}):")
        for name in registry.available():
            entry = registry.entry(name)
            alias_note = (
                f" (aliases: {', '.join(entry.aliases)})" if entry.aliases and args.aliases else ""
            )
            help_note = f" - {entry.help}" if entry.help else ""
            print(f"  {entry.spec_syntax}{alias_note}{help_note}")
    return 0


def _suite_config_from_args(args: argparse.Namespace):
    """Build the SuiteConfig for `repro experiments run` / `repro tables`."""
    from repro.experiments.suite import QUICK_BUDGET, SuiteConfig

    if args.target_rse is None and (
        getattr(args, "max_shots", None) is not None
        or getattr(args, "confidence", None) is not None
    ):
        raise ValueError(
            "--max-shots/--confidence only take effect with --target-rse (adaptive mode)"
        )
    overrides = {
        name: value
        for name, value in (
            ("shots", args.shots),
            ("synthesis_shots", args.synthesis_shots),
            ("iterations_per_step", args.iterations),
            ("max_evaluations", args.max_evaluations),
            ("target_rse", args.target_rse),
            ("max_shots", args.max_shots),
            ("confidence", args.confidence),
        )
        if value is not None
    }
    return SuiteConfig(
        budget=QUICK_BUDGET.replace(**overrides),
        seed=args.seed if args.seed is not None else 0,
        quick=getattr(args, "quick", True),
        workers=getattr(args, "workers", None) or 1,
    )


def _run_suites(assets: list[str], args: argparse.Namespace, *, resume: bool = True) -> int:
    """Shared executor of `repro experiments run` and `repro tables`."""
    from repro.experiments.__main__ import run_assets
    from repro.experiments.suite import SuiteRowError

    try:
        run_assets(
            assets,
            _suite_config_from_args(args),
            args.out,
            cache=_cache_from_args(args),
            resume=resume,
            server=getattr(args, "suite_server", None),
        )
    except SuiteRowError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    """The `repro experiments {run,ls,render}` suite surface."""
    # Imported lazily so `repro list` / `repro run` never pay for the
    # experiment-suite imports (importing the package registers the suites).
    from repro.experiments import available_suites
    from repro.experiments.artifacts import ArtifactStore

    if args.action == "ls":
        from repro.experiments.suite import SUITES

        print(f"experiment suites ({len(SUITES)}):")
        for name in available_suites():
            print(f"  {name} - {SUITES[name].help}")
        return 0
    names = available_suites() if args.suite == "all" else [args.suite]
    unknown = [name for name in names if name not in available_suites()]
    if unknown:
        print(
            f"unknown suite {unknown[0]!r}; available: "
            f"{', '.join(available_suites())}, all",
            file=sys.stderr,
        )
        return 2
    if args.action == "render":
        store = ArtifactStore(args.out)
        status = 0
        for name in names:
            rows = store.latest_rows(name)
            if not rows:
                print(f"no stored rows for {name!r} in {store.rows_path(name)}", file=sys.stderr)
                status = 2
                continue
            text_path, json_path = store.render(name, rows)
            print(f"{name}: {len(rows)} rows rendered to {text_path} and {json_path}")
        return status
    return _run_suites(names, args, resume=not args.fresh)


#: Default endpoint of `repro submit` / `repro jobs` (overridden by
#: ``--server`` or the ``REPRO_SERVER`` environment variable).
DEFAULT_SERVER = "http://127.0.0.1:8642"


def _add_server_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--server",
        default=None,
        help=f"serve endpoint (default: $REPRO_SERVER or {DEFAULT_SERVER})",
    )


def _client_from_args(args: argparse.Namespace):
    """The ServeClient for ``--server`` / ``$REPRO_SERVER`` (lazy import)."""
    from repro.serve.client import ServeClient

    return ServeClient(args.server or os.environ.get("REPRO_SERVER") or DEFAULT_SERVER)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the serve daemon in the foreground (`repro serve`)."""
    from repro.serve.__main__ import config_from_args, run_server

    return run_server(config_from_args(args))


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run a remote worker against a serve endpoint (`repro worker`)."""
    from repro.serve.remote import main as worker_main

    argv = ["--server", args.server or os.environ.get("REPRO_SERVER") or DEFAULT_SERVER]
    if args.worker_id:
        argv += ["--worker-id", args.worker_id]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    argv += ["--poll-interval", str(args.poll_interval)]
    if args.max_idle is not None:
        argv += ["--max-idle", str(args.max_idle)]
    if args.throttle:
        argv += ["--throttle", str(args.throttle)]
    return worker_main(argv)


def _format_progress(event: dict) -> str:
    rse = event.get("rse")
    rse_note = f" rse={rse:.3f}" if isinstance(rse, float) else ""
    converged = " converged" if event.get("converged") else ""
    return (
        f"  {event.get('basis', '?')}: chunk {event.get('chunks_done', 0)}"
        f"/{event.get('chunks_planned', 0)} shots={event.get('shots', 0)} "
        f"errors={event.get('errors', 0)} rate={event.get('rate', 0.0):.3e}"
        f"{rse_note}{converged}"
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit a RunSpec to a running server; stream progress until done."""
    from repro.serve.client import ServeError

    client = _client_from_args(args)
    spec = _spec_from_args(args)
    try:
        submitted = client.submit(spec, priority=args.priority)
    except (ConnectionError, OSError) as error:
        print(
            f"error: cannot reach {client.base_url} ({error}); "
            "start a server with `repro serve`",
            file=sys.stderr,
        )
        return 2
    job = submitted["job"]
    note = "coalesced into" if submitted["coalesced"] else "queued as"
    print(f"{note} job {job['id']} (state={job['state']})")
    if args.no_wait:
        return 0
    result = None
    try:
        for event in client.events(job["id"]):
            kind = event.get("event")
            if kind == "progress":
                print(_format_progress(event))
            elif kind == "done":
                result = event["result"]
            elif kind == "failed":
                print(f"error: job failed: {event.get('error')}", file=sys.stderr)
                return 1
            elif kind == "job" and event["job"]["state"] == "done":
                result = client.result(job["id"], timeout=5.0)
    except ServeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if result is None:  # stream ended without a terminal event
        result = client.result(job["id"], timeout=args.timeout)
    print(
        f"{result['spec']['code']} | scheduler={result['spec']['scheduler']} "
        f"decoder={result['spec']['decoder']} noise={result['spec']['noise']}"
    )
    print(
        f"  depth={result['depth']} shots={result['shots']} "
        f"err_x={result['error_x']:.3e} err_z={result['error_z']:.3e} "
        f"overall={result['overall']:.3e}"
    )
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2) + "\n")
        print(f"result written to {path}")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    """List jobs on a running server, or show one job's full summary."""
    client = _client_from_args(args)
    try:
        if args.job_id:
            print(json.dumps(client.job(args.job_id), indent=2))
            return 0
        summaries = client.jobs()
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach {client.base_url} ({error})", file=sys.stderr)
        return 2
    print(f"{len(summaries)} job(s) on {client.base_url}")
    for job in summaries:
        spec = job["spec"]
        progress = job["progress"]
        chunks_done = sum(basis["chunks_done"] for basis in progress.values())
        chunks_planned = sum(basis["chunks_planned"] for basis in progress.values())
        print(
            f"  {job['id']}  {job['state']:>7}  prio={job['priority']} "
            f"subs={job['submissions']} chunks={chunks_done}/{chunks_planned}  "
            f"{spec['code']} decoder={spec['decoder']} noise={spec['noise']} "
            f"seed={spec['seed']}"
        )
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    """Parse a stim text file, print a summary, optionally re-emit it.

    Parsing is the validation: a malformed or unsupported file raises
    :class:`~repro.io.StimFormatError` (naming the file and line), which
    :func:`main` turns into a one-line ``error:`` message and exit status 2.
    ``--out`` writes the parsed object back out in normal form (aliases
    canonicalised, REPEAT blocks flattened).
    """
    from repro.io import emit_stim_circuit, emit_stim_dem, load_stim_circuit, load_stim_dem

    if args.dem:
        dem = load_stim_dem(args.file)
        print(
            f"{args.file}: DEM with {dem.num_detectors} detector(s), "
            f"{dem.num_observables} observable(s), {dem.num_mechanisms} mechanism(s)"
        )
        text = emit_stim_dem(dem)
    else:
        circuit = load_stim_circuit(args.file)
        print(
            f"{args.file}: {circuit.num_qubits} qubit(s), "
            f"{len(circuit.instructions)} instruction(s), "
            f"{circuit.num_measurements} measurement(s), "
            f"{circuit.num_detectors} detector(s), "
            f"{circuit.num_observables} observable(s), {circuit.num_ticks} tick(s)"
        )
        print(f"  run it: repro run --code stimfile:{args.file}")
        text = emit_stim_circuit(circuit)
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        print(f"normal form written to {path}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    """Emit a spec's generated circuit (or its DEM) as stim text.

    Builds the :class:`Pipeline` exactly as ``repro run`` would and writes
    the chosen basis artifact to ``--out``, or to stdout when no ``--out``
    is given (for piping).  The exported circuit re-imports bit-exactly:
    running it via ``--code stimfile:PATH`` reproduces the original run's
    ``error_x`` (both consume the first per-basis seed stream).
    """
    from repro.io import emit_stim_circuit, emit_stim_dem

    pipeline = Pipeline(_spec_from_args(args))
    artifact = pipeline.dem[args.basis] if args.dem else pipeline.circuit[args.basis]
    text = emit_stim_dem(artifact) if args.dem else emit_stim_circuit(artifact)
    if args.out is None:
        sys.stdout.write(text)
        return 0
    path = Path(args.out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    kind = "DEM" if args.dem else "circuit"
    print(f"basis-{args.basis} {kind} for {pipeline.spec.code} written to {path}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    """Legacy spelling of `repro experiments run` (quick budgets, same stack)."""
    from repro.experiments import available_suites

    if args.asset != "all" and args.asset not in available_suites():
        print(
            f"unknown asset {args.asset!r}; available: "
            f"{', '.join(available_suites())}, all",
            file=sys.stderr,
        )
        return 2
    assets = available_suites() if args.asset == "all" else [args.asset]
    return _run_suites(assets, args)


# ----------------------------------------------------------------------
# Parser assembly
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Assemble the full ``repro`` argument parser (every subcommand wired)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AlphaSyndrome reproduction: schedule synthesis, evaluation and discovery.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="execute a full RunSpec end to end")
    run_parser.add_argument("spec", nargs="?", default=None, help="path to a RunSpec JSON file")
    _add_component_flags(run_parser)
    add_budget_flags(run_parser)
    _add_cache_flags(run_parser)
    run_parser.add_argument("--out", default=None, help="write the RunResult JSON here")
    run_parser.set_defaults(func=_cmd_run)

    synth_parser = subparsers.add_parser("synth", help="synthesise a schedule with AlphaSyndrome")
    synth_parser.add_argument("spec", nargs="?", default=None, help="path to a RunSpec JSON file")
    _add_component_flags(synth_parser, scheduler=False)
    synth_parser.set_defaults(scheduler=None)
    add_budget_flags(synth_parser)
    synth_parser.add_argument("--out", default=None, help="write the RunResult JSON here")
    synth_parser.set_defaults(func=_cmd_synth)

    eval_parser = subparsers.add_parser("eval", help="evaluate a fixed scheduler (no search)")
    eval_parser.add_argument("spec", nargs="?", default=None, help="path to a RunSpec JSON file")
    _add_component_flags(eval_parser)
    add_budget_flags(eval_parser)
    eval_parser.add_argument("--out", default=None, help="write the RunResult JSON here")
    eval_parser.set_defaults(func=_cmd_eval)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a grid of RunSpecs with resumable JSONL output"
    )
    sweep_parser.add_argument("spec", nargs="?", default=None, help="base RunSpec JSON file")
    _add_component_flags(sweep_parser)
    add_budget_flags(sweep_parser)
    sweep_parser.add_argument(
        "--grid",
        action="append",
        metavar="FIELD=V1,V2",
        help="sweep axis (repeatable; axes combine as a cartesian product); "
        "values split on ',' or on '|' for specs containing commas",
    )
    sweep_parser.add_argument(
        "--out", default="results/sweep.jsonl", help="JSONL output (appended; resumable)"
    )
    _add_cache_flags(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the chunk-result cache"
    )
    cache_parser.add_argument("action", choices=["ls", "clear"], help="what to do")
    cache_parser.add_argument(
        "--dir", default=DEFAULT_CACHE_DIR, help="cache directory to operate on"
    )
    cache_parser.set_defaults(func=_cmd_cache)

    list_parser = subparsers.add_parser("list", help="list registered components")
    list_parser.add_argument(
        "category", choices=sorted(_REGISTRIES) + ["all"], help="which registry to list"
    )
    list_parser.add_argument("--aliases", action="store_true", help="also show aliases")
    list_parser.set_defaults(func=_cmd_list)

    experiments_parser = subparsers.add_parser(
        "experiments", help="declarative paper-table suites (run/ls/render)"
    )
    experiments_sub = experiments_parser.add_subparsers(dest="action", required=True)

    exp_run = experiments_sub.add_parser(
        "run", help="execute a suite through the Pipeline/cache/adaptive stack"
    )
    # Suite names are validated at run time (lazy import keeps `repro --help`
    # fast); `all` runs every registered suite through one shared runner.
    exp_run.add_argument("suite", help="table2|table3|table4|figure7|...|all")
    scale = exp_run.add_mutually_exclusive_group()
    scale.add_argument(
        "--quick",
        dest="quick",
        action="store_true",
        default=True,
        help="quick instance subsets and laptop-sized budgets (default)",
    )
    scale.add_argument(
        "--full",
        dest="quick",
        action="store_false",
        help="the full paper instance lists",
    )
    exp_run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width for sampling/decoding and synthesis rollouts "
        "(never changes any number)",
    )
    add_budget_flags(exp_run)
    _add_cache_flags(exp_run)
    exp_run.add_argument(
        "--fresh",
        action="store_true",
        help="ignore rows already in the artifact store (re-run everything)",
    )
    exp_run.add_argument(
        "--server",
        dest="suite_server",
        default=None,
        help="run cells as jobs on this `repro serve` endpoint instead of in-process",
    )
    exp_run.add_argument("--out", default="results", help="artifact-store directory")
    exp_run.set_defaults(func=_cmd_experiments)

    exp_ls = experiments_sub.add_parser("ls", help="list the registered suites")
    exp_ls.set_defaults(func=_cmd_experiments)

    exp_render = experiments_sub.add_parser(
        "render", help="re-render text/JSON views from the stored JSONL rows"
    )
    exp_render.add_argument("suite", help="suite name or 'all'")
    exp_render.add_argument("--out", default="results", help="artifact-store directory")
    exp_render.set_defaults(func=_cmd_experiments)

    serve_parser = subparsers.add_parser(
        "serve", help="run the distributed execution service (HTTP job queue)"
    )
    # Flags live next to the daemon so `python -m repro.serve` stays in sync.
    from repro.serve.__main__ import add_serve_flags

    add_serve_flags(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)

    worker_parser = subparsers.add_parser(
        "worker", help="lease and execute chunks from a `repro serve` endpoint over HTTP"
    )
    # Flags live next to the standalone worker so `python -m
    # repro.serve.remote` stays in sync.
    from repro.serve.remote import add_worker_flags

    add_worker_flags(worker_parser)
    worker_parser.set_defaults(func=_cmd_worker)

    submit_parser = subparsers.add_parser(
        "submit", help="submit a RunSpec to a running `repro serve` endpoint"
    )
    submit_parser.add_argument(
        "spec", nargs="?", default=None, help="path to a RunSpec JSON file"
    )
    _add_component_flags(submit_parser)
    add_budget_flags(submit_parser)
    _add_server_flag(submit_parser)
    submit_parser.add_argument(
        "--priority", type=int, default=0, help="queue priority (higher runs first)"
    )
    submit_parser.add_argument(
        "--no-wait",
        action="store_true",
        help="return after queueing instead of streaming progress",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=600.0, help="seconds to wait for the result"
    )
    submit_parser.add_argument("--out", default=None, help="write the RunResult JSON here")
    submit_parser.set_defaults(func=_cmd_submit)

    jobs_parser = subparsers.add_parser(
        "jobs", help="list or inspect jobs on a running `repro serve` endpoint"
    )
    jobs_parser.add_argument(
        "job_id", nargs="?", default=None, help="show this job's full summary"
    )
    _add_server_flag(jobs_parser)
    jobs_parser.set_defaults(func=_cmd_jobs)

    import_parser = subparsers.add_parser(
        "import", help="validate a stim circuit/DEM text file and show a summary"
    )
    import_parser.add_argument("file", help="path to a stim .stim (or --dem .dem) text file")
    import_parser.add_argument(
        "--dem",
        action="store_true",
        help="parse as a detector error model instead of a circuit",
    )
    import_parser.add_argument(
        "--out", default=None, help="also write the parsed object back out in normal form"
    )
    import_parser.set_defaults(func=_cmd_import)

    export_parser = subparsers.add_parser(
        "export", help="emit a spec's generated circuit or DEM as stim text"
    )
    export_parser.add_argument(
        "spec", nargs="?", default=None, help="path to a RunSpec JSON file"
    )
    _add_component_flags(export_parser)
    add_budget_flags(export_parser)
    export_parser.add_argument(
        "--basis", choices=("Z", "X"), default="Z", help="which basis artifact to export"
    )
    export_parser.add_argument(
        "--dem",
        action="store_true",
        help="export the detector error model instead of the circuit",
    )
    export_parser.add_argument(
        "--out", default=None, help="output file (default: stdout, for piping)"
    )
    export_parser.set_defaults(func=_cmd_export)

    tables_parser = subparsers.add_parser(
        "tables", help="regenerate the paper's tables and figures (alias of `experiments run`)"
    )
    # Asset names are validated against the suite registry at run time
    # (lazy import keeps `repro --help` fast); `all` regenerates everything.
    tables_parser.add_argument("asset", help="table2|table3|table4|figure7|figure12|...|all")
    add_budget_flags(tables_parser)
    _add_cache_flags(tables_parser)
    tables_parser.add_argument("--out", default="results", help="output directory")
    tables_parser.set_defaults(func=_cmd_tables)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Console-script entry point.

    Parses ``argv`` (default: ``sys.argv[1:]``), dispatches to the chosen
    subcommand and returns its exit status; user errors (unknown specs,
    bad flag combinations, missing files) print one-line messages and
    return 2 instead of raising.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError, TypeError) as error:
        # Registry lookups raise KeyError with the available names; spec
        # parsing raises ValueError; builders raise TypeError on arguments
        # they cannot accept (e.g. a positional arg to a keyword-only
        # builder).  All are user errors, not crashes.
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # A downstream consumer (`repro cache ls | head`) closed the pipe
        # mid-print.  Point stdout at devnull so the interpreter's exit
        # flush cannot raise again, and exit with the SIGPIPE convention.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE


if __name__ == "__main__":
    raise SystemExit(main())
