"""The ``repro`` command-line interface.

Subcommands::

    repro run [spec.json] [overrides]   execute a full RunSpec end to end
    repro synth [overrides]             AlphaSyndrome synthesis + comparison
    repro eval [overrides]              evaluate a named scheduler (no search)
    repro list {codes,decoders,noise,schedulers,all}
    repro tables {table2,...,all}       regenerate the paper's tables/figures

``run``/``synth``/``eval`` all build a :class:`repro.api.Pipeline`; flags
override fields of the JSON spec when both are given.  ``tables`` wraps the
experiment drivers historically reached via ``python -m repro.experiments``
(which now shares this implementation).

Installed as a console script via the ``[project.scripts]`` table in
``pyproject.toml``; also runnable as ``python -m repro.api.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.api.pipeline import Pipeline
from repro.api.registries import codes, decoders, noise, schedulers
from repro.api.registry import parse_spec
from repro.api.spec import RunSpec

__all__ = ["main", "add_budget_flags"]

_REGISTRIES = {
    "codes": codes,
    "decoders": decoders,
    "noise": noise,
    "schedulers": schedulers,
}


def add_budget_flags(parser: argparse.ArgumentParser) -> None:
    """Add the shared compute-budget flags (used by ``run``/``synth``/``eval``/``tables``)."""
    parser.add_argument("--shots", type=int, default=None, help="evaluation shots per basis")
    parser.add_argument(
        "--synthesis-shots", type=int, default=None, help="shots used inside MCTS rollouts"
    )
    parser.add_argument(
        "--iterations", type=int, default=None, help="MCTS iterations per scheduling step"
    )
    parser.add_argument(
        "--max-evaluations",
        type=int,
        default=None,
        help="cap on rollout evaluations per partition",
    )
    parser.add_argument("--seed", type=int, default=None, help="master seed")


def _add_component_flags(parser: argparse.ArgumentParser, *, scheduler: bool = True) -> None:
    parser.add_argument("--code", default=None, help='code spec, e.g. "surface:d=5"')
    parser.add_argument("--noise", default=None, help='noise spec, e.g. "scaled:p=0.001"')
    parser.add_argument("--decoder", default=None, help='decoder spec, e.g. "mwpm"')
    if scheduler:
        parser.add_argument(
            "--scheduler", default=None, help='scheduler spec, e.g. "lowest_depth"'
        )
    parser.add_argument(
        "--workers", type=int, default=None, help="process-pool shards for sampling/decoding"
    )


def _spec_from_args(args: argparse.Namespace, *, base: RunSpec | None = None) -> RunSpec:
    """Assemble the RunSpec: JSON file (if given) overridden by explicit flags."""
    spec_path = getattr(args, "spec", None)
    spec = RunSpec.load(spec_path) if spec_path else (base or RunSpec())
    overrides = {
        field: getattr(args, field)
        for field in ("code", "noise", "scheduler", "decoder", "seed", "workers")
        if getattr(args, field, None) is not None
    }
    if overrides:
        spec = spec.replace(**overrides)
    budget_overrides = {
        name: value
        for name, value in (
            ("shots", args.shots),
            ("synthesis_shots", args.synthesis_shots),
            ("iterations_per_step", args.iterations),
            ("max_evaluations", args.max_evaluations),
        )
        if value is not None
    }
    if budget_overrides:
        spec = spec.replace(budget=spec.budget.replace(**budget_overrides))
    return spec


def _print_rates(pipeline: Pipeline) -> None:
    rates = pipeline.rates
    print(
        f"{pipeline.spec.code} | scheduler={pipeline.spec.scheduler} "
        f"decoder={pipeline.spec.decoder} noise={pipeline.spec.noise}"
    )
    print(
        f"  depth={pipeline.schedule.depth} shots={rates.shots} "
        f"err_x={rates.error_x:.3e} err_z={rates.error_z:.3e} overall={rates.overall:.3e}"
    )


def _write_result(pipeline: Pipeline, out: str | None) -> None:
    if out is None:
        return
    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(pipeline.result.to_dict(), indent=2) + "\n")
    print(f"result written to {path}")


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    pipeline = Pipeline(_spec_from_args(args))
    _print_rates(pipeline)
    synthesis = pipeline.synthesis
    if synthesis is not None:
        print(
            f"  synthesis: {synthesis.evaluations} rollout evaluations, "
            f"baseline overall {synthesis.baseline_rates.overall:.3e} "
            f"(reduction {synthesis.overall_reduction:.1%})"
        )
    _write_result(pipeline, args.out)
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args, base=RunSpec(scheduler="alphasyndrome"))
    pipeline = Pipeline(spec)
    _print_rates(pipeline)
    synthesis = pipeline.synthesis
    if synthesis is not None:
        print(
            f"  synthesis: {synthesis.evaluations} rollout evaluations, "
            f"baseline overall {synthesis.baseline_rates.overall:.3e} "
            f"(reduction {synthesis.overall_reduction:.1%})"
        )
    print("schedule (tick -> checks):")
    for tick, check_list in sorted(pipeline.schedule.ticks().items()):
        rendered = ", ".join(
            f"S{check.stabilizer}:{check.pauli}@q{check.data_qubit}" for check in check_list
        )
        print(f"  tick {tick:>2}: {rendered}")
    _write_result(pipeline, args.out)
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    scheduler_name = parse_spec(spec.scheduler)[0]
    if scheduler_name in schedulers and schedulers.entry(scheduler_name).name == "alphasyndrome":
        print("eval is for fixed schedulers; use 'repro synth' for AlphaSyndrome", file=sys.stderr)
        return 2
    pipeline = Pipeline(spec)
    _print_rates(pipeline)
    _write_result(pipeline, args.out)
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    categories = list(_REGISTRIES) if args.category == "all" else [args.category]
    for category in categories:
        registry = _REGISTRIES[category]
        print(f"{category} ({len(registry)}):")
        for name, aliases, help_text in registry.describe():
            alias_note = f" (aliases: {aliases})" if aliases and args.aliases else ""
            help_note = f" - {help_text}" if help_text else ""
            print(f"  {name}{alias_note}{help_note}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    # Imported lazily so `repro list` / `repro run` never pay for the
    # experiment-driver imports.
    from repro.experiments import EXPERIMENTS, ExperimentBudget
    from repro.experiments.__main__ import run_assets

    budget = ExperimentBudget()
    if args.shots is not None:
        budget.shots = args.shots
    if args.synthesis_shots is not None:
        budget.synthesis_shots = args.synthesis_shots
    if args.iterations is not None:
        budget.iterations_per_step = args.iterations
    if args.max_evaluations is not None:
        budget.max_evaluations = args.max_evaluations
    if args.seed is not None:
        budget.seed = args.seed
    if args.asset != "all" and args.asset not in EXPERIMENTS:
        print(
            f"unknown asset {args.asset!r}; available: {', '.join(sorted(EXPERIMENTS))}, all",
            file=sys.stderr,
        )
        return 2
    assets = sorted(EXPERIMENTS) if args.asset == "all" else [args.asset]
    run_assets(assets, budget, args.out)
    return 0


# ----------------------------------------------------------------------
# Parser assembly
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AlphaSyndrome reproduction: schedule synthesis, evaluation and discovery.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="execute a full RunSpec end to end")
    run_parser.add_argument("spec", nargs="?", default=None, help="path to a RunSpec JSON file")
    _add_component_flags(run_parser)
    add_budget_flags(run_parser)
    run_parser.add_argument("--out", default=None, help="write the RunResult JSON here")
    run_parser.set_defaults(func=_cmd_run)

    synth_parser = subparsers.add_parser("synth", help="synthesise a schedule with AlphaSyndrome")
    synth_parser.add_argument("spec", nargs="?", default=None, help="path to a RunSpec JSON file")
    _add_component_flags(synth_parser, scheduler=False)
    synth_parser.set_defaults(scheduler=None)
    add_budget_flags(synth_parser)
    synth_parser.add_argument("--out", default=None, help="write the RunResult JSON here")
    synth_parser.set_defaults(func=_cmd_synth)

    eval_parser = subparsers.add_parser("eval", help="evaluate a fixed scheduler (no search)")
    eval_parser.add_argument("spec", nargs="?", default=None, help="path to a RunSpec JSON file")
    _add_component_flags(eval_parser)
    add_budget_flags(eval_parser)
    eval_parser.add_argument("--out", default=None, help="write the RunResult JSON here")
    eval_parser.set_defaults(func=_cmd_eval)

    list_parser = subparsers.add_parser("list", help="list registered components")
    list_parser.add_argument(
        "category", choices=sorted(_REGISTRIES) + ["all"], help="which registry to list"
    )
    list_parser.add_argument("--aliases", action="store_true", help="also show aliases")
    list_parser.set_defaults(func=_cmd_list)

    tables_parser = subparsers.add_parser(
        "tables", help="regenerate the paper's tables and figures"
    )
    # Asset names are validated against the experiment registry at run time
    # (lazy import keeps `repro --help` fast); `all` regenerates everything.
    tables_parser.add_argument("asset", help="table2|table3|table4|figure7|figure12|...|all")
    add_budget_flags(tables_parser)
    tables_parser.add_argument("--out", default="results", help="output directory")
    tables_parser.set_defaults(func=_cmd_tables)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError, TypeError) as error:
        # Registry lookups raise KeyError with the available names; spec
        # parsing raises ValueError; builders raise TypeError on arguments
        # they cannot accept (e.g. a positional arg to a keyword-only
        # builder).  All are user errors, not crashes.
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
