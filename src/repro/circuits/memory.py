"""Memory-experiment circuit generation (the paper's Figure 10 protocol).

For a given code, schedule, noise model and logical basis the generated
circuit is:

1. reset all data qubits;
2. measure every logical operator of the chosen basis with a fresh ancilla
   (noiseless);
3. one *noiseless* reference syndrome-measurement round, which projects the
   state into a definite stabilizer eigenstate and provides the reference
   values against which the noisy round is compared;
4. one *noisy* syndrome-measurement round laid out by the schedule under
   test (hook, idle and gate errors injected here), with a ``DETECTOR`` per
   stabilizer comparing it against the reference round;
5. one *noiseless* syndrome-measurement round ("ideal error correction"),
   with a ``DETECTOR`` per stabilizer comparing it against the noisy round;
6. measure every logical operator again (noiseless) and declare an
   ``OBSERVABLE`` per logical operator as the parity of its two readouts.

Measuring the logical *Z* operators detects logical *X* errors (the paper's
``Err_X``) and vice versa, so the overall logical error rate combines the
two bases exactly as in Section 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.builder import (
    ancilla_qubits,
    append_logical_measurement,
    append_syndrome_round,
)
from repro.circuits.circuit import Circuit
from repro.codes.base import StabilizerCode
from repro.noise.models import NoiseModel
from repro.scheduling.schedule import Schedule

__all__ = ["MemoryExperiment", "build_memory_experiment"]


@dataclass
class MemoryExperiment:
    """A generated memory-experiment circuit plus its bookkeeping."""

    circuit: Circuit
    code: StabilizerCode
    schedule: Schedule
    basis: str
    noisy_round_measurements: dict[int, int]
    ideal_round_measurements: dict[int, int]
    observable_pairs: list[tuple[int, int]]

    @property
    def num_observables(self) -> int:
        return len(self.observable_pairs)


def build_memory_experiment(
    code: StabilizerCode,
    schedule: Schedule,
    noise: "NoiseModel | object",
    *,
    basis: str = "Z",
    noisy_rounds: int = 1,
) -> MemoryExperiment:
    """Build the Figure 10 sampling circuit.

    Parameters
    ----------
    basis:
        ``"Z"`` measures the logical Z operators (sensitive to logical X
        errors), ``"X"`` measures the logical X operators (sensitive to
        logical Z errors).
    noisy_rounds:
        Number of consecutive noisy syndrome rounds to insert between the
        logical readouts (the paper uses one; more rounds are useful for
        stress tests and ablations).  A detector is declared between every
        pair of consecutive rounds and between the last noisy round and the
        ideal round.
    """
    if basis not in ("Z", "X"):
        raise ValueError("basis must be 'Z' or 'X'")
    if noisy_rounds < 1:
        raise ValueError("need at least one noisy round")
    logicals = code.logical_zs if basis == "Z" else code.logical_xs

    circuit = Circuit()
    circuit.reset(*range(code.num_qubits))

    # Logical readout ancillas sit after the syndrome ancillas.
    first_logical_ancilla = code.num_qubits + code.num_stabilizers
    initial_readouts: list[int] = []
    for index, logical in enumerate(logicals):
        measurement = append_logical_measurement(
            circuit, code, logical, first_logical_ancilla + index
        )
        initial_readouts.append(measurement)
    circuit.tick()

    reference_record = append_syndrome_round(circuit, code, schedule, noise=None)
    previous_round = reference_record
    noisy_record = None
    for round_index in range(noisy_rounds):
        record = append_syndrome_round(
            circuit, code, schedule, noise=noise, round_index=round_index
        )
        for stabilizer, measurement in record.measurements.items():
            circuit.detector([previous_round.measurements[stabilizer], measurement])
        previous_round = record
        noisy_record = record

    ideal_record = append_syndrome_round(circuit, code, schedule, noise=None)
    for stabilizer, measurement in ideal_record.measurements.items():
        circuit.detector([previous_round.measurements[stabilizer], measurement])

    final_readouts: list[int] = []
    for index, logical in enumerate(logicals):
        measurement = append_logical_measurement(
            circuit, code, logical, first_logical_ancilla + index
        )
        final_readouts.append(measurement)

    observable_pairs = list(zip(initial_readouts, final_readouts))
    for observable_index, (first, second) in enumerate(observable_pairs):
        circuit.observable(observable_index, [first, second])

    # The logical ancillas appear before the syndrome ancillas in the
    # instruction stream, but index allocation guarantees they never clash.
    _ = ancilla_qubits(code)
    return MemoryExperiment(
        circuit=circuit,
        code=code,
        schedule=schedule,
        basis=basis,
        noisy_round_measurements=dict(noisy_record.measurements),
        ideal_round_measurements=dict(ideal_record.measurements),
        observable_pairs=observable_pairs,
    )
