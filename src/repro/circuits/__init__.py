"""Circuit IR and circuit builders for syndrome-measurement experiments."""

from repro.circuits.builder import (
    SyndromeRoundRecord,
    ancilla_qubits,
    append_logical_measurement,
    append_syndrome_round,
)
from repro.circuits.circuit import Circuit, Instruction
from repro.circuits.memory import MemoryExperiment, build_memory_experiment

__all__ = [
    "Circuit",
    "Instruction",
    "SyndromeRoundRecord",
    "ancilla_qubits",
    "append_logical_measurement",
    "append_syndrome_round",
    "MemoryExperiment",
    "build_memory_experiment",
]
