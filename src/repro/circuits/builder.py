"""Builders that turn a :class:`~repro.scheduling.schedule.Schedule` into circuits.

Two building blocks are provided:

* :func:`append_logical_measurement` — ancilla-mediated measurement of an
  arbitrary Pauli operator (used for the logical-operator readouts at the
  start and end of the paper's Figure 10 sampling circuit);
* :func:`append_syndrome_round` — one full syndrome-measurement round that
  executes every Pauli check at the tick chosen by the schedule, optionally
  injecting the circuit-level noise model (two-qubit depolarizing after each
  check, single-qubit depolarizing on every idling qubit per tick,
  measurement/reset flips when configured).

Ancilla-as-control convention: every Pauli check is implemented as a
controlled-Pauli with the ancilla (prepared in ``|+>`` and read out in the X
basis) as control and the data qubit as target.  For Z checks this is the
textbook phase-kickback circuit; it is local-Clifford equivalent to the
CNOT-based circuits of the paper's Figure 4, and has the same hook-error
behaviour: an X (or Y) error on the ancilla propagates the stabilizer's
Pauli letter onto every data qubit whose check has not yet executed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.codes.base import StabilizerCode
from repro.noise.models import NoiseModel
from repro.pauli import PauliString
from repro.scheduling.schedule import Schedule

__all__ = [
    "SyndromeRoundRecord",
    "append_logical_measurement",
    "append_syndrome_round",
    "ancilla_qubits",
]


@dataclass
class SyndromeRoundRecord:
    """Measurement-record bookkeeping for one syndrome round.

    ``measurements[s]`` is the measurement-record index of stabilizer ``s``'s
    ancilla readout in this round.
    """

    measurements: dict[int, int]


def ancilla_qubits(code: StabilizerCode) -> list[int]:
    """Ancilla qubit indices used for syndrome measurement (one per stabilizer)."""
    return [code.num_qubits + s for s in range(code.num_stabilizers)]


def append_logical_measurement(
    circuit: Circuit,
    code: StabilizerCode,
    operator: PauliString,
    ancilla: int,
) -> int:
    """Measure ``operator`` via ``ancilla``; returns the measurement index.

    The measurement is noiseless (the paper's logical readouts are ideal and
    only the syndrome round under study carries noise).
    """
    circuit.reset(ancilla, basis="X")
    for qubit in operator.support:
        circuit.cpauli(ancilla, qubit, operator.pauli_at(qubit))
    return circuit.measure(ancilla, basis="X")[0]


def append_syndrome_round(
    circuit: Circuit,
    code: StabilizerCode,
    schedule: Schedule,
    *,
    noise: NoiseModel | None = None,
    idle_data_qubits: bool = True,
) -> SyndromeRoundRecord:
    """Append one syndrome-measurement round laid out according to ``schedule``.

    Parameters
    ----------
    noise:
        When provided, two-qubit depolarizing noise follows every Pauli
        check, idling depolarizing noise is applied per tick, and
        measurement / reset flips are injected as configured.  ``None``
        produces a noiseless round.
    idle_data_qubits:
        Apply idle noise to data qubits that are not touched during a tick
        (the paper's model); ancillas idle between their first and last
        scheduled tick.
    """
    ticks = schedule.ticks()
    active_stabilizers = sorted({check.stabilizer for check in schedule.assignment})
    ancilla_of = {s: schedule.ancilla_of(s) for s in active_stabilizers}
    first_tick = {
        s: min(t for check, t in schedule.assignment.items() if check.stabilizer == s)
        for s in active_stabilizers
    }
    last_tick = {
        s: max(t for check, t in schedule.assignment.items() if check.stabilizer == s)
        for s in active_stabilizers
    }

    # Ancilla preparation.
    for stabilizer in active_stabilizers:
        circuit.reset(ancilla_of[stabilizer], basis="X")
    if noise is not None and noise.reset_error > 0:
        circuit.z_error(noise.reset_error, *[ancilla_of[s] for s in active_stabilizers])

    depth = schedule.depth
    for tick in range(1, depth + 1):
        busy: set[int] = set()
        for check in ticks.get(tick, []):
            ancilla = ancilla_of[check.stabilizer]
            circuit.cpauli(ancilla, check.data_qubit, check.pauli)
            busy.add(ancilla)
            busy.add(check.data_qubit)
            if noise is not None:
                circuit.depolarize2(
                    noise.two_qubit_rate(ancilla, check.data_qubit),
                    ancilla,
                    check.data_qubit,
                )
        if noise is not None:
            idle: list[int] = []
            if idle_data_qubits:
                idle.extend(
                    q for q in range(code.num_qubits) if q not in busy
                )
            for stabilizer in active_stabilizers:
                ancilla = ancilla_of[stabilizer]
                if ancilla in busy:
                    continue
                if first_tick[stabilizer] <= tick <= last_tick[stabilizer]:
                    idle.append(ancilla)
            for qubit in idle:
                circuit.depolarize1(noise.idle_rate(qubit), qubit)
        circuit.tick()

    # Ancilla readout.
    measurements: dict[int, int] = {}
    for stabilizer in active_stabilizers:
        ancilla = ancilla_of[stabilizer]
        if noise is not None and noise.measurement_error > 0:
            circuit.z_error(noise.measurement_error, ancilla)
        measurements[stabilizer] = circuit.measure(ancilla, basis="X")[0]
    return SyndromeRoundRecord(measurements)
