"""Builders that turn a :class:`~repro.scheduling.schedule.Schedule` into circuits.

Two building blocks are provided:

* :func:`append_logical_measurement` — ancilla-mediated measurement of an
  arbitrary Pauli operator (used for the logical-operator readouts at the
  start and end of the paper's Figure 10 sampling circuit);
* :func:`append_syndrome_round` — one full syndrome-measurement round that
  executes every Pauli check at the tick chosen by the schedule, optionally
  injecting circuit-level noise.  Noise is injected through the *site
  protocol* of :mod:`repro.noise.channels`: the builder announces every
  noise location (a gate pair after each check, each idling qubit per
  tick, each ancilla readout, the reset of all ancillas) as a
  :class:`~repro.noise.channels.NoiseSite` and appends whatever ops the
  model's channels fire there, so uniform legacy models and arbitrary
  channel compositions (bias, dephasing, drift, ...) share one code path.

Ancilla-as-control convention: every Pauli check is implemented as a
controlled-Pauli with the ancilla (prepared in ``|+>`` and read out in the X
basis) as control and the data qubit as target.  For Z checks this is the
textbook phase-kickback circuit; it is local-Clifford equivalent to the
CNOT-based circuits of the paper's Figure 4, and has the same hook-error
behaviour: an X (or Y) error on the ancilla propagates the stabilizer's
Pauli letter onto every data qubit whose check has not yet executed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.codes.base import StabilizerCode
from repro.noise.channels import GATE, IDLE, MEASURE, RESET, NoiseSite
from repro.pauli import PauliString
from repro.scheduling.schedule import Schedule

__all__ = [
    "SyndromeRoundRecord",
    "append_logical_measurement",
    "append_syndrome_round",
    "ancilla_qubits",
    "emit_noise",
]


@dataclass
class SyndromeRoundRecord:
    """Measurement-record bookkeeping for one syndrome round.

    ``measurements[s]`` is the measurement-record index of stabilizer ``s``'s
    ancilla readout in this round.
    """

    measurements: dict[int, int]


def ancilla_qubits(code: StabilizerCode) -> list[int]:
    """Ancilla qubit indices used for syndrome measurement (one per stabilizer)."""
    return [code.num_qubits + s for s in range(code.num_stabilizers)]


def append_logical_measurement(
    circuit: Circuit,
    code: StabilizerCode,
    operator: PauliString,
    ancilla: int,
) -> int:
    """Measure ``operator`` via ``ancilla``; returns the measurement index.

    The measurement is noiseless (the paper's logical readouts are ideal and
    only the syndrome round under study carries noise).
    """
    circuit.reset(ancilla, basis="X")
    for qubit in operator.support:
        circuit.cpauli(ancilla, qubit, operator.pauli_at(qubit))
    return circuit.measure(ancilla, basis="X")[0]


def emit_noise(circuit: Circuit, noise, site: NoiseSite) -> None:
    """Append every op ``noise`` fires at ``site`` to ``circuit``.

    ``noise`` is any object implementing the ``channel_ops(site)``
    protocol (:class:`~repro.noise.models.NoiseModel` or
    :class:`~repro.noise.channels.ComposedNoiseModel`).  Zero-probability
    ops are dropped by :meth:`Circuit.append_noise_op`.
    """
    for op in noise.channel_ops(site):
        circuit.append_noise_op(op)


def append_syndrome_round(
    circuit: Circuit,
    code: StabilizerCode,
    schedule: Schedule,
    *,
    noise=None,
    idle_data_qubits: bool = True,
    round_index: int = 0,
) -> SyndromeRoundRecord:
    """Append one syndrome-measurement round laid out according to ``schedule``.

    Parameters
    ----------
    noise:
        Any object implementing the channel-site protocol
        (``channel_ops(site)``); when provided, every noise location of
        the round — gate pairs, idling qubits per tick, ancilla readouts,
        the ancilla reset — is offered to it and the resulting ops are
        appended.  ``None`` produces a noiseless round.
    idle_data_qubits:
        Apply idle noise to data qubits that are not touched during a tick
        (the paper's model); ancillas idle between their first and last
        scheduled tick.
    round_index:
        0-based index of this noisy round within the experiment — the
        time coordinate time-varying (drift) channels see.
    """
    ticks = schedule.ticks()
    active_stabilizers = sorted({check.stabilizer for check in schedule.assignment})
    ancilla_of = {s: schedule.ancilla_of(s) for s in active_stabilizers}
    first_tick = {
        s: min(t for check, t in schedule.assignment.items() if check.stabilizer == s)
        for s in active_stabilizers
    }
    last_tick = {
        s: max(t for check, t in schedule.assignment.items() if check.stabilizer == s)
        for s in active_stabilizers
    }

    # Ancilla preparation.  The reset site covers every prepared ancilla at
    # once, so reset-flip channels emit one multi-qubit instruction (the
    # legacy stream shape).
    for stabilizer in active_stabilizers:
        circuit.reset(ancilla_of[stabilizer], basis="X")
    if noise is not None:
        reset_qubits = tuple(ancilla_of[s] for s in active_stabilizers)
        emit_noise(
            circuit,
            noise,
            NoiseSite(RESET, reset_qubits, tick=0, round_index=round_index),
        )

    depth = schedule.depth
    for tick in range(1, depth + 1):
        busy: set[int] = set()
        for check in ticks.get(tick, []):
            ancilla = ancilla_of[check.stabilizer]
            circuit.cpauli(ancilla, check.data_qubit, check.pauli)
            busy.add(ancilla)
            busy.add(check.data_qubit)
            if noise is not None:
                emit_noise(
                    circuit,
                    noise,
                    NoiseSite(
                        GATE,
                        (ancilla, check.data_qubit),
                        tick=tick,
                        round_index=round_index,
                    ),
                )
        if noise is not None:
            idle: list[int] = []
            if idle_data_qubits:
                idle.extend(
                    q for q in range(code.num_qubits) if q not in busy
                )
            for stabilizer in active_stabilizers:
                ancilla = ancilla_of[stabilizer]
                if ancilla in busy:
                    continue
                if first_tick[stabilizer] <= tick <= last_tick[stabilizer]:
                    idle.append(ancilla)
            for qubit in idle:
                emit_noise(
                    circuit,
                    noise,
                    NoiseSite(IDLE, (qubit,), tick=tick, round_index=round_index),
                )
        circuit.tick()

    # Ancilla readout.
    measurements: dict[int, int] = {}
    for stabilizer in active_stabilizers:
        ancilla = ancilla_of[stabilizer]
        if noise is not None:
            emit_noise(
                circuit,
                noise,
                NoiseSite(MEASURE, (ancilla,), tick=depth + 1, round_index=round_index),
            )
        measurements[stabilizer] = circuit.measure(ancilla, basis="X")[0]
    return SyndromeRoundRecord(measurements)
