"""Tick-based Clifford circuit intermediate representation.

The instruction set is a small, stim-flavoured subset sufficient for
syndrome-measurement experiments:

``R`` / ``RX``
    reset qubits to ``|0>`` / ``|+>``.
``M`` / ``MX``
    measure qubits in the Z / X basis (each measured qubit appends one
    measurement record entry).
``H``, ``S``, ``X``, ``Y``, ``Z``
    single-qubit Cliffords / Paulis.
``CPAULI``
    controlled-Pauli with the first qubit as control and the second as
    target; the ``pauli`` argument selects X (CNOT), Z (CZ) or Y.
``SWAP``
    qubit exchange.
``X_ERROR`` / ``Z_ERROR`` / ``Y_ERROR``
    single-qubit Pauli noise channels with probability ``p``.
``DEPOLARIZE1`` / ``DEPOLARIZE2``
    single- / two-qubit depolarizing channels.
``PAULI_CHANNEL_1`` / ``PAULI_CHANNEL_2``
    general stochastic Pauli channels carrying one probability per
    non-identity Pauli (3 for one qubit, 15 for a pair, in
    :data:`ONE_QUBIT_PAULIS` / :data:`TWO_QUBIT_PAULIS` order); the
    channel realisation of biased noise (``repro.noise.channels``).
``TICK``
    timing barrier (purely annotational).
``DETECTOR``
    parity of a set of measurement-record indices that is deterministic in
    the absence of noise.
``OBSERVABLE``
    parity of measurement-record indices defining a logical observable.

Measurement-record indices are absolute (0-based, in order of appearance),
which keeps the builders simple; :class:`CircuitBuilder`-style helpers in
``repro.circuits.builder`` track them for callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Instruction",
    "Circuit",
    "GATE_NAMES",
    "NOISE_NAMES",
    "ONE_QUBIT_PAULIS",
    "TWO_QUBIT_PAULIS",
]

GATE_NAMES = frozenset(
    {"R", "RX", "M", "MX", "H", "S", "X", "Y", "Z", "CPAULI", "SWAP"}
)
NOISE_NAMES = frozenset(
    {
        "X_ERROR",
        "Z_ERROR",
        "Y_ERROR",
        "DEPOLARIZE1",
        "DEPOLARIZE2",
        "PAULI_CHANNEL_1",
        "PAULI_CHANNEL_2",
    }
)
_ANNOTATIONS = frozenset({"TICK", "DETECTOR", "OBSERVABLE"})

#: Canonical non-identity Pauli order of ``PAULI_CHANNEL_1`` probabilities.
ONE_QUBIT_PAULIS = ("X", "Y", "Z")
#: Canonical non-identity Pauli-pair order of ``PAULI_CHANNEL_2``
#: probabilities (first letter outer, ``I, X, Y, Z`` inner, ``II`` skipped)
#: — shared with the DEM decomposition so channel weights and fault
#: mechanisms can never disagree on ordering.
TWO_QUBIT_PAULIS = tuple(
    (first, second)
    for first in ("I", "X", "Y", "Z")
    for second in ("I", "X", "Y", "Z")
    if not (first == "I" and second == "I")
)

#: Per-(qubit group) probability count of the general Pauli channels.
_PAULI_CHANNEL_SIZES = {"PAULI_CHANNEL_1": 3, "PAULI_CHANNEL_2": 15}


@dataclass
class Instruction:
    """One circuit instruction.

    Attributes
    ----------
    name:
        Instruction mnemonic (see module docstring).
    qubits:
        Qubit indices the instruction acts on (empty for annotations).
    probability:
        Error probability for single-probability noise channels, ``None``
        otherwise.
    pauli:
        Pauli letter for ``CPAULI`` instructions.
    targets:
        Measurement-record indices for ``DETECTOR`` / ``OBSERVABLE``.
    index:
        Observable index for ``OBSERVABLE`` instructions.
    probabilities:
        Per-Pauli probability tuple for ``PAULI_CHANNEL_1`` (3 entries,
        :data:`ONE_QUBIT_PAULIS` order) and ``PAULI_CHANNEL_2`` (15
        entries, :data:`TWO_QUBIT_PAULIS` order); ``None`` otherwise.
    """

    name: str
    qubits: tuple[int, ...] = ()
    probability: float | None = None
    pauli: str | None = None
    targets: tuple[int, ...] = ()
    index: int | None = None
    probabilities: tuple[float, ...] | None = None

    def is_noise(self) -> bool:
        return self.name in NOISE_NAMES

    def is_gate(self) -> bool:
        return self.name in GATE_NAMES

    def __str__(self) -> str:
        parts = [self.name]
        if self.pauli:
            parts.append(f"[{self.pauli}]")
        if self.probability is not None:
            parts.append(f"({self.probability:g})")
        if self.probabilities is not None:
            parts.append("(" + ",".join(f"{p:g}" for p in self.probabilities) + ")")
        if self.qubits:
            parts.append(" ".join(str(q) for q in self.qubits))
        if self.targets:
            parts.append("rec[" + ",".join(str(t) for t in self.targets) + "]")
        if self.index is not None:
            parts.append(f"obs={self.index}")
        return " ".join(parts)


@dataclass
class Circuit:
    """An ordered list of instructions plus derived bookkeeping."""

    instructions: list[Instruction] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def append(self, instruction: Instruction) -> None:
        self._check(instruction)
        self.instructions.append(instruction)

    def _check(self, instruction: Instruction) -> None:
        name = instruction.name
        if name not in GATE_NAMES | NOISE_NAMES | _ANNOTATIONS:
            raise ValueError(f"unknown instruction {name!r}")
        if name in _PAULI_CHANNEL_SIZES:
            expected = _PAULI_CHANNEL_SIZES[name]
            probabilities = instruction.probabilities
            if probabilities is None or len(probabilities) != expected:
                raise ValueError(f"{name} needs exactly {expected} probabilities")
            if any(p < 0 for p in probabilities) or sum(probabilities) > 1 + 1e-12:
                raise ValueError(f"{name} probabilities must be >= 0 and sum to <= 1")
        elif name in NOISE_NAMES:
            if instruction.probability is None or not 0 <= instruction.probability <= 1:
                raise ValueError(f"{name} needs a probability in [0, 1]")
        if name == "CPAULI":
            if instruction.pauli not in ("X", "Y", "Z"):
                raise ValueError("CPAULI needs pauli in {'X', 'Y', 'Z'}")
            if len(instruction.qubits) != 2:
                raise ValueError("CPAULI acts on exactly two qubits")
        if name in ("SWAP", "DEPOLARIZE2", "PAULI_CHANNEL_2") and len(instruction.qubits) % 2:
            raise ValueError(f"{name} needs an even number of qubits")

    # Convenience emitters -------------------------------------------------
    def reset(self, *qubits: int, basis: str = "Z") -> None:
        self.append(Instruction("RX" if basis == "X" else "R", tuple(qubits)))

    def measure(self, *qubits: int, basis: str = "Z") -> list[int]:
        """Measure qubits, returning the new measurement-record indices."""
        start = self.num_measurements
        self.append(Instruction("MX" if basis == "X" else "M", tuple(qubits)))
        return list(range(start, start + len(qubits)))

    def h(self, *qubits: int) -> None:
        self.append(Instruction("H", tuple(qubits)))

    def s(self, *qubits: int) -> None:
        self.append(Instruction("S", tuple(qubits)))

    def cpauli(self, control: int, target: int, pauli: str) -> None:
        self.append(Instruction("CPAULI", (control, target), pauli=pauli))

    def cx(self, control: int, target: int) -> None:
        self.cpauli(control, target, "X")

    def cz(self, control: int, target: int) -> None:
        self.cpauli(control, target, "Z")

    def swap(self, first: int, second: int) -> None:
        self.append(Instruction("SWAP", (first, second)))

    def tick(self) -> None:
        self.append(Instruction("TICK"))

    def depolarize1(self, probability: float, *qubits: int) -> None:
        if probability > 0 and qubits:
            self.append(
                Instruction("DEPOLARIZE1", tuple(qubits), probability=probability)
            )

    def depolarize2(self, probability: float, first: int, second: int) -> None:
        if probability > 0:
            self.append(
                Instruction("DEPOLARIZE2", (first, second), probability=probability)
            )

    def x_error(self, probability: float, *qubits: int) -> None:
        if probability > 0 and qubits:
            self.append(Instruction("X_ERROR", tuple(qubits), probability=probability))

    def z_error(self, probability: float, *qubits: int) -> None:
        if probability > 0 and qubits:
            self.append(Instruction("Z_ERROR", tuple(qubits), probability=probability))

    def pauli_channel_1(self, probabilities, *qubits: int) -> None:
        """General single-qubit Pauli channel (X/Y/Z probability triple)."""
        if sum(probabilities) > 0 and qubits:
            self.append(
                Instruction(
                    "PAULI_CHANNEL_1", tuple(qubits), probabilities=tuple(probabilities)
                )
            )

    def pauli_channel_2(self, probabilities, first: int, second: int) -> None:
        """General two-qubit Pauli channel (15 pair probabilities)."""
        if sum(probabilities) > 0:
            self.append(
                Instruction(
                    "PAULI_CHANNEL_2", (first, second), probabilities=tuple(probabilities)
                )
            )

    def append_noise_op(self, op) -> None:
        """Append one :class:`repro.noise.channels.NoiseOp`-like object.

        Zero-probability ops are skipped entirely (no instruction is
        appended), matching the behaviour of the dedicated emitters — this
        keeps instruction streams from channel-based models bit-identical
        to the legacy hand-emitted ones.  ``op`` is duck-typed (``name``,
        ``qubits``, ``probability``, ``probabilities``) so this module
        never imports the noise layer.
        """
        probabilities = getattr(op, "probabilities", None)
        if probabilities is not None:
            if sum(probabilities) > 0 and op.qubits:
                self.append(
                    Instruction(
                        op.name, tuple(op.qubits), probabilities=tuple(probabilities)
                    )
                )
            return
        probability = op.probability or 0.0
        if probability > 0 and op.qubits:
            self.append(Instruction(op.name, tuple(op.qubits), probability=probability))

    def detector(self, measurement_indices: list[int]) -> int:
        """Append a detector; returns its index."""
        index = self.num_detectors
        self.append(Instruction("DETECTOR", targets=tuple(measurement_indices)))
        return index

    def observable(self, observable_index: int, measurement_indices: list[int]) -> None:
        self.append(
            Instruction(
                "OBSERVABLE", targets=tuple(measurement_indices), index=observable_index
            )
        )

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        highest = -1
        for instruction in self.instructions:
            if instruction.qubits:
                highest = max(highest, max(instruction.qubits))
        return highest + 1

    @property
    def num_measurements(self) -> int:
        return sum(
            len(inst.qubits)
            for inst in self.instructions
            if inst.name in ("M", "MX")
        )

    @property
    def num_detectors(self) -> int:
        return sum(1 for inst in self.instructions if inst.name == "DETECTOR")

    @property
    def num_observables(self) -> int:
        indices = {
            inst.index for inst in self.instructions if inst.name == "OBSERVABLE"
        }
        return (max(indices) + 1) if indices else 0

    @property
    def num_ticks(self) -> int:
        return sum(1 for inst in self.instructions if inst.name == "TICK")

    def detectors(self) -> list[tuple[int, ...]]:
        """Return the measurement-index tuples of all detectors, in order."""
        return [
            inst.targets for inst in self.instructions if inst.name == "DETECTOR"
        ]

    def observables(self) -> dict[int, tuple[int, ...]]:
        """Return ``{observable index: measurement indices}`` (XOR-merged)."""
        merged: dict[int, set[int]] = {}
        for inst in self.instructions:
            if inst.name != "OBSERVABLE":
                continue
            bucket = merged.setdefault(inst.index, set())
            bucket.symmetric_difference_update(inst.targets)
        return {key: tuple(sorted(value)) for key, value in merged.items()}

    def without_noise(self) -> "Circuit":
        """Return a copy of the circuit with all noise channels removed."""
        return Circuit(
            [inst for inst in self.instructions if not inst.is_noise()]
        )

    def __iadd__(self, other: "Circuit") -> "Circuit":
        for instruction in other.instructions:
            self.append(instruction)
        return self

    def __len__(self) -> int:
        return len(self.instructions)

    def __str__(self) -> str:
        return "\n".join(str(inst) for inst in self.instructions)
