"""Stdlib HTTP client for a running ``repro serve`` endpoint.

Used by the ``repro submit`` / ``repro jobs`` / ``repro worker`` CLI
verbs, the suite runner's server mode, the remote worker loop
(:mod:`repro.serve.remote`) and the integration tests.  One
:class:`http.client.HTTPConnection` per request (the server is
``Connection: close``), so a :class:`ServeClient` is cheap, stateless and
safe to share across threads.

Two edges are handled here rather than pushed onto callers:

* :meth:`ServeClient.result` long-polls in bounded windows.  The server
  expires a poll after its own ``?timeout=`` seconds with a ``504``; the
  client treats that as "not done yet" and re-polls until *its* deadline,
  and clamps each request's socket timeout to the poll window plus a
  margin — so ``result(job_id, timeout=900)`` genuinely waits 900 s
  instead of dying at a default socket timeout.
* :meth:`ServeClient.events` survives a dropped connection.  The server
  numbers every job-scoped event with a monotonically increasing ``seq``
  and replays history from ``?since=N``; the client reconnects with the
  last sequence it saw and discards replayed duplicates, so the caller
  observes each event exactly once, in order.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection, HTTPException
from urllib.parse import urlsplit

__all__ = ["ServeClient", "ServeError"]

#: Socket-timeout margin over the server-side long-poll window: covers
#: connection setup plus the response round trip for one poll request.
POLL_MARGIN = 30.0


class ServeError(RuntimeError):
    """An HTTP error response from the serve endpoint (carries the status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Talk to a ``repro serve`` endpoint given its base URL."""

    def __init__(self, base_url: str, timeout: float = 600.0) -> None:
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {split.scheme!r} (http only)")
        if not split.hostname:
            raise ValueError(f"no host in server URL {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout

    @property
    def base_url(self) -> str:
        """The normalized endpoint URL."""
        return f"http://{self.host}:{self.port}"

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        timeout: float | None = None,
    ) -> dict:
        connection = HTTPConnection(
            self.host, self.port, timeout=self.timeout if timeout is None else timeout
        )
        try:
            body = None
            headers = {"Accept": "application/json"}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = json.loads(response.read().decode("utf-8") or "{}")
            if response.status >= 400:
                raise ServeError(response.status, data.get("error", response.reason))
            return data
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """``GET /healthz`` — worker liveness, job tallies, fabric counters."""
        return self._request("GET", "/healthz")

    def submit(self, spec, priority: int = 0) -> dict:
        """``POST /jobs`` — submit a RunSpec (object or payload dict).

        Returns ``{"job": summary, "coalesced": bool}``.
        """
        payload = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        return self._request("POST", "/jobs", {"spec": payload, "priority": priority})

    def jobs(self) -> "list[dict]":
        """``GET /jobs`` — all job summaries."""
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>`` — one job summary."""
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def result(self, job_id: str, timeout: float = 300.0, poll_window: float = 60.0) -> dict:
        """Block until the job finishes; return the RunResult payload.

        Long-polls ``GET /jobs/<id>/result`` in windows of at most
        ``poll_window`` seconds.  A server-side ``504`` (its poll window
        expired before the job finished) is *not* an error — the client
        re-polls until its own ``timeout`` deadline, then raises
        :class:`ServeError` with status 504.  Each request's socket
        timeout is clamped to its window plus a margin, so no caller
        deadline is cut short by the default socket timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(504, f"job {job_id} did not finish within {timeout:g}s")
            window = max(0.05, min(poll_window, remaining))
            try:
                data = self._request(
                    "GET",
                    f"/jobs/{job_id}/result?timeout={window:g}",
                    timeout=window + POLL_MARGIN,
                )
            except ServeError as error:
                if error.status == 504:
                    continue  # server's window expired; poll again
                raise
            except TimeoutError:
                continue  # socket-level hiccup inside our deadline; retry
            job = data["job"]
            if job["state"] == "failed":
                raise ServeError(500, job.get("error") or "job failed")
            return data["result"]

    def events(
        self,
        job_id: str,
        since: int = 0,
        reconnect: bool = True,
        max_reconnects: int = 5,
        reconnect_delay: float = 0.5,
    ):
        """``GET /jobs/<id>/events`` — yield NDJSON events until the terminal one.

        A generator of dicts: a ``job`` snapshot first, then ``progress``
        events, ending with ``done`` (carrying the result) or ``failed``.
        Every job-scoped event carries a server-assigned ``seq``; if the
        connection drops mid-stream the client reconnects with
        ``?since=<last seq>`` and resumes where it left off, discarding
        any replayed duplicates — the caller sees each event exactly once,
        in order.  ``max_reconnects`` consecutive failed reconnects raise
        :class:`ServeError`; a successfully resumed stream resets the
        budget.  Terminal events are always yielded, whatever their
        sequence number, so the generator cannot hang on a resume edge.
        """
        last_seq = int(since)
        yielded_snapshot = False
        failures = 0
        while True:
            try:
                for event in self._events_once(job_id, last_seq):
                    failures = 0
                    kind = event.get("event")
                    if kind == "job":
                        if yielded_snapshot:
                            continue  # reconnects re-send the snapshot
                        yielded_snapshot = True
                        yield event
                        continue
                    seq = event.get("seq")
                    terminal = kind in ("done", "failed")
                    if seq is not None:
                        if seq <= last_seq and not terminal:
                            continue  # replayed duplicate after a reconnect
                        last_seq = max(last_seq, seq)
                    yield event
                    if terminal:
                        return
                # The stream closed without a terminal event: the server
                # dropped the connection mid-job.  Resume from last_seq.
                raise ConnectionError("event stream ended before a terminal event")
            except (ConnectionError, TimeoutError, HTTPException, OSError) as error:
                if not reconnect:
                    raise
                failures += 1
                if failures > max_reconnects:
                    raise ServeError(
                        503,
                        f"event stream for {job_id} lost after "
                        f"{max_reconnects} reconnect attempts: {error}",
                    ) from error
                time.sleep(reconnect_delay)

    def _events_once(self, job_id: str, since: int):
        """One event-stream connection: yield parsed NDJSON lines until EOF."""
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            path = f"/jobs/{job_id}/events"
            if since:
                path += f"?since={since}"
            connection.request("GET", path, headers={"Accept": "application/x-ndjson"})
            response = connection.getresponse()
            if response.status >= 400:
                data = json.loads(response.read().decode("utf-8") or "{}")
                raise ServeError(response.status, data.get("error", response.reason))
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    def run(self, spec, priority: int = 0, timeout: float = 600.0) -> dict:
        """Submit a spec and block for its result payload (convenience)."""
        job_id = self.submit(spec, priority=priority)["job"]["id"]
        return self.result(job_id, timeout=timeout)

    def shutdown(self) -> dict:
        """``POST /shutdown`` — ask the server to stop."""
        return self._request("POST", "/shutdown")

    # ------------------------------------------------------------------
    # Worker protocol (used by `repro worker` / repro.serve.remote)
    # ------------------------------------------------------------------
    def lease(self, worker_id: str) -> dict:
        """``POST /lease`` — claim a chunk range for ``worker_id``.

        Returns ``{"tasks": [...], "specs": {job_id: payload},
        "lease_timeout": S}``; an empty task list means nothing is
        currently runnable (poll again later).
        """
        return self._request("POST", "/lease", {"worker_id": worker_id})

    def heartbeat(self, worker_id: str) -> dict:
        """``POST /heartbeat`` — renew ``worker_id``'s lease deadline.

        ``{"renewed": false}`` means the lease is gone (expired or fully
        reported); the worker should stop and lease afresh.
        """
        return self._request("POST", "/heartbeat", {"worker_id": worker_id})

    def report(self, worker_id: str, results=(), failures=()) -> dict:
        """``POST /chunks`` — report executed chunk summaries (and/or failures).

        ``results`` entries are ``{"task": {job_id, basis, index, shots},
        "shots": n, "errors": n, "cached": bool, "info": {...}}``;
        ``failures`` entries are ``{"job_id": ..., "error": "..."}``.
        Reporting renews the lease exactly like the in-process path.
        """
        return self._request(
            "POST",
            "/chunks",
            {"worker_id": worker_id, "results": list(results), "failures": list(failures)},
        )
