"""Stdlib HTTP client for a running ``repro serve`` endpoint.

Used by the ``repro submit`` / ``repro jobs`` CLI verbs, the suite
runner's server mode and the integration tests.  One
:class:`http.client.HTTPConnection` per request (the server is
``Connection: close``), so a :class:`ServeClient` is cheap, stateless and
safe to share across threads.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from urllib.parse import urlsplit

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """An HTTP error response from the serve endpoint (carries the status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Talk to a ``repro serve`` endpoint given its base URL."""

    def __init__(self, base_url: str, timeout: float = 600.0) -> None:
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {split.scheme!r} (http only)")
        if not split.hostname:
            raise ValueError(f"no host in server URL {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout

    @property
    def base_url(self) -> str:
        """The normalized endpoint URL."""
        return f"http://{self.host}:{self.port}"

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {"Accept": "application/json"}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = json.loads(response.read().decode("utf-8") or "{}")
            if response.status >= 400:
                raise ServeError(response.status, data.get("error", response.reason))
            return data
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """``GET /healthz`` — worker liveness, job tallies, fabric counters."""
        return self._request("GET", "/healthz")

    def submit(self, spec, priority: int = 0) -> dict:
        """``POST /jobs`` — submit a RunSpec (object or payload dict).

        Returns ``{"job": summary, "coalesced": bool}``.
        """
        payload = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        return self._request("POST", "/jobs", {"spec": payload, "priority": priority})

    def jobs(self) -> "list[dict]":
        """``GET /jobs`` — all job summaries."""
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>`` — one job summary."""
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def result(self, job_id: str, timeout: float = 300.0) -> dict:
        """``GET /jobs/<id>/result`` — block until done, return the RunResult payload."""
        data = self._request("GET", f"/jobs/{job_id}/result?timeout={timeout}")
        job = data["job"]
        if job["state"] == "failed":
            raise ServeError(500, job.get("error") or "job failed")
        return data["result"]

    def events(self, job_id: str):
        """``GET /jobs/<id>/events`` — yield NDJSON events until the terminal one.

        A generator of dicts: a ``job`` snapshot first, then ``progress``
        events, ending with ``done`` (carrying the result) or ``failed``.
        """
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request(
                "GET", f"/jobs/{job_id}/events", headers={"Accept": "application/x-ndjson"}
            )
            response = connection.getresponse()
            if response.status >= 400:
                data = json.loads(response.read().decode("utf-8") or "{}")
                raise ServeError(response.status, data.get("error", response.reason))
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                event = json.loads(line.decode("utf-8"))
                yield event
                if event.get("event") in ("done", "failed"):
                    return
        finally:
            connection.close()

    def run(self, spec, priority: int = 0, timeout: float = 600.0) -> dict:
        """Submit a spec and block for its result payload (convenience)."""
        job_id = self.submit(spec, priority=priority)["job"]["id"]
        return self.result(job_id, timeout=timeout)

    def shutdown(self) -> dict:
        """``POST /shutdown`` — ask the server to stop."""
        return self._request("POST", "/shutdown")
