"""The ``repro serve`` worker process.

A worker is a plain loop over its inbox queue: it receives leased
:class:`~repro.serve.jobs.ChunkTask` batches, executes each chunk through
exactly the machinery the offline path uses —
:func:`repro.parallel.chunk_error_counts` over the job's detector error
model, with the chunk's own spawned seed stream — and reports one
``(shots, errors)`` summary per chunk on the shared outbox.

**Determinism.**  The per-job context (code → noise → schedule → circuit →
DEM, the decoder factory, and the per-basis chunk streams) is rebuilt from
the :class:`~repro.api.spec.RunSpec` via :class:`repro.api.Pipeline`'s
staged attributes, and the chunk streams are derived with
:func:`repro.parallel.chunk_streams` from
:func:`repro.sim.estimator.basis_streams` — the identical derivation the
offline engine performs.  A chunk's content therefore depends only on
``(spec, basis, index)``, never on which worker executes it or when; that
is what lets the scheduler re-run a killed worker's chunks and still
finish with a bit-identical result.

**Cache.**  With a cache directory configured, the worker consults the
shared content-addressed :class:`repro.cache.ResultCache` before sampling
and publishes every fresh chunk into it, so concurrent jobs, server
restarts and offline runs all share one pool of chunk summaries.

Messages (plain tuples, picklable across ``spawn``):

* inbox: ``("run", [ChunkTask, ...], {job_id: spec_payload})`` or
  ``("stop",)`` — the spec payloads cover every job named by the tasks, so
  a worker joining a job mid-flight can always rebuild its context
* outbox: ``("result", worker_id, task, shots, errors, cached, info)``
  or ``("error", worker_id, job_id, message)``

``info`` carries the pipeline facts the server needs to assemble an
offline-identical :class:`~repro.api.pipeline.RunResult`: schedule depth
and (for synthesising schedulers) the evaluation counters.
"""

from __future__ import annotations

import time

from repro.api.pipeline import Pipeline
from repro.api.spec import RunSpec
from repro.parallel import DEFAULT_CHUNK_SHOTS, chunk_error_counts, chunk_sizes, chunk_streams
from repro.serve.jobs import ChunkTask
from repro.sim.estimator import basis_streams

__all__ = ["JobContext", "worker_main"]


class JobContext:
    """One worker's cached execution state for one job.

    Built lazily from the spec; the pipeline's staged attributes mean a
    fully cache-replayed job only pays for the schedule (needed for
    ``depth``), never for DEM extraction or sampling.
    """

    def __init__(self, spec, cache=None) -> None:
        self.spec = spec
        self.pipeline = Pipeline(spec)
        sizes = chunk_sizes(spec.budget.plan_shots, DEFAULT_CHUNK_SHOTS)
        self.streams = {
            basis: chunk_streams(stream, len(sizes))
            for basis, stream in basis_streams(spec.eval_seed())
        }
        self.stores = {}
        if cache is not None:
            self.stores = {
                basis: cache.chunk_store(spec, basis, DEFAULT_CHUNK_SHOTS)
                for basis in self.streams
            }
        self._info: dict | None = None

    def info(self) -> dict:
        """Schedule depth and synthesis counters (forces the schedule stage)."""
        if self._info is None:
            synthesis = self.pipeline.synthesis
            self._info = {
                "depth": self.pipeline.schedule.depth,
                "synthesis_evaluations": synthesis.evaluations if synthesis else None,
                "baseline_overall": (
                    synthesis.baseline_rates.overall if synthesis else None
                ),
            }
        return self._info

    def run_chunk(self, task: ChunkTask) -> "tuple[int, int, bool]":
        """Execute (or cache-replay) one chunk: ``(shots, errors, cached)``.

        A fresh chunk samples and decodes through the same batch-first
        stack as the in-process pool (``chunk_error_counts`` →
        ``run_chunk`` → ``decode_predictions``): packed syndromes feed the
        decoder's dedup front end, so a served chunk decodes only its
        unique syndromes — and stays bit-identical to local execution.
        """
        store = self.stores.get(task.basis)
        if store is not None:
            summary = store.get(task.index)
            if summary is not None and summary.shots == task.shots:
                return summary.shots, summary.errors, True
        shots, errors = chunk_error_counts(
            self.pipeline.dem[task.basis],
            self.pipeline.decoder_factory,
            task.shots,
            self.streams[task.basis][task.index],
            self.pipeline.samplers[task.basis],
        )
        if store is not None:
            store.put(task.index, shots, errors)
        return shots, errors, False


def worker_main(
    worker_id: str,
    inbox,
    outbox,
    cache_dir: str | None = None,
    throttle: float = 0.0,
) -> None:
    """Worker-process entry point (the ``spawn`` target).

    ``throttle`` sleeps that many seconds before each chunk — a debug/test
    knob that widens the race windows the lease machinery is built for
    (the kill-a-worker integration test uses it); production servers leave
    it at ``0.0``.
    """
    cache = None
    if cache_dir:
        from repro.cache import ResultCache

        cache = ResultCache(cache_dir)
    contexts: dict[str, JobContext] = {}
    while True:
        message = inbox.get()
        if message[0] == "stop":
            return
        _, tasks, specs = message
        for task in tasks:
            try:
                context = contexts.get(task.job_id)
                if context is None:
                    spec = RunSpec.from_dict(specs[task.job_id])
                    context = contexts[task.job_id] = JobContext(spec, cache)
                if throttle > 0.0:
                    time.sleep(throttle)
                shots, errors, cached = context.run_chunk(task)
                outbox.put(
                    ("result", worker_id, task, shots, errors, cached, context.info())
                )
            except Exception as error:  # surface, don't crash the loop
                outbox.put(("error", worker_id, task.job_id, f"{type(error).__name__}: {error}"))
