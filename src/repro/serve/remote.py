"""Remote worker: lease chunks from a ``repro serve`` endpoint over HTTP.

PR 6's fleet was bounded by one machine — workers were spawn-context
processes fed by a multiprocessing queue.  This module is the scale-out
path: ``repro worker --server URL`` runs the same chunk executor
(:class:`repro.serve.worker.JobContext`) on *any* host that can reach the
server, speaking the lease protocol over three endpoints:

``POST /lease``
    claim up to ``lease_chunks`` chunks of the best runnable job; the
    response carries the chunk tasks, the spec payload of every named job
    (so a worker joining mid-flight can rebuild its context) and the
    server's lease timeout;

``POST /heartbeat``
    renew the lease deadline while a long chunk executes (a background
    thread pings at a third of the lease timeout);

``POST /chunks``
    report ``(shots, errors, cached)`` per chunk — reporting renews the
    lease exactly like the in-process path, and job build failures are
    reported the same way so the server can fail the job.

Because a chunk's content is a pure function of ``(spec, basis, index)``,
remote and local workers interoperate freely in one fleet and the served
result stays bit-identical to the offline :class:`repro.api.Pipeline` for
any worker mix — the lease/requeue reasoning of
:mod:`repro.serve.jobs` is transport-agnostic.  A remote worker that dies
mid-lease is recovered by the ordinary lease timeout; a report the server
has already requeued elsewhere is discarded as a duplicate.

With ``--cache-dir`` pointing at a shared (e.g. network) directory, remote
workers publish and replay chunk summaries through the same
content-addressed cache as everyone else.
"""

from __future__ import annotations

import argparse
import os
import socket
import threading
import time
import uuid

from repro.api.spec import RunSpec
from repro.serve.client import ServeClient
from repro.serve.jobs import ChunkTask
from repro.serve.worker import JobContext

__all__ = ["RemoteWorker", "add_worker_flags", "build_parser", "main", "worker_from_args"]


def _default_worker_id() -> str:
    """A fleet-unique worker id: host, pid and a random suffix."""
    return f"r-{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class RemoteWorker:
    """One remote worker loop: lease → execute → report, until stopped.

    The loop is deliberately dumb: all scheduling intelligence (dedup,
    priorities, speculation windows, requeue) lives server-side in
    :class:`repro.serve.jobs.JobScheduler`; the worker just executes the
    chunks it is handed through the exact offline machinery and reports
    summaries back.  Server outages are survived by backing off and
    re-leasing — the lease timeout guarantees nothing is lost meanwhile.
    """

    def __init__(
        self,
        server_url: str,
        *,
        worker_id: str | None = None,
        cache_dir: str | None = None,
        poll_interval: float = 0.5,
        max_idle: float | None = None,
        throttle: float = 0.0,
    ) -> None:
        self.client = ServeClient(server_url, timeout=60.0)
        self.worker_id = worker_id or _default_worker_id()
        self.poll_interval = max(0.05, poll_interval)
        self.max_idle = max_idle
        self.throttle = throttle
        self.cache = None
        if cache_dir:
            from repro.cache import ResultCache

            self.cache = ResultCache(cache_dir)
        self._contexts: dict[str, JobContext] = {}
        self._stop = threading.Event()
        self.chunks_executed = 0
        self.chunks_cached = 0
        self.chunks_failed = 0

    def stop(self) -> None:
        """Ask the loop to exit after the current chunk (threadsafe)."""
        self._stop.set()

    def run_forever(self) -> int:
        """Lease and execute chunks until :meth:`stop` or ``max_idle``.

        Returns the number of chunks this worker reported.  A server that
        is down (or restarting) is retried with a backed-off poll; with
        ``max_idle`` set, that many consecutive seconds without obtaining
        work end the loop — the CI smoke harness uses this so worker
        processes terminate on their own.
        """
        idle_since = time.monotonic()
        while not self._stop.is_set():
            try:
                leased = self.client.lease(self.worker_id)
            except (ConnectionError, TimeoutError, OSError):
                if self._idle_expired(idle_since):
                    break
                self._stop.wait(4 * self.poll_interval)
                continue
            tasks = leased.get("tasks", [])
            if not tasks:
                if self._idle_expired(idle_since):
                    break
                self._stop.wait(self.poll_interval)
                continue
            self._execute(tasks, leased.get("specs", {}), float(leased.get("lease_timeout", 30.0)))
            idle_since = time.monotonic()
        return self.chunks_executed + self.chunks_cached

    def _idle_expired(self, idle_since: float) -> bool:
        return self.max_idle is not None and time.monotonic() - idle_since >= self.max_idle

    def _execute(self, tasks: "list[dict]", specs: dict, lease_timeout: float) -> None:
        """Run one leased chunk range, heartbeating while chunks execute."""
        stop_heartbeat = threading.Event()

        def _heartbeat() -> None:
            interval = max(0.2, lease_timeout / 3.0)
            while not stop_heartbeat.wait(interval):
                try:
                    self.client.heartbeat(self.worker_id)
                except Exception:
                    pass  # transient; reports and the next lease recover

        pinger = threading.Thread(target=_heartbeat, daemon=True, name="repro-worker-heartbeat")
        pinger.start()
        try:
            for payload in tasks:
                if self._stop.is_set():
                    return
                task = ChunkTask(
                    payload["job_id"],
                    payload["basis"],
                    int(payload["index"]),
                    int(payload["shots"]),
                )
                try:
                    context = self._contexts.get(task.job_id)
                    if context is None:
                        spec = RunSpec.from_dict(specs[task.job_id])
                        context = self._contexts[task.job_id] = JobContext(spec, self.cache)
                    if self.throttle > 0.0:
                        time.sleep(self.throttle)
                    shots, errors, cached = context.run_chunk(task)
                except Exception as error:  # job is unbuildable/unrunnable
                    self.chunks_failed += 1
                    self._deliver(
                        failures=[
                            {"job_id": task.job_id, "error": f"{type(error).__name__}: {error}"}
                        ]
                    )
                    continue
                if cached:
                    self.chunks_cached += 1
                else:
                    self.chunks_executed += 1
                self._deliver(
                    results=[
                        {
                            "task": {
                                "job_id": task.job_id,
                                "basis": task.basis,
                                "index": task.index,
                                "shots": task.shots,
                            },
                            "shots": shots,
                            "errors": errors,
                            "cached": cached,
                            "info": context.info(),
                        }
                    ]
                )
        finally:
            stop_heartbeat.set()

    def _deliver(self, results=(), failures=()) -> None:
        """Report with bounded retries; an undeliverable chunk is abandoned.

        The lease timeout requeues anything the server never hears about,
        and (with a shared cache) the chunk summary was already published,
        so abandonment costs a replay, never a divergence.
        """
        for attempt in range(3):
            try:
                self.client.report(self.worker_id, results=results, failures=failures)
                return
            except (ConnectionError, TimeoutError, OSError):
                if attempt == 2:
                    return
                self._stop.wait(self.poll_interval)


def add_worker_flags(parser: argparse.ArgumentParser) -> None:
    """Add the remote-worker flags (shared with the ``repro worker`` verb)."""
    parser.add_argument(
        "--server",
        default=None,
        help="serve endpoint to lease from (default: $REPRO_SERVER or http://127.0.0.1:8642)",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="fleet-unique worker id (default: derived from host/pid)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed chunk cache directory shared with the fleet",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="seconds between empty lease polls (default %(default)s)",
    )
    parser.add_argument(
        "--max-idle",
        type=float,
        default=None,
        help="exit after this many consecutive seconds without work (default: run forever)",
    )
    parser.add_argument(
        "--throttle",
        type=float,
        default=0.0,
        help="debug: sleep this many seconds before each chunk",
    )


def build_parser() -> argparse.ArgumentParser:
    """CLI for the standalone remote worker (``python -m repro.serve.remote``)."""
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Lease and execute chunks from a repro serve endpoint over HTTP.",
    )
    add_worker_flags(parser)
    return parser


def worker_from_args(args: argparse.Namespace) -> RemoteWorker:
    """Build the :class:`RemoteWorker` for parsed worker arguments."""
    server = args.server or os.environ.get("REPRO_SERVER") or "http://127.0.0.1:8642"
    return RemoteWorker(
        server,
        worker_id=args.worker_id,
        cache_dir=args.cache_dir,
        poll_interval=args.poll_interval,
        max_idle=args.max_idle,
        throttle=args.throttle,
    )


def main(argv: "list[str] | None" = None) -> int:
    """Entry point: run one remote worker in the foreground until idle/Ctrl-C."""
    worker = worker_from_args(build_parser().parse_args(argv))
    print(f"worker {worker.worker_id} leasing from {worker.client.base_url}", flush=True)
    try:
        reported = worker.run_forever()
    except KeyboardInterrupt:
        reported = worker.chunks_executed + worker.chunks_cached
    print(
        f"worker {worker.worker_id} exiting: "
        f"{worker.chunks_executed} executed, {worker.chunks_cached} cached, "
        f"{worker.chunks_failed} failed ({reported} reported)",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
