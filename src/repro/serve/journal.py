"""Durable job journal: append-only JSONL behind the serve scheduler.

PR 6's server kept the whole job table in memory — a restart forgot every
in-flight job and every completed memo.  This module makes the queue
durable with the cheapest machinery that survives ``kill -9``: every
scheduler state transition is appended as one JSON line to a journal file
(conventionally ``journal.jsonl`` next to the chunk cache), and a
restarting server replays the journal through
:meth:`repro.serve.jobs.JobScheduler.restore` to rebuild the table.

Three record kinds cover the whole lifecycle:

``{"record": "submit", "job_id", "key", "seq", "priority", "spec"}``
    a *new* job entered the queue (coalesced submissions mutate nothing
    durable and are not journaled);

``{"record": "state", "job_id", "state", ["result"|"error"]}``
    a terminal transition — ``done`` carries the full RunResult payload so
    completed memos survive a restart, ``failed`` carries the message;

``{"record": "evict", "job_id"}``
    the TTL/LRU sweep dropped a terminal memo, so replay must not
    resurrect it.

Replay semantics: records are applied in file order; a restored
non-terminal job re-enters the queue as ``queued`` with its original id,
key, seq and priority, and its chunks re-execute through the shared
content-addressed chunk cache — already-published chunk summaries replay
with ``chunks_executed == 0``, so a restart costs only the unpublished
tail.  After replay the journal is *compacted*: the file is atomically
rewritten with one ``submit`` (plus terminal ``state``) line per surviving
job, so repeated restarts do not grow it without bound.

Writes are append + flush + fsync per record — the scheduler mutates at
chunk granularity (milliseconds of sampling work each), so durability is
nowhere near the hot path.  A torn final line (the crash happened
mid-write) is tolerated on load and dropped.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["JobJournal", "load_journal"]


def load_journal(path: str | Path) -> "list[dict]":
    """Read every intact record of a journal file (missing file → ``[]``).

    A truncated final line — the process died mid-append — is silently
    dropped; any other malformed line raises, since it means the file is
    not a journal.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: list[dict] = []
    raw = path.read_bytes().decode("utf-8")
    lines = raw.split("\n")
    for position, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if position >= len(lines) - 2:
                break  # torn tail from a mid-append crash
            raise ValueError(f"corrupt journal line {position + 1} in {path}") from None
        if not isinstance(record, dict) or "record" not in record:
            raise ValueError(f"journal line {position + 1} in {path} is not a record")
        records.append(record)
    return records


class JobJournal:
    """Append-only JSONL journal of scheduler state transitions.

    The scheduler calls :meth:`append` for every durable transition; the
    server calls :meth:`compact` after a restart replay.  The file handle
    stays open in append mode for the journal's lifetime.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def __repr__(self) -> str:
        return f"JobJournal({str(self.path)!r})"

    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def compact(self, records: "list[dict]") -> None:
        """Atomically rewrite the journal to exactly ``records``.

        Called after a restart replay with the surviving jobs' snapshot
        (one ``submit`` plus optional terminal ``state`` per job), so the
        file size tracks the live table instead of the full history.
        """
        self._handle.close()
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, self.path)
        except BaseException:
            with open(self.path, "a", encoding="utf-8"):
                pass  # journal must stay openable even if compaction failed
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise
        finally:
            self._handle = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        """Close the underlying file handle."""
        self._handle.close()
