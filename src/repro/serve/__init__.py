"""``repro serve`` — a distributed execution service over the chunk fabric.

The service turns the repository's existing scale substrate — the
worker-count-invariant chunk plan (:mod:`repro.parallel`) and the
content-addressed chunk cache (:mod:`repro.cache`) — into a long-running
compute fabric that many clients share:

:mod:`repro.serve.jobs`
    the deduplicating priority job queue and the chunk-lease scheduler.
    Identical canonical :class:`~repro.api.spec.RunSpec` submissions
    coalesce into one job; workers lease fixed 1024-shot chunk ranges with
    deadlines, so a killed worker never strands a job.

:mod:`repro.serve.worker`
    the worker process: builds the pipeline stages for a job once, then
    executes leased chunks through :func:`repro.parallel.chunk_error_counts`,
    replaying and publishing ``(shots, errors)`` summaries through the
    shared :class:`repro.cache.ResultCache`.

:mod:`repro.serve.server`
    the asyncio HTTP service (stdlib only): ``POST /jobs``,
    ``GET /jobs/<id>/events`` (NDJSON streaming progress with live Wilson
    estimates), ``GET /jobs/<id>/result`` and ``GET /healthz``.

:mod:`repro.serve.client`
    a stdlib client used by ``repro submit`` / ``repro jobs``, the suite
    runner's server mode and the integration tests.

:mod:`repro.serve.remote`
    the scale-out path: ``repro worker --server URL`` leases chunk ranges
    over HTTP (``POST /lease`` / ``/chunks`` / ``/heartbeat``) from any
    host, interoperating with local workers in one fleet.

:mod:`repro.serve.journal`
    the durable queue: submissions and terminal transitions journal to an
    append-only JSONL so a restarted server resumes in-flight jobs (their
    published chunks replaying from the cache) and keeps completed memos,
    which in turn live under a TTL and LRU cap so the job table stays
    bounded.

Because jobs consume the exact chunk plan, seed streams and stopping rule
the offline :class:`repro.api.Pipeline` uses, a served result is
**bit-identical** to the same RunSpec run offline, for every server worker
count — pinned by ``tests/test_serve_integration.py``.
"""

from repro.serve.client import ServeClient
from repro.serve.jobs import Job, JobQueueStats, JobScheduler, JobState, job_key
from repro.serve.journal import JobJournal, load_journal
from repro.serve.remote import RemoteWorker
from repro.serve.server import ReproServer, ServeConfig, serve_in_thread

__all__ = [
    "Job",
    "JobJournal",
    "JobQueueStats",
    "JobScheduler",
    "JobState",
    "RemoteWorker",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "job_key",
    "load_journal",
    "serve_in_thread",
]
