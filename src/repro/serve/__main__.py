"""``python -m repro.serve`` — run the serve fabric in the foreground.

Thin argparse shell over :class:`repro.serve.server.ReproServer`; the
``repro serve`` CLI verb delegates here.  Prints ``serving on http://...``
once the socket is bound (the CI smoke harness and ``serve_in_thread``
users parse that line), then runs until ``POST /shutdown`` or Ctrl-C.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib

from repro.serve.server import ReproServer, ServeConfig

__all__ = ["add_serve_flags", "build_parser", "config_from_args", "main", "run_server"]


def add_serve_flags(parser: argparse.ArgumentParser) -> None:
    """Add the daemon flags (shared with the ``repro serve`` subcommand)."""
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default %(default)s)")
    parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help="bind port; 0 picks an ephemeral port (default %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="local worker processes; 0 serves remote workers only (default %(default)s)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed chunk cache directory shared with offline runs",
    )
    parser.add_argument(
        "--journal",
        nargs="?",
        const="auto",
        default=None,
        metavar="PATH",
        help="durable-queue journal JSONL; bare --journal places it at "
        "<cache-dir>/journal.jsonl (default: durability off)",
    )
    parser.add_argument(
        "--memo-ttl",
        type=float,
        default=3600.0,
        help="seconds an idle completed-job memo is retained; 0 disables the "
        "TTL (default %(default)s)",
    )
    parser.add_argument(
        "--memo-cap",
        type=int,
        default=1024,
        help="max completed-job memos retained (LRU evicted past this); 0 "
        "disables the cap (default %(default)s)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help="seconds before an unrenewed worker lease is requeued (default %(default)s)",
    )
    parser.add_argument(
        "--lease-chunks",
        type=int,
        default=4,
        help="chunks granted per lease (default %(default)s)",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.25,
        help="watchdog period for lease expiry and worker death (default %(default)s)",
    )
    parser.add_argument(
        "--throttle",
        type=float,
        default=0.0,
        help="debug: sleep this many seconds per chunk in every worker",
    )


def build_parser() -> argparse.ArgumentParser:
    """CLI for the serve daemon."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Run the repro distributed execution service.",
    )
    add_serve_flags(parser)
    return parser


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    """Build the :class:`ServeConfig` for parsed daemon arguments."""
    return ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        journal=args.journal,
        memo_ttl=args.memo_ttl or None,
        memo_cap=args.memo_cap or None,
        lease_timeout=args.lease_timeout,
        lease_chunks=args.lease_chunks,
        poll_interval=args.poll_interval,
        throttle=args.throttle,
    )


async def _serve(config: ServeConfig) -> None:
    server = ReproServer(config)
    await server.start()
    print(f"serving on {server.url}", flush=True)
    await server.wait_stopped()


def run_server(config: ServeConfig) -> int:
    """Serve in the foreground until ``POST /shutdown`` or Ctrl-C."""
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(_serve(config))
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """Entry point: parse arguments, serve until shutdown."""
    args = build_parser().parse_args(argv)
    return run_server(config_from_args(args))


if __name__ == "__main__":
    raise SystemExit(main())
