"""The ``repro serve`` asyncio HTTP service (stdlib only, no framework).

One process hosts the :class:`~repro.serve.jobs.JobScheduler` plus a pool
of local worker *processes* (:mod:`repro.serve.worker`); HTTP is a thin
transport over both, and remote workers (:mod:`repro.serve.remote`) drive
the same lease table over three extra endpoints.  Endpoints:

``POST /jobs``
    Submit ``{"spec": {...RunSpec...}, "priority": N}`` (or a bare RunSpec
    payload).  Identical canonical specs coalesce into one job; the
    response carries the job summary and a ``coalesced`` flag.

``GET /jobs`` / ``GET /jobs/<id>``
    List job summaries / fetch one.

``GET /jobs/<id>/events?since=N``
    NDJSON event stream: a ``job`` snapshot, then one ``progress`` line
    per consumed chunk (shots, errors, current rate, live Wilson relative
    error, convergence flag), then a terminal ``done`` (with the full
    RunResult payload) or ``failed`` line.  Every job-scoped event carries
    a monotonically increasing ``seq``; ``since=N`` replays retained
    history after sequence ``N`` before going live, so a client whose
    connection dropped resumes without duplicates.

``GET /jobs/<id>/result?timeout=S``
    Block until the job finishes and return its result payload (``504``
    when the poll window expires first — clients re-poll).

``POST /lease`` / ``POST /chunks`` / ``POST /heartbeat``
    The remote-worker protocol: claim a chunk range, report chunk
    summaries (or job failures), renew a lease mid-chunk.  Remote and
    local workers share one scheduler, so any mix yields bit-identical
    results.

``GET /healthz``
    Worker liveness (local and remote), job tallies, memo/TTL counters
    and the fabric counters (:class:`~repro.serve.jobs.JobQueueStats`).

``POST /shutdown``
    Ask the server to stop (used by the CI smoke harness).

Responses are single-shot ``Connection: close`` HTTP/1.1 — one request
per connection keeps the stdlib parser honest; event streams simply write
NDJSON until the terminal event and close.  Malformed bodies and query
parameters answer ``400`` with a JSON error instead of dropping the
connection.

Local workers are started via the ``spawn`` context (safe to combine with
the server's threads), watched by a reaper task that requeues expired
leases, detects dead processes (``Process.is_alive``), respawns
replacements, and sweeps expired job memos — a SIGKILLed worker delays a
job by at most one lease timeout.  ``workers=0`` runs a server with no
local fleet at all (remote workers do everything).

With a journal configured (``journal=...``, conventionally next to the
chunk cache), submissions and terminal transitions are appended to an
append-only JSONL (:mod:`repro.serve.journal`); a restarted server
replays it, resumes unfinished jobs (published chunks replay from the
cache with ``chunks_executed == 0``) and keeps completed memos.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import multiprocessing
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.api.spec import RunSpec
from repro.serve.jobs import ChunkTask, JobScheduler, JobState
from repro.serve.journal import JobJournal, load_journal
from repro.serve.worker import worker_main

__all__ = ["ReproServer", "ServeConfig", "serve_in_thread"]

#: Per-job event-history retention: the replay buffer for reconnecting
#: clients keeps this many recent events (terminal events always survive).
EVENT_HISTORY_LIMIT = 512

#: A remote worker is considered part of the fleet while its last lease,
#: report or heartbeat is at most this many lease timeouts old.
REMOTE_ACTIVE_LEASES = 3.0


class _BadRequest(ValueError):
    """A client error that should answer HTTP 400 with a JSON message."""


def _query_float(query: dict, name: str, default: float) -> float:
    """Parse a float query parameter; malformed values raise ``_BadRequest``."""
    raw = query.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise _BadRequest(f"query parameter {name}={raw!r} is not a number") from None
    if not math.isfinite(value):
        raise _BadRequest(f"query parameter {name}={raw!r} must be finite")
    return value


def _query_int(query: dict, name: str, default: int) -> int:
    """Parse an integer query parameter; malformed values raise ``_BadRequest``."""
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise _BadRequest(f"query parameter {name}={raw!r} is not an integer") from None


def _json_body(body: bytes) -> dict:
    """Decode a JSON object request body; anything else raises ``_BadRequest``."""
    try:
        payload = json.loads(body.decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise _BadRequest(f"request body is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise _BadRequest("request body must be a JSON object")
    return payload


@dataclass(frozen=True)
class ServeConfig:
    """Service configuration: bind address, fleet size and queue policy.

    ``port=0`` binds an ephemeral port (the bound port is reported by
    :attr:`ReproServer.url`).  ``workers=0`` starts no local processes —
    remote workers carry the whole load.  ``lease_timeout`` is the
    watchdog horizon for worker death; ``lease_chunks`` the chunk-range
    size one lease grants; ``window`` the per-basis speculation bound
    (defaults to enough chunks to keep the whole fleet busy).

    ``journal`` is the durable queue's JSONL path (``"auto"`` places it at
    ``<cache_dir>/journal.jsonl``); ``None`` disables durability.
    ``memo_ttl``/``memo_cap`` bound how long and how many terminal job
    memos are retained (``None`` disables the respective bound).
    ``throttle`` artificially slows workers (seconds per chunk) — a
    test/debug knob only.
    """

    host: str = "127.0.0.1"
    port: int = 8642
    workers: int = 2
    cache_dir: str | None = None
    journal: str | None = None
    lease_timeout: float = 30.0
    lease_chunks: int = 4
    window: int | None = None
    memo_ttl: float | None = 3600.0
    memo_cap: int | None = 1024
    poll_interval: float = 0.25
    respawn: bool = True
    throttle: float = 0.0

    @property
    def effective_window(self) -> int:
        """The speculation window: explicit, or sized to saturate the fleet."""
        if self.window is not None:
            return max(1, self.window)
        return max(8, 2 * max(1, self.workers) * self.lease_chunks)

    @property
    def journal_path(self) -> str | None:
        """The resolved journal path (``"auto"`` → next to the chunk cache)."""
        if self.journal != "auto":
            return self.journal
        if not self.cache_dir:
            raise ValueError("journal='auto' needs cache_dir to place the journal next to")
        return str(Path(self.cache_dir) / "journal.jsonl")


class _WorkerHandle:
    """Server-side view of one local worker process."""

    def __init__(self, worker_id: str, process, inbox) -> None:
        self.id = worker_id
        self.process = process
        self.inbox = inbox
        self.outstanding = 0
        self.lost = False

    @property
    def alive(self) -> bool:
        return not self.lost and self.process.is_alive()


class ReproServer:
    """The serve fabric: scheduler + worker pool + HTTP front end."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        journal_path = self.config.journal_path
        self.journal = JobJournal(journal_path) if journal_path else None
        self.scheduler = JobScheduler(
            lease_timeout=self.config.lease_timeout,
            lease_chunks=self.config.lease_chunks,
            window=self.config.effective_window,
            memo_ttl=self.config.memo_ttl,
            memo_cap=self.config.memo_cap,
            journal=self.journal,
        )
        self._ctx = multiprocessing.get_context("spawn")
        self._outbox = self._ctx.Queue()
        self._workers: dict[str, _WorkerHandle] = {}
        self._worker_serial = 0
        #: Remote workers by id → monotonic time of their last contact.
        self._remote_seen: dict[str, float] = {}
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._reader: threading.Thread | None = None
        self._reaper: asyncio.Task | None = None
        self._subscribers: dict[str, set[asyncio.Queue]] = {}
        self._done_events: dict[str, asyncio.Event] = {}
        #: Per-job numbered event history (the ``?since=`` replay buffer).
        self._event_log: dict[str, list[dict]] = {}
        self._event_seq: dict[str, int] = {}
        self._stopping = asyncio.Event()
        self.workers_respawned = 0
        self.jobs_restored = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """Base URL of the bound HTTP endpoint."""
        if self._server is None:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return f"http://{host}:{port}"

    async def start(self) -> None:
        """Restore the journal, bind the socket, spawn workers, start pumps."""
        self._loop = asyncio.get_running_loop()
        self._restore_journal()
        for _ in range(self.config.workers):
            self._spawn_worker()
        self._reader = threading.Thread(target=self._pump_outbox, daemon=True)
        self._reader.start()
        self._reaper = asyncio.ensure_future(self._reap_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._dispatch()

    def _restore_journal(self) -> None:
        """Replay (then compact) the journal so the job table survives restarts."""
        if self.journal is None:
            return
        records = load_journal(self.journal.path)
        if not records:
            return
        requeued = self.scheduler.restore(records, now=time.monotonic())
        self.jobs_restored = len(requeued)
        self.journal.compact(self.scheduler.snapshot_records())

    async def wait_stopped(self) -> None:
        """Block until :meth:`request_stop` (or ``POST /shutdown``), then clean up."""
        await self._stopping.wait()
        await self.stop()

    def request_stop(self) -> None:
        """Ask the serving loop to exit (threadsafe from the loop's thread)."""
        self._stopping.set()

    async def stop(self) -> None:
        """Tear everything down: HTTP, reaper, workers, reader thread, journal."""
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        if self._reaper is not None:
            self._reaper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reaper
        for handle in self._workers.values():
            if handle.alive:
                with contextlib.suppress(Exception):
                    handle.inbox.put(("stop",))
        deadline = time.monotonic() + 2.0
        for handle in self._workers.values():
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        self._outbox.put(("__exit__",))
        if self._reader is not None:
            self._reader.join(timeout=2.0)
        if self.journal is not None:
            self.journal.close()

    def _spawn_worker(self) -> _WorkerHandle:
        self._worker_serial += 1
        worker_id = f"w{self._worker_serial}"
        inbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, inbox, self._outbox, self.config.cache_dir, self.config.throttle),
            daemon=True,
            name=f"repro-serve-{worker_id}",
        )
        process.start()
        handle = _WorkerHandle(worker_id, process, inbox)
        self._workers[worker_id] = handle
        return handle

    # ------------------------------------------------------------------
    # Worker plumbing
    # ------------------------------------------------------------------
    def _pump_outbox(self) -> None:
        """(Reader thread) forward worker messages into the event loop."""
        while True:
            message = self._outbox.get()
            if message[0] == "__exit__":
                return
            loop = self._loop
            if loop is None or loop.is_closed():
                return
            loop.call_soon_threadsafe(self._on_worker_message, message)

    def _on_worker_message(self, message) -> None:
        now = time.monotonic()
        kind = message[0]
        if kind == "result":
            _, worker_id, task, shots, errors, cached, info = message
            handle = self._workers.get(worker_id)
            if handle is not None:
                handle.outstanding = max(0, handle.outstanding - 1)
            events = self.scheduler.record_result(
                worker_id, task, shots, errors, cached, info, now
            )
        elif kind == "error":
            _, worker_id, job_id, error_message = message
            handle = self._workers.get(worker_id)
            if handle is not None:
                handle.outstanding = max(0, handle.outstanding - 1)
            events = self.scheduler.fail_job(job_id, error_message, now)
        else:  # pragma: no cover - future message kinds
            events = []
        self._publish(events)
        self._dispatch()

    def _dispatch(self) -> None:
        """Hand leases to every idle local worker while work is available."""
        now = time.monotonic()
        for handle in self._workers.values():
            if not handle.alive or handle.outstanding > 0:
                continue
            tasks = self.scheduler.assign(handle.id, now)
            if not tasks:
                continue
            specs = {}
            for task in tasks:
                if task.job_id not in specs:
                    specs[task.job_id] = self.scheduler.jobs[task.job_id].spec.to_dict()
            handle.inbox.put(("run", tasks, specs))
            handle.outstanding += len(tasks)

    def _remote_active(self, now: float) -> bool:
        """True while any remote worker has been heard from recently."""
        horizon = REMOTE_ACTIVE_LEASES * self.config.lease_timeout
        return any(now - seen <= horizon for seen in self._remote_seen.values())

    async def _reap_loop(self) -> None:
        """Periodic watchdog: expired leases, dead workers, respawns, eviction.

        Respawns are capped (``4 + 4 * workers``): a fleet whose processes
        die instantly — a broken environment, not a transient kill — must
        not fork-bomb the host.  With the cap exhausted, every local
        worker dead and no remote worker in contact, pending jobs are
        failed so clients see the outage instead of a silent hang.  The
        same tick sweeps expired job memos and their event state.
        """
        respawn_budget = 4 + 4 * self.config.workers
        while True:
            await asyncio.sleep(self.config.poll_interval)
            now = time.monotonic()
            self.scheduler.reap(now)
            for job_id in self.scheduler.evict(now):
                self._drop_job_state(job_id)
            stale_horizon = 10 * REMOTE_ACTIVE_LEASES * self.config.lease_timeout
            for worker_id, seen in list(self._remote_seen.items()):
                if now - seen > stale_horizon:
                    del self._remote_seen[worker_id]
            for worker_id, handle in list(self._workers.items()):
                if handle.lost or handle.process.is_alive():
                    continue
                handle.lost = True
                handle.outstanding = 0
                self.scheduler.worker_lost(worker_id)
                if self.config.respawn and self.workers_respawned < respawn_budget:
                    self._spawn_worker()
                    self.workers_respawned += 1
            local_fleet_down = self._workers and not any(
                handle.alive for handle in self._workers.values()
            )
            if local_fleet_down and not self._remote_active(now):
                for job in list(self.scheduler.jobs.values()):
                    if job.state not in JobState.TERMINAL:
                        self._publish(
                            self.scheduler.fail_job(job.id, "no live workers remain", now)
                        )
                continue
            self._dispatch()

    def _drop_job_state(self, job_id: str) -> None:
        """Forget an evicted job's event history, done flag and subscribers."""
        self._event_log.pop(job_id, None)
        self._event_seq.pop(job_id, None)
        self._done_events.pop(job_id, None)
        self._subscribers.pop(job_id, None)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _publish(self, events: "list[dict]") -> None:
        """Number, retain and fan out job-scoped events to subscribers."""
        for event in events:
            job_id = event.get("job_id")
            if job_id is not None:
                seq = self._event_seq.get(job_id, 0) + 1
                self._event_seq[job_id] = seq
                event = {**event, "seq": seq}
                log = self._event_log.setdefault(job_id, [])
                log.append(event)
                if len(log) > EVENT_HISTORY_LIMIT:
                    # keep the tail (and thereby any terminal event)
                    del log[: len(log) - EVENT_HISTORY_LIMIT]
            for queue in self._subscribers.get(job_id, ()):  # type: ignore[arg-type]
                queue.put_nowait(event)
            if event["event"] in ("done", "failed"):
                self._done_event(job_id).set()

    def _done_event(self, job_id: str) -> asyncio.Event:
        event = self._done_events.get(job_id)
        if event is None:
            event = self._done_events[job_id] = asyncio.Event()
        return event

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            try:
                length = int(headers.get("content-length") or 0)
            except ValueError:
                await _respond(
                    writer,
                    400,
                    {"error": f"malformed Content-Length {headers.get('content-length')!r}"},
                )
                return
            if length > 0:
                body = await reader.readexactly(length)
            try:
                await self._route(method, target, body, writer)
            except _BadRequest as error:
                await _respond(writer, 400, {"error": str(error)})
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _route(self, method: str, target: str, body: bytes, writer) -> None:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {
            key: values[-1]
            for key, values in parse_qs(split.query, keep_blank_values=True).items()
        }
        if method == "GET" and path == "/healthz":
            await _respond(writer, 200, self._health())
        elif method == "POST" and path == "/jobs":
            await self._post_jobs(body, writer)
        elif method == "GET" and path == "/jobs":
            await _respond(
                writer,
                200,
                {"jobs": [job.summary() for job in self.scheduler.jobs.values()]},
            )
        elif method == "POST" and path == "/lease":
            await self._post_lease(body, writer)
        elif method == "POST" and path == "/chunks":
            await self._post_chunks(body, writer)
        elif method == "POST" and path == "/heartbeat":
            await self._post_heartbeat(body, writer)
        elif method == "POST" and path == "/shutdown":
            await _respond(writer, 200, {"status": "stopping"})
            self.request_stop()
        elif method == "GET" and path.startswith("/jobs/"):
            await self._get_job(path, query, writer)
        else:
            await _respond(writer, 404, {"error": f"no route for {method} {split.path}"})

    def _health(self) -> dict:
        now = time.monotonic()
        horizon = REMOTE_ACTIVE_LEASES * self.config.lease_timeout
        return {
            "status": "ok",
            "workers": [
                {
                    "id": handle.id,
                    "pid": handle.process.pid,
                    "alive": handle.alive,
                    "outstanding": handle.outstanding,
                }
                for handle in self._workers.values()
            ],
            "remote_workers": [
                {
                    "id": worker_id,
                    "last_seen_s": round(now - seen, 3),
                    "active": now - seen <= horizon,
                }
                for worker_id, seen in self._remote_seen.items()
            ],
            "workers_respawned": self.workers_respawned,
            "jobs": self.scheduler.job_counts(),
            "jobs_restored": self.jobs_restored,
            "memo": {
                "retained": self.scheduler.memo_count,
                "ttl": self.scheduler.memo_ttl,
                "cap": self.scheduler.memo_cap,
                "evicted": self.scheduler.stats.jobs_evicted,
            },
            "journal": str(self.journal.path) if self.journal else None,
            "stats": self.scheduler.stats.to_dict(),
        }

    async def _post_jobs(self, body: bytes, writer) -> None:
        try:
            payload = _json_body(body)
            spec_payload = payload.get("spec", payload)
            priority = int(payload.get("priority", 0)) if "priority" in payload else 0
            spec = RunSpec.from_dict(spec_payload)
            job, coalesced, events = self.scheduler.submit(
                spec, priority=priority, now=time.monotonic()
            )
        except _BadRequest:
            raise
        except (ValueError, TypeError, KeyError) as error:
            await _respond(writer, 400, {"error": str(error)})
            return
        self._publish(events)
        if job.state in JobState.TERMINAL:
            self._done_event(job.id).set()
        self._dispatch()
        status = 200 if coalesced else 201
        await _respond(writer, status, {"job": job.summary(), "coalesced": coalesced})

    # ------------------------------------------------------------------
    # Remote-worker protocol
    # ------------------------------------------------------------------
    def _worker_id_of(self, payload: dict) -> str:
        worker_id = payload.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            raise _BadRequest("body must carry a non-empty string 'worker_id'")
        return worker_id

    async def _post_lease(self, body: bytes, writer) -> None:
        """Grant a chunk range to a remote worker (``POST /lease``)."""
        worker_id = self._worker_id_of(_json_body(body))
        now = time.monotonic()
        self._remote_seen[worker_id] = now
        tasks = self.scheduler.assign(worker_id, now)
        specs = {}
        for task in tasks:
            if task.job_id not in specs:
                specs[task.job_id] = self.scheduler.jobs[task.job_id].spec.to_dict()
        await _respond(
            writer,
            200,
            {
                "tasks": [
                    {
                        "job_id": task.job_id,
                        "basis": task.basis,
                        "index": task.index,
                        "shots": task.shots,
                    }
                    for task in tasks
                ],
                "specs": specs,
                "lease_timeout": self.config.lease_timeout,
            },
        )

    async def _post_chunks(self, body: bytes, writer) -> None:
        """Fold remote chunk reports (and failures) into the scheduler."""
        payload = _json_body(body)
        worker_id = self._worker_id_of(payload)
        results = payload.get("results", [])
        failures = payload.get("failures", [])
        if not isinstance(results, list) or not isinstance(failures, list):
            raise _BadRequest("'results' and 'failures' must be lists")
        now = time.monotonic()
        self._remote_seen[worker_id] = now
        accepted = 0
        for entry in results:
            try:
                raw_task = entry["task"]
                task = ChunkTask(
                    str(raw_task["job_id"]),
                    str(raw_task["basis"]),
                    int(raw_task["index"]),
                    int(raw_task["shots"]),
                )
                shots = int(entry["shots"])
                errors = int(entry["errors"])
                cached = bool(entry.get("cached", False))
                info = entry.get("info")
            except (KeyError, TypeError, ValueError) as error:
                raise _BadRequest(f"malformed chunk result: {error}") from None
            self._publish(
                self.scheduler.record_result(worker_id, task, shots, errors, cached, info, now)
            )
            accepted += 1
        for entry in failures:
            try:
                job_id = str(entry["job_id"])
                message = str(entry.get("error", "worker failure"))
            except (KeyError, TypeError) as error:
                raise _BadRequest(f"malformed failure report: {error}") from None
            self._publish(self.scheduler.fail_job(job_id, message, now))
            accepted += 1
        self._dispatch()
        await _respond(writer, 200, {"accepted": accepted})

    async def _post_heartbeat(self, body: bytes, writer) -> None:
        """Renew a remote worker's lease deadline (``POST /heartbeat``)."""
        worker_id = self._worker_id_of(_json_body(body))
        now = time.monotonic()
        self._remote_seen[worker_id] = now
        await _respond(writer, 200, {"renewed": self.scheduler.renew(worker_id, now)})

    async def _get_job(self, path: str, query: dict, writer) -> None:
        segments = path.split("/")  # ["", "jobs", "<id>"] or ["", "jobs", "<id>", "<verb>"]
        job = self.scheduler.get(segments[2])
        if job is None:
            await _respond(writer, 404, {"error": f"unknown job {segments[2]!r}"})
            return
        verb = segments[3] if len(segments) > 3 else None
        if verb is None:
            await _respond(writer, 200, {"job": job.summary()})
        elif verb == "result":
            timeout = _query_float(query, "timeout", 300.0)
            if job.state not in JobState.TERMINAL:
                try:
                    await asyncio.wait_for(
                        self._done_event(job.id).wait(), timeout=max(0.0, timeout)
                    )
                except asyncio.TimeoutError:
                    await _respond(
                        writer,
                        504,
                        {"error": "timed out waiting for job", "job": job.summary()},
                    )
                    return
            await _respond(writer, 200, {"job": job.summary(), "result": job.result})
        elif verb == "events":
            since = _query_int(query, "since", 0)
            await self._stream_events(job, writer, since)
        else:
            await _respond(writer, 404, {"error": f"unknown job endpoint {verb!r}"})

    async def _stream_events(self, job, writer, since: int = 0) -> None:
        """NDJSON event stream: snapshot, history replay, live events.

        The subscription queue is registered *before* history is snapshotted,
        so an event published during replay is never lost — it is simply
        skipped by sequence number if the replay already covered it.
        """
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.setdefault(job.id, set()).add(queue)
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Cache-Control: no-store\r\n"
                b"Connection: close\r\n\r\n"
            )
            await _write_line(writer, {"event": "job", "job": job.summary()})
            last_seq = since
            replayed_terminal = False
            for event in list(self._event_log.get(job.id, ())):
                if event["seq"] <= since:
                    continue
                await _write_line(writer, event)
                last_seq = event["seq"]
                if event["event"] in ("done", "failed"):
                    replayed_terminal = True
            if replayed_terminal:
                return
            if job.state in JobState.TERMINAL:
                # Terminal but nothing retained to replay (journal-restored
                # memo, or history trimmed): synthesize the terminal event.
                await _write_line(writer, _terminal_event(job))
                return
            while True:
                event = await queue.get()
                seq = event.get("seq")
                if seq is not None and seq <= last_seq:
                    continue  # already covered by the history replay
                await _write_line(writer, event)
                if seq is not None:
                    last_seq = seq
                if event["event"] in ("done", "failed"):
                    return
        finally:
            self._subscribers.get(job.id, set()).discard(queue)


def _terminal_event(job) -> dict:
    if job.state == JobState.FAILED:
        return {"event": "failed", "job_id": job.id, "error": job.error}
    return {"event": "done", "job_id": job.id, "result": job.result}


async def _write_line(writer, payload: dict) -> None:
    writer.write(json.dumps(payload, allow_nan=False).encode("utf-8") + b"\n")
    await writer.drain()


async def _respond(writer, status: int, payload: dict) -> None:
    reasons = {
        200: "OK",
        201: "Created",
        400: "Bad Request",
        404: "Not Found",
        504: "Gateway Timeout",
    }
    body = json.dumps(payload, allow_nan=False).encode("utf-8")
    writer.write(
        f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n".encode("latin-1")
    )
    writer.write(body)
    await writer.drain()


@contextlib.contextmanager
def serve_in_thread(config: ServeConfig | None = None):
    """Run a :class:`ReproServer` on a background thread; yields the server.

    The embedding entry point the integration tests (and any library user)
    rely on: the event loop, worker fleet and HTTP endpoint live on a
    daemon thread; the caller talks to ``server.url`` over HTTP and the
    context manager tears everything down on exit.
    """
    server = ReproServer(config)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as error:  # pragma: no cover - startup failure
            failure.append(error)
            started.set()
            return
        started.set()
        loop.run_until_complete(server.wait_stopped())
        loop.close()

    thread = threading.Thread(target=_run, daemon=True, name="repro-serve")
    thread.start()
    started.wait(timeout=60.0)
    if failure:  # pragma: no cover - startup failure
        raise failure[0]
    try:
        yield server
    finally:
        loop.call_soon_threadsafe(server.request_stop)
        thread.join(timeout=30.0)
