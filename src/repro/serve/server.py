"""The ``repro serve`` asyncio HTTP service (stdlib only, no framework).

One process hosts the :class:`~repro.serve.jobs.JobScheduler` plus a pool
of worker *processes* (:mod:`repro.serve.worker`); HTTP is a thin
transport over both.  Endpoints:

``POST /jobs``
    Submit ``{"spec": {...RunSpec...}, "priority": N}`` (or a bare RunSpec
    payload).  Identical canonical specs coalesce into one job; the
    response carries the job summary and a ``coalesced`` flag.

``GET /jobs`` / ``GET /jobs/<id>``
    List job summaries / fetch one.

``GET /jobs/<id>/events``
    NDJSON event stream: a ``job`` snapshot, then one ``progress`` line
    per consumed chunk (shots, errors, current rate, live Wilson relative
    error, convergence flag), then a terminal ``done`` (with the full
    RunResult payload) or ``failed`` line.

``GET /jobs/<id>/result?timeout=S``
    Block until the job finishes and return its result payload.

``GET /healthz``
    Worker liveness, job tallies and the fabric counters
    (:class:`~repro.serve.jobs.JobQueueStats`).

``POST /shutdown``
    Ask the server to stop (used by the CI smoke harness).

Responses are single-shot ``Connection: close`` HTTP/1.1 — one request
per connection keeps the stdlib parser honest; event streams simply write
NDJSON until the terminal event and close.

Workers are started via the ``spawn`` context (safe to combine with the
server's threads), watched by a reaper task that requeues expired leases,
detects dead processes (``Process.is_alive``), and respawns replacements —
a SIGKILLed worker delays a job by at most one lease timeout.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import multiprocessing
import threading
import time
from dataclasses import dataclass
from urllib.parse import parse_qs, urlsplit

from repro.api.spec import RunSpec
from repro.serve.jobs import JobScheduler, JobState
from repro.serve.worker import worker_main

__all__ = ["ReproServer", "ServeConfig", "serve_in_thread"]


@dataclass(frozen=True)
class ServeConfig:
    """Service configuration: bind address, fleet size and lease policy.

    ``port=0`` binds an ephemeral port (the bound port is reported by
    :attr:`ReproServer.url`).  ``lease_timeout`` is the watchdog horizon
    for worker death; ``lease_chunks`` the chunk-range size one lease
    grants; ``window`` the per-basis speculation bound (defaults to enough
    chunks to keep the whole fleet busy).  ``throttle`` artificially slows
    workers (seconds per chunk) — a test/debug knob only.
    """

    host: str = "127.0.0.1"
    port: int = 8642
    workers: int = 2
    cache_dir: str | None = None
    lease_timeout: float = 30.0
    lease_chunks: int = 4
    window: int | None = None
    poll_interval: float = 0.25
    respawn: bool = True
    throttle: float = 0.0

    @property
    def effective_window(self) -> int:
        """The speculation window: explicit, or sized to saturate the fleet."""
        if self.window is not None:
            return max(1, self.window)
        return max(8, 2 * self.workers * self.lease_chunks)


class _WorkerHandle:
    """Server-side view of one worker process."""

    def __init__(self, worker_id: str, process, inbox) -> None:
        self.id = worker_id
        self.process = process
        self.inbox = inbox
        self.outstanding = 0
        self.lost = False

    @property
    def alive(self) -> bool:
        return not self.lost and self.process.is_alive()


class ReproServer:
    """The serve fabric: scheduler + worker pool + HTTP front end."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.scheduler = JobScheduler(
            lease_timeout=self.config.lease_timeout,
            lease_chunks=self.config.lease_chunks,
            window=self.config.effective_window,
        )
        self._ctx = multiprocessing.get_context("spawn")
        self._outbox = self._ctx.Queue()
        self._workers: dict[str, _WorkerHandle] = {}
        self._worker_serial = 0
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._reader: threading.Thread | None = None
        self._reaper: asyncio.Task | None = None
        self._subscribers: dict[str, set[asyncio.Queue]] = {}
        self._done_events: dict[str, asyncio.Event] = {}
        self._stopping = asyncio.Event()
        self.workers_respawned = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """Base URL of the bound HTTP endpoint."""
        if self._server is None:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return f"http://{host}:{port}"

    async def start(self) -> None:
        """Bind the socket, spawn the worker fleet and start the pumps."""
        self._loop = asyncio.get_running_loop()
        for _ in range(self.config.workers):
            self._spawn_worker()
        self._reader = threading.Thread(target=self._pump_outbox, daemon=True)
        self._reader.start()
        self._reaper = asyncio.ensure_future(self._reap_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    async def wait_stopped(self) -> None:
        """Block until :meth:`request_stop` (or ``POST /shutdown``), then clean up."""
        await self._stopping.wait()
        await self.stop()

    def request_stop(self) -> None:
        """Ask the serving loop to exit (threadsafe from the loop's thread)."""
        self._stopping.set()

    async def stop(self) -> None:
        """Tear everything down: HTTP, reaper, workers, reader thread."""
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        if self._reaper is not None:
            self._reaper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reaper
        for handle in self._workers.values():
            if handle.alive:
                with contextlib.suppress(Exception):
                    handle.inbox.put(("stop",))
        deadline = time.monotonic() + 2.0
        for handle in self._workers.values():
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        self._outbox.put(("__exit__",))
        if self._reader is not None:
            self._reader.join(timeout=2.0)

    def _spawn_worker(self) -> _WorkerHandle:
        self._worker_serial += 1
        worker_id = f"w{self._worker_serial}"
        inbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, inbox, self._outbox, self.config.cache_dir, self.config.throttle),
            daemon=True,
            name=f"repro-serve-{worker_id}",
        )
        process.start()
        handle = _WorkerHandle(worker_id, process, inbox)
        self._workers[worker_id] = handle
        return handle

    # ------------------------------------------------------------------
    # Worker plumbing
    # ------------------------------------------------------------------
    def _pump_outbox(self) -> None:
        """(Reader thread) forward worker messages into the event loop."""
        while True:
            message = self._outbox.get()
            if message[0] == "__exit__":
                return
            loop = self._loop
            if loop is None or loop.is_closed():
                return
            loop.call_soon_threadsafe(self._on_worker_message, message)

    def _on_worker_message(self, message) -> None:
        now = time.monotonic()
        kind = message[0]
        if kind == "result":
            _, worker_id, task, shots, errors, cached, info = message
            handle = self._workers.get(worker_id)
            if handle is not None:
                handle.outstanding = max(0, handle.outstanding - 1)
            events = self.scheduler.record_result(
                worker_id, task, shots, errors, cached, info, now
            )
        elif kind == "error":
            _, worker_id, job_id, error_message = message
            handle = self._workers.get(worker_id)
            if handle is not None:
                handle.outstanding = max(0, handle.outstanding - 1)
            events = self.scheduler.fail_job(job_id, error_message)
        else:  # pragma: no cover - future message kinds
            events = []
        self._publish(events)
        self._dispatch()

    def _dispatch(self) -> None:
        """Hand leases to every idle worker while work is available."""
        now = time.monotonic()
        for handle in self._workers.values():
            if not handle.alive or handle.outstanding > 0:
                continue
            tasks = self.scheduler.assign(handle.id, now)
            if not tasks:
                continue
            specs = {}
            for task in tasks:
                if task.job_id not in specs:
                    specs[task.job_id] = self.scheduler.jobs[task.job_id].spec.to_dict()
            handle.inbox.put(("run", tasks, specs))
            handle.outstanding += len(tasks)

    async def _reap_loop(self) -> None:
        """Periodic watchdog: expired leases, dead workers, respawns.

        Respawns are capped (``4 + 4 * workers``): a fleet whose processes
        die instantly — a broken environment, not a transient kill — must
        not fork-bomb the host.  With the cap exhausted and every worker
        dead, pending jobs are failed so clients see the outage instead of
        a silent hang.
        """
        respawn_budget = 4 + 4 * self.config.workers
        while True:
            await asyncio.sleep(self.config.poll_interval)
            now = time.monotonic()
            self.scheduler.reap(now)
            for worker_id, handle in list(self._workers.items()):
                if handle.lost or handle.process.is_alive():
                    continue
                handle.lost = True
                handle.outstanding = 0
                self.scheduler.worker_lost(worker_id)
                if self.config.respawn and self.workers_respawned < respawn_budget:
                    self._spawn_worker()
                    self.workers_respawned += 1
            if not any(handle.alive for handle in self._workers.values()):
                for job in list(self.scheduler.jobs.values()):
                    if job.state not in JobState.TERMINAL:
                        self._publish(
                            self.scheduler.fail_job(job.id, "no live workers remain")
                        )
                continue
            self._dispatch()

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _publish(self, events: "list[dict]") -> None:
        for event in events:
            job_id = event.get("job_id")
            for queue in self._subscribers.get(job_id, ()):  # type: ignore[arg-type]
                queue.put_nowait(event)
            if event["event"] in ("done", "failed"):
                self._done_event(job_id).set()

    def _done_event(self, job_id: str) -> asyncio.Event:
        event = self._done_events.get(job_id)
        if event is None:
            event = self._done_events[job_id] = asyncio.Event()
        return event

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length") or 0)
            if length > 0:
                body = await reader.readexactly(length)
            await self._route(method, target, body, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _route(self, method: str, target: str, body: bytes, writer) -> None:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {key: values[-1] for key, values in parse_qs(split.query).items()}
        if method == "GET" and path == "/healthz":
            await _respond(writer, 200, self._health())
        elif method == "POST" and path == "/jobs":
            await self._post_jobs(body, writer)
        elif method == "GET" and path == "/jobs":
            await _respond(
                writer,
                200,
                {"jobs": [job.summary() for job in self.scheduler.jobs.values()]},
            )
        elif method == "POST" and path == "/shutdown":
            await _respond(writer, 200, {"status": "stopping"})
            self.request_stop()
        elif method == "GET" and path.startswith("/jobs/"):
            await self._get_job(path, query, writer)
        else:
            await _respond(writer, 404, {"error": f"no route for {method} {split.path}"})

    def _health(self) -> dict:
        return {
            "status": "ok",
            "workers": [
                {
                    "id": handle.id,
                    "pid": handle.process.pid,
                    "alive": handle.alive,
                    "outstanding": handle.outstanding,
                }
                for handle in self._workers.values()
            ],
            "workers_respawned": self.workers_respawned,
            "jobs": self.scheduler.job_counts(),
            "stats": self.scheduler.stats.to_dict(),
        }

    async def _post_jobs(self, body: bytes, writer) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            spec_payload = payload.get("spec", payload)
            priority = int(payload.get("priority", 0)) if "priority" in payload else 0
            spec = RunSpec.from_dict(spec_payload)
            job, coalesced, events = self.scheduler.submit(spec, priority=priority)
        except (ValueError, TypeError, KeyError, json.JSONDecodeError) as error:
            await _respond(writer, 400, {"error": str(error)})
            return
        self._publish(events)
        if job.state in JobState.TERMINAL:
            self._done_event(job.id).set()
        self._dispatch()
        status = 200 if coalesced else 201
        await _respond(writer, status, {"job": job.summary(), "coalesced": coalesced})

    async def _get_job(self, path: str, query: dict, writer) -> None:
        segments = path.split("/")  # ["", "jobs", "<id>"] or ["", "jobs", "<id>", "<verb>"]
        job = self.scheduler.get(segments[2])
        if job is None:
            await _respond(writer, 404, {"error": f"unknown job {segments[2]!r}"})
            return
        verb = segments[3] if len(segments) > 3 else None
        if verb is None:
            await _respond(writer, 200, {"job": job.summary()})
        elif verb == "result":
            timeout = float(query.get("timeout", 300.0))
            try:
                await asyncio.wait_for(self._done_event(job.id).wait(), timeout=timeout)
            except asyncio.TimeoutError:
                await _respond(
                    writer, 504, {"error": "timed out waiting for job", "job": job.summary()}
                )
                return
            await _respond(writer, 200, {"job": job.summary(), "result": job.result})
        elif verb == "events":
            await self._stream_events(job, writer)
        else:
            await _respond(writer, 404, {"error": f"unknown job endpoint {verb!r}"})

    async def _stream_events(self, job, writer) -> None:
        """NDJSON event stream: snapshot, live progress, terminal event."""
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.setdefault(job.id, set()).add(queue)
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Cache-Control: no-store\r\n"
                b"Connection: close\r\n\r\n"
            )
            await _write_line(writer, {"event": "job", "job": job.summary()})
            if job.state in JobState.TERMINAL:
                await _write_line(writer, _terminal_event(job))
                return
            while True:
                event = await queue.get()
                await _write_line(writer, event)
                if event["event"] in ("done", "failed"):
                    return
        finally:
            self._subscribers.get(job.id, set()).discard(queue)


def _terminal_event(job) -> dict:
    if job.state == JobState.FAILED:
        return {"event": "failed", "job_id": job.id, "error": job.error}
    return {"event": "done", "job_id": job.id, "result": job.result}


async def _write_line(writer, payload: dict) -> None:
    writer.write(json.dumps(payload, allow_nan=False).encode("utf-8") + b"\n")
    await writer.drain()


async def _respond(writer, status: int, payload: dict) -> None:
    reasons = {
        200: "OK",
        201: "Created",
        400: "Bad Request",
        404: "Not Found",
        504: "Gateway Timeout",
    }
    body = json.dumps(payload, allow_nan=False).encode("utf-8")
    writer.write(
        f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n".encode("latin-1")
    )
    writer.write(body)
    await writer.drain()


@contextlib.contextmanager
def serve_in_thread(config: ServeConfig | None = None):
    """Run a :class:`ReproServer` on a background thread; yields the server.

    The embedding entry point the integration tests (and any library user)
    rely on: the event loop, worker fleet and HTTP endpoint live on a
    daemon thread; the caller talks to ``server.url`` over HTTP and the
    context manager tears everything down on exit.
    """
    server = ReproServer(config)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as error:  # pragma: no cover - startup failure
            failure.append(error)
            started.set()
            return
        started.set()
        loop.run_until_complete(server.wait_stopped())
        loop.close()

    thread = threading.Thread(target=_run, daemon=True, name="repro-serve")
    thread.start()
    started.wait(timeout=60.0)
    if failure:  # pragma: no cover - startup failure
        raise failure[0]
    try:
        yield server
    finally:
        loop.call_soon_threadsafe(server.request_stop)
        thread.join(timeout=30.0)
