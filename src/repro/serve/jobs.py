"""Deduplicating priority job queue and chunk-lease scheduler.

This module is the service's brain, written as plain synchronous state
machines so the queue semantics are unit-testable without sockets or
processes (the asyncio server and the worker pool are thin shells around
it — ``tests/test_serve_queue.py`` drives it directly with a fake clock).

**Deduplication.**  A submitted :class:`~repro.api.spec.RunSpec` is reduced
to its canonical payload (:func:`repro.api.spec.canonical_spec` — the same
normalisation sweeps and suite rows resume on, so ``workers`` never splits
a job) and hashed into a :func:`job_key`.  Two submissions with the same
key *coalesce*: the second subscriber attaches to the first job and exactly
one computation runs.  Because results are deterministic functions of the
canonical spec, a completed job is a permanent memo — resubmitting a done
spec returns the finished job immediately.

**Chunk plan.**  A job's work is the exact chunk plan the offline
:class:`repro.api.Pipeline` would execute: per basis (``Z``/``X``), fixed
1024-shot chunks laid out for ``budget.plan_shots``
(:func:`repro.parallel.chunk_sizes`) with per-chunk spawned seed streams.
Chunk *results* are consumed strictly in chunk order through the budget's
:class:`~repro.analysis.stats.StoppingRule`; out-of-order completions are
buffered and speculative chunks past an adaptive stopping point are
discarded — byte-for-byte the offline engine's contract, which is what
makes served results bit-identical to offline runs.

**Leases.**  Workers are granted chunk ranges under a deadline
(``lease_timeout``); every reported chunk renews the lease, and remote
workers may also :meth:`~JobScheduler.renew` explicitly (heartbeat).  An
expired lease — a worker that died, hung, or was killed mid-job — has its
unfinished chunks requeued ahead of fresh dispatch, so the job still
completes (and completes *identically*, since a chunk's content depends
only on its index and stream, never on which worker runs it).  The lease
protocol is transport-agnostic: the in-process pool and the HTTP
``POST /lease`` / ``POST /chunks`` path (:mod:`repro.serve.remote`) drive
the same table.

**Durability.**  With a :class:`~repro.serve.journal.JobJournal` attached,
every new submission and terminal transition is appended as one JSONL
record; :meth:`~JobScheduler.restore` replays a journal after a restart so
pending/running jobs resume (their published chunks replaying from the
shared cache at ``chunks_executed == 0``) and completed memos survive.

**TTL / eviction.**  Terminal jobs are memos with a bounded lifetime:
:meth:`~JobScheduler.evict` sweeps memos idle past ``memo_ttl`` and trims
the LRU table past ``memo_cap``, so a long-lived server's job table stays
bounded no matter how many specs pass through it.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.analysis.stats import relative_error
from repro.api.pipeline import RunResult, adaptive_report
from repro.api.spec import RunSpec, canonical_spec
from repro.parallel import DEFAULT_CHUNK_SHOTS, AdaptiveEstimate, chunk_sizes
from repro.sim.estimator import LogicalErrorRates, rates_from_adaptive_estimates

__all__ = [
    "BasisProgress",
    "ChunkTask",
    "Job",
    "JobQueueStats",
    "JobScheduler",
    "JobState",
    "Lease",
    "job_key",
]

#: Basis execution order; matches ``repro.api.pipeline._BASES``.
BASES = ("Z", "X")


def job_key(spec: RunSpec) -> str:
    """Content address of one job: SHA-256 of the canonical spec payload.

    ``workers`` (and nothing else) is dropped by the canonicalisation, so
    submissions that differ only in an execution detail share a key.
    """
    payload = canonical_spec(spec.to_dict())
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class JobState:
    """Job lifecycle states (plain strings so summaries JSON-serialise)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    #: States in which no further work will be dispatched.
    TERMINAL = (DONE, FAILED)


@dataclass(frozen=True)
class ChunkTask:
    """One leased unit of work: chunk ``index`` of ``basis`` of a job."""

    job_id: str
    basis: str
    index: int
    shots: int


class BasisProgress:
    """Strictly-ordered consumption of one basis' chunk plan.

    Chunk results arrive in any order (workers race) but are *consumed* —
    accumulated into ``shots``/``errors`` and fed to the stopping rule —
    strictly by chunk index, exactly like
    :func:`repro.parallel.adaptive_sample_and_decode`.  ``done`` flips when
    the rule converges or the plan is exhausted; anything buffered or
    reported after that is speculation and is discarded.
    """

    def __init__(self, sizes: list[int], rule) -> None:
        self.sizes = sizes
        self.rule = rule
        self.next_consume = 0
        self.next_dispatch = 0
        self.buffered: dict[int, tuple[int, int, bool]] = {}
        self.shots = 0
        self.errors = 0
        self.chunk_counts: list[tuple[int, int]] = []
        self.cache_hits = 0
        self.fresh_chunks = 0
        self.converged = False
        self.done = not sizes

    def record(self, index: int, shots: int, errors: int, cached: bool) -> bool:
        """Buffer one chunk result; consume in order.  True if the frontier moved."""
        if self.done or index < self.next_consume or index in self.buffered:
            return False
        self.buffered[index] = (shots, errors, cached)
        moved = False
        while not self.done and self.next_consume in self.buffered:
            shots, errors, cached = self.buffered.pop(self.next_consume)
            self.next_consume += 1
            self.shots += shots
            self.errors += errors
            self.chunk_counts.append((shots, errors))
            if cached:
                self.cache_hits += 1
            else:
                self.fresh_chunks += 1
            moved = True
            if self.rule.converged(self.errors, self.shots):
                self.converged = True
                self.done = True
            elif self.next_consume >= len(self.sizes):
                self.done = True
        if self.done:
            self.buffered.clear()
        return moved

    def dispatchable(self, window: int) -> "list[int]":
        """Chunk indices ready to hand out, bounded by the speculation window.

        ``window`` caps how far past the consumption frontier the scheduler
        speculates — pools on the offline path do the same via
        ``lookahead`` — so an adaptive job that stops early never fans its
        whole ``max_shots`` plan out to the fleet.
        """
        if self.done:
            return []
        horizon = min(len(self.sizes), self.next_consume + max(1, window))
        indices = list(range(max(self.next_dispatch, self.next_consume), horizon))
        return indices

    def mark_dispatched(self, index: int) -> None:
        """Advance the dispatch frontier past ``index``."""
        self.next_dispatch = max(self.next_dispatch, index + 1)

    @property
    def rate(self) -> float:
        """Observed error fraction of the consumed prefix."""
        return self.errors / self.shots if self.shots else 0.0

    def rse(self) -> float | None:
        """Current Wilson relative error (``None`` while it is infinite)."""
        value = relative_error(self.errors, self.shots, z=self.rule.z)
        return None if value != value or value == float("inf") else value

    def estimate(self) -> AdaptiveEstimate:
        """The consumed prefix as an :class:`~repro.parallel.AdaptiveEstimate`."""
        return AdaptiveEstimate(
            shots=self.shots,
            errors=self.errors,
            converged=self.converged,
            chunk_counts=list(self.chunk_counts),
            cache_hits=self.cache_hits,
            fresh_chunks=self.fresh_chunks,
        )

    def summary(self) -> dict:
        """JSON-ready progress snapshot of this basis."""
        return {
            "chunks_done": self.next_consume,
            "chunks_planned": len(self.sizes),
            "shots": self.shots,
            "errors": self.errors,
            "rate": self.rate,
            "rse": self.rse(),
            "converged": self.converged,
            "done": self.done,
        }


class Job:
    """One deduplicated computation: a spec, its chunk plan, its progress."""

    def __init__(self, job_id: str, key: str, spec: RunSpec, priority: int, seq: int) -> None:
        self.id = job_id
        self.key = key
        self.spec = spec
        self.priority = priority
        self.seq = seq
        self.state = JobState.QUEUED
        self.submissions = 1
        sizes = chunk_sizes(spec.budget.plan_shots, DEFAULT_CHUNK_SHOTS)
        rule = spec.budget.stopping_rule()
        self.progress: dict[str, BasisProgress] = {
            basis: BasisProgress(list(sizes), rule) for basis in BASES
        }
        #: Expired-lease chunks to re-dispatch before fresh speculation.
        self.requeued: list[ChunkTask] = []
        #: Pipeline facts reported by the first worker to build the job's
        #: stages (schedule depth, synthesis counters) — needed to assemble
        #: a RunResult identical to the offline pipeline's.
        self.depth: int | None = None
        self.synthesis_evaluations: int | None = None
        self.baseline_overall: float | None = None
        self.result: dict | None = None
        self.error: str | None = None

    # ------------------------------------------------------------------
    @property
    def adaptive(self) -> bool:
        """True when the job's budget streams through a precision target."""
        return self.spec.budget.adaptive

    @property
    def complete(self) -> bool:
        """True when every basis has consumed its plan (or converged)."""
        return all(progress.done for progress in self.progress.values())

    def chunk_task(self, basis: str, index: int) -> ChunkTask:
        """The :class:`ChunkTask` for one chunk of one basis."""
        return ChunkTask(self.id, basis, index, self.progress[basis].sizes[index])

    def absorb_info(self, info: dict | None) -> None:
        """Record the worker-reported pipeline facts (first reporter wins)."""
        if not info or self.depth is not None:
            return
        self.depth = info.get("depth")
        self.synthesis_evaluations = info.get("synthesis_evaluations")
        self.baseline_overall = info.get("baseline_overall")

    def finalize(self) -> dict:
        """Assemble the RunResult payload — the offline pipeline's, bit for bit.

        Adaptive jobs reduce exactly like
        :func:`repro.sim.estimator.rates_from_adaptive_estimates`; fixed
        jobs reproduce ``count_wrong / shots`` (integer counts divided once,
        the same float the offline ``fraction_wrong`` computes over the
        merged batch).
        """
        depth = self.depth if self.depth is not None else 0
        estimates = {basis: progress.estimate() for basis, progress in self.progress.items()}
        if self.adaptive:
            rates = rates_from_adaptive_estimates(depth, estimates)
            report = adaptive_report(self.spec.budget, estimates)
        else:
            shots = self.spec.budget.shots
            rates = LogicalErrorRates(
                error_x=self.progress["Z"].rate,
                error_z=self.progress["X"].rate,
                shots=shots,
                depth=depth,
            )
            report = None
        self.result = RunResult(
            spec=self.spec,
            rates=rates,
            depth=depth,
            synthesis_evaluations=self.synthesis_evaluations,
            baseline_overall=self.baseline_overall,
            adaptive=report,
        ).to_dict()
        self.state = JobState.DONE
        return self.result

    def summary(self) -> dict:
        """JSON-ready job snapshot (the ``GET /jobs/<id>`` payload)."""
        payload = {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "priority": self.priority,
            "submissions": self.submissions,
            "adaptive": self.adaptive,
            "spec": self.spec.to_dict(),
            "depth": self.depth,
            "progress": {basis: progress.summary() for basis, progress in self.progress.items()},
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


@dataclass
class Lease:
    """One worker's claim on a set of chunks, valid until ``deadline``."""

    worker_id: str
    tasks: "set[ChunkTask]" = field(default_factory=set)
    deadline: float = 0.0


@dataclass
class JobQueueStats:
    """Fabric-wide counters (the dedup/lease acceptance evidence)."""

    jobs_submitted: int = 0
    jobs_coalesced: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_evicted: int = 0
    jobs_restored: int = 0
    chunks_executed: int = 0
    chunks_cached: int = 0
    chunks_discarded: int = 0
    leases_granted: int = 0
    leases_expired: int = 0
    leases_renewed: int = 0

    def to_dict(self) -> dict:
        """Plain-dict view for ``/healthz``."""
        return dict(vars(self))


class JobScheduler:
    """Priority queue + dedup map + lease table, driven by an external clock.

    Every mutating call takes ``now`` (any monotonic float) and returns the
    NDJSON-ready events it produced, so the asyncio server stays a thin
    transport: it forwards worker messages in and fans events out.
    """

    def __init__(
        self,
        *,
        lease_timeout: float = 30.0,
        lease_chunks: int = 4,
        window: int = 8,
        memo_ttl: float | None = None,
        memo_cap: int | None = None,
        journal=None,
    ) -> None:
        self.lease_timeout = lease_timeout
        self.lease_chunks = max(1, lease_chunks)
        self.window = max(1, window)
        self.memo_ttl = memo_ttl if memo_ttl and memo_ttl > 0 else None
        self.memo_cap = memo_cap if memo_cap and memo_cap > 0 else None
        self.journal = journal
        self.jobs: dict[str, Job] = {}
        self._by_key: dict[str, str] = {}
        #: Min-heap of ``(-priority, seq, job_id)`` — higher priority first,
        #: FIFO within a priority level.  Entries go stale when a job
        #: finishes or its priority is raised; stale entries are dropped
        #: lazily during dispatch scans.
        self._heap: list[tuple[int, int, str]] = []
        self._leases: dict[str, Lease] = {}
        #: Terminal jobs in LRU order: ``job_id -> last_touch`` clock value.
        #: Iteration order is recency (oldest first); the TTL/cap sweep in
        #: :meth:`evict` pops from the front.
        self._memos: "OrderedDict[str, float]" = OrderedDict()
        self._seq = 0
        self.stats = JobQueueStats()

    # ------------------------------------------------------------------
    # Submission / dedup
    # ------------------------------------------------------------------
    def submit(
        self, spec: RunSpec, *, priority: int = 0, now: float = 0.0
    ) -> "tuple[Job, bool, list[dict]]":
        """Submit a spec; returns ``(job, coalesced, events)``.

        A spec whose canonical payload matches a live (or completed) job
        coalesces into it — ``coalesced=True`` and no new computation.  A
        coalescing submission with a *higher* priority raises the job's
        priority (the fabric serves the most urgent subscriber).  Specs
        that previously **failed** are retried with a fresh job.  ``now``
        feeds the memo LRU: touching a completed memo keeps it warm
        against the TTL/cap sweep of :meth:`evict`.
        """
        if spec.budget.plan_shots <= 0:
            raise ValueError("serve jobs need budget.shots (or max_shots) >= 1")
        key = job_key(spec)
        existing_id = self._by_key.get(key)
        if existing_id is not None:
            job = self.jobs[existing_id]
            if job.state != JobState.FAILED:
                job.submissions += 1
                self.stats.jobs_coalesced += 1
                if job.state in JobState.TERMINAL:
                    self._touch_memo(job.id, now)
                elif priority > job.priority:
                    job.priority = priority
                    self._push(job)
                return job, True, []
        self._seq += 1
        job = Job(f"j{self._seq:04d}-{key[:12]}", key, spec, priority, self._seq)
        self.jobs[job.id] = job
        self._by_key[key] = job.id
        self._push(job)
        self.stats.jobs_submitted += 1
        self._journal(
            {
                "record": "submit",
                "job_id": job.id,
                "key": key,
                "seq": job.seq,
                "priority": priority,
                "spec": spec.to_dict(),
            }
        )
        return job, False, [{"event": "queued", "job_id": job.id}]

    def _journal(self, record: dict) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def _touch_memo(self, job_id: str, now: float) -> None:
        self._memos[job_id] = now
        self._memos.move_to_end(job_id)

    def _push(self, job: Job) -> None:
        heapq.heappush(self._heap, (-job.priority, job.seq, job.id))

    def get(self, job_id: str) -> Job | None:
        """The job with ``job_id`` (or ``None``)."""
        return self.jobs.get(job_id)

    # ------------------------------------------------------------------
    # Dispatch / leases
    # ------------------------------------------------------------------
    def assign(self, worker_id: str, now: float) -> "list[ChunkTask]":
        """Lease up to ``lease_chunks`` chunks of the best runnable job.

        Requeued chunks (from expired leases) go out first; fresh chunks
        follow the basis plans within the speculation window.  Returns an
        empty list when nothing is runnable.  The granted lease expires at
        ``now + lease_timeout`` unless renewed by reported results.
        """
        job = self._next_runnable()
        if job is None:
            return []
        tasks: list[ChunkTask] = []
        while job.requeued and len(tasks) < self.lease_chunks:
            tasks.append(job.requeued.pop(0))
        if len(tasks) < self.lease_chunks:
            for basis in BASES:
                progress = job.progress[basis]
                for index in progress.dispatchable(self.window):
                    if len(tasks) >= self.lease_chunks:
                        break
                    tasks.append(job.chunk_task(basis, index))
                    progress.mark_dispatched(index)
        if not tasks:
            return []
        if job.state == JobState.QUEUED:
            job.state = JobState.RUNNING
        lease = self._leases.setdefault(worker_id, Lease(worker_id))
        lease.tasks.update(tasks)
        lease.deadline = now + self.lease_timeout
        self.stats.leases_granted += 1
        return tasks

    def _next_runnable(self) -> Job | None:
        """Highest-priority job with dispatchable work (stale entries dropped)."""
        kept: list[tuple[int, int, str]] = []
        found: Job | None = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            neg_priority, _, job_id = entry
            job = self.jobs.get(job_id)
            if job is None or job.state in JobState.TERMINAL or -neg_priority != job.priority:
                continue  # stale: finished, or superseded by a priority raise
            kept.append(entry)
            if job.requeued or any(
                job.progress[basis].dispatchable(self.window) for basis in BASES
            ):
                found = job
                break
        for entry in kept:
            heapq.heappush(self._heap, entry)
        return found

    def has_dispatchable(self) -> bool:
        """True when some job could use an idle worker right now."""
        return self._next_runnable() is not None

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def record_result(
        self,
        worker_id: str,
        task: ChunkTask,
        shots: int,
        errors: int,
        cached: bool,
        info: dict | None,
        now: float,
    ) -> "list[dict]":
        """Fold one worker-reported chunk back into its job.

        Renews the worker's lease (a reporting worker is alive), advances
        the ordered consumption frontier, and — when the last basis
        finishes — finalizes the job.  Results for finished jobs (adaptive
        speculation past the stopping point, or a lease that expired and
        was re-run) are counted as discarded and otherwise ignored.
        """
        lease = self._leases.get(worker_id)
        if lease is not None:
            lease.tasks.discard(task)
            lease.deadline = now + self.lease_timeout
            if not lease.tasks:
                del self._leases[worker_id]
        job = self.jobs.get(task.job_id)
        if job is None or job.state in JobState.TERMINAL:
            self.stats.chunks_discarded += 1
            return []
        job.absorb_info(info)
        progress = job.progress.get(task.basis)
        if progress is None:
            self.stats.chunks_discarded += 1
            return []
        if (
            progress.done
            or task.index < progress.next_consume
            or task.index in progress.buffered
        ):
            # Speculation past an adaptive stop, or a duplicate of a chunk
            # another worker (possibly before a server restart) already
            # delivered — drop it before it reaches any counter, so the
            # fabric stats never double-count a chunk.
            self.stats.chunks_discarded += 1
            return []
        progress.record(task.index, shots, errors, cached)
        if cached:
            self.stats.chunks_cached += 1
        else:
            self.stats.chunks_executed += 1
        events = [
            {
                "event": "progress",
                "job_id": job.id,
                "basis": task.basis,
                **progress.summary(),
            }
        ]
        if job.complete:
            result = job.finalize()
            self.stats.jobs_completed += 1
            self._drop_job_tasks(job.id)
            self._touch_memo(job.id, now)
            self._journal(
                {"record": "state", "job_id": job.id, "state": JobState.DONE, "result": result}
            )
            events.append({"event": "done", "job_id": job.id, "result": result})
        return events

    def fail_job(self, job_id: str, message: str, now: float = 0.0) -> "list[dict]":
        """Mark a job failed (worker could not build or execute it)."""
        job = self.jobs.get(job_id)
        if job is None or job.state in JobState.TERMINAL:
            return []
        job.state = JobState.FAILED
        job.error = message
        self.stats.jobs_failed += 1
        self._drop_job_tasks(job_id)
        self._touch_memo(job_id, now)
        self._journal(
            {"record": "state", "job_id": job_id, "state": JobState.FAILED, "error": message}
        )
        return [{"event": "failed", "job_id": job_id, "error": message}]

    def _drop_job_tasks(self, job_id: str) -> None:
        """Remove a finished job's chunks from every outstanding lease."""
        for worker_id in list(self._leases):
            lease = self._leases[worker_id]
            lease.tasks = {task for task in lease.tasks if task.job_id != job_id}
            if not lease.tasks:
                del self._leases[worker_id]

    def renew(self, worker_id: str, now: float) -> bool:
        """Extend a worker's lease deadline (the ``POST /heartbeat`` path).

        Remote workers executing a long chunk heartbeat between reports so
        the reaper does not requeue work that is still making progress.
        Returns ``False`` when the worker holds no lease (it expired, or
        every chunk was already reported) — the worker should simply lease
        again.
        """
        lease = self._leases.get(worker_id)
        if lease is None:
            return False
        lease.deadline = now + self.lease_timeout
        self.stats.leases_renewed += 1
        return True

    # ------------------------------------------------------------------
    # Memo TTL / eviction
    # ------------------------------------------------------------------
    def evict(self, now: float) -> "list[str]":
        """Drop terminal memos past ``memo_ttl`` or beyond ``memo_cap`` (LRU).

        Completed jobs are permanent memos *while they live*; this sweep
        bounds how long (and how many) they live, so a long-running server
        stops leaking job-table memory.  Returns the evicted job ids so the
        server can drop its per-job event state too.  A resubmission of an
        evicted spec simply runs fresh (and, with a chunk cache, replays
        published chunks at zero sampling cost).
        """
        evicted: list[str] = []
        if self.memo_ttl is not None:
            while self._memos:
                job_id, touched = next(iter(self._memos.items()))
                if now - touched < self.memo_ttl:
                    break
                evicted.append(job_id)
                del self._memos[job_id]
        if self.memo_cap is not None:
            while len(self._memos) > self.memo_cap:
                job_id, _ = self._memos.popitem(last=False)
                evicted.append(job_id)
        for job_id in evicted:
            job = self.jobs.pop(job_id, None)
            if job is not None and self._by_key.get(job.key) == job_id:
                del self._by_key[job.key]
            self.stats.jobs_evicted += 1
            self._journal({"record": "evict", "job_id": job_id})
        return evicted

    @property
    def memo_count(self) -> int:
        """Number of terminal jobs currently retained as memos."""
        return len(self._memos)

    # ------------------------------------------------------------------
    # Durability: journal replay / snapshot
    # ------------------------------------------------------------------
    def restore(self, records: "list[dict]", now: float = 0.0) -> "list[Job]":
        """Rebuild the job table from journal ``records`` (in file order).

        Non-terminal jobs re-enter the queue as ``queued`` with their
        original id/key/seq/priority — their chunk progress restarts from
        zero, but workers replay already-published chunk summaries through
        the shared content-addressed cache, so the completed prefix costs
        ``chunks_executed == 0``.  ``done`` records restore the full result
        memo; ``evict`` records keep swept memos dead.  Returns the jobs
        that re-entered the queue (the ones a server should re-dispatch).
        """
        for record in records:
            kind = record.get("record")
            if kind == "submit":
                spec = RunSpec.from_dict(record["spec"])
                job = Job(
                    record["job_id"],
                    record["key"],
                    spec,
                    int(record.get("priority", 0)),
                    int(record["seq"]),
                )
                self.jobs[job.id] = job
                self._by_key[job.key] = job.id
                self._seq = max(self._seq, job.seq)
            elif kind == "state":
                job = self.jobs.get(record["job_id"])
                if job is None:
                    continue
                job.state = record["state"]
                if job.state == JobState.DONE:
                    job.result = record.get("result")
                    job.depth = (job.result or {}).get("depth")
                else:
                    job.error = record.get("error")
                self._touch_memo(job.id, now)
            elif kind == "evict":
                job = self.jobs.pop(record["job_id"], None)
                self._memos.pop(record["job_id"], None)
                if job is not None and self._by_key.get(job.key) == job.id:
                    del self._by_key[job.key]
            else:
                raise ValueError(f"unknown journal record kind {kind!r}")
        requeued: list[Job] = []
        for job in self.jobs.values():
            if job.state in JobState.TERMINAL:
                continue
            job.state = JobState.QUEUED
            self._push(job)
            requeued.append(job)
        self.stats.jobs_restored = len(requeued)
        return requeued

    def snapshot_records(self) -> "list[dict]":
        """The compacted journal equivalent of the current job table.

        One ``submit`` record (plus a terminal ``state`` record where
        applicable) per live job, in submission order — what
        :meth:`repro.serve.journal.JobJournal.compact` rewrites the file
        with after a restart replay.
        """
        records: list[dict] = []
        for job in sorted(self.jobs.values(), key=lambda j: j.seq):
            records.append(
                {
                    "record": "submit",
                    "job_id": job.id,
                    "key": job.key,
                    "seq": job.seq,
                    "priority": job.priority,
                    "spec": job.spec.to_dict(),
                }
            )
            if job.state == JobState.DONE:
                records.append(
                    {
                        "record": "state",
                        "job_id": job.id,
                        "state": JobState.DONE,
                        "result": job.result,
                    }
                )
            elif job.state == JobState.FAILED:
                records.append(
                    {
                        "record": "state",
                        "job_id": job.id,
                        "state": JobState.FAILED,
                        "error": job.error,
                    }
                )
        return records

    # ------------------------------------------------------------------
    # Lease expiry / worker death
    # ------------------------------------------------------------------
    def reap(self, now: float) -> "list[ChunkTask]":
        """Requeue the chunks of every lease whose deadline has passed."""
        requeued: list[ChunkTask] = []
        for worker_id, lease in list(self._leases.items()):
            if lease.deadline <= now:
                requeued.extend(self._expire(worker_id))
        return requeued

    def worker_lost(self, worker_id: str) -> "list[ChunkTask]":
        """Requeue a dead worker's leased chunks immediately.

        The lease *timeout* alone would eventually recover them; death
        detection just recovers faster when the process demonstrably exited.
        """
        if worker_id not in self._leases:
            return []
        return self._expire(worker_id)

    def _expire(self, worker_id: str) -> "list[ChunkTask]":
        lease = self._leases.pop(worker_id)
        self.stats.leases_expired += 1
        requeued = []
        for task in sorted(lease.tasks, key=lambda t: (t.basis, t.index)):
            job = self.jobs.get(task.job_id)
            if job is None or job.state in JobState.TERMINAL:
                continue
            progress = job.progress[task.basis]
            if task.index >= progress.next_consume and task.index not in progress.buffered:
                job.requeued.append(task)
                requeued.append(task)
        return requeued

    # ------------------------------------------------------------------
    def job_counts(self) -> dict:
        """Job tallies by state (for ``/healthz``)."""
        counts = {state: 0 for state in (
            JobState.QUEUED, JobState.RUNNING, JobState.DONE, JobState.FAILED
        )}
        for job in self.jobs.values():
            counts[job.state] += 1
        return counts
