"""Composable noise-channel algebra.

This module generalises the historical "one dataclass of four rates" noise
model into a small algebra of *channels*.  A channel is a frozen value
object that answers one question: *which noise instructions fire at this
circuit location?*  Locations are described by :class:`NoiseSite` (the
site kind plus its qubits and time coordinates) and answers are
:class:`NoiseOp` tuples (circuit noise instructions with resolved
probabilities).  A noise model is simply a composition of channels —
:class:`ComposedNoiseModel` — and the circuit builders talk to models
exclusively through the ``channel_ops(site)`` protocol, so legacy uniform
models and arbitrary compositions flow through one code path.

Site kinds (see :func:`repro.circuits.builder.append_syndrome_round` for
where each fires):

``"gate"``
    immediately after each two-qubit Pauli check; ``site.qubits`` is the
    ``(ancilla, data)`` pair and ``site.tick`` the schedule tick.
``"idle"``
    once per idling qubit per tick; ``site.qubits`` is the single qubit.
``"measure"``
    immediately before each ancilla readout; single qubit.
``"reset"``
    immediately after ancilla preparation; ``site.qubits`` covers every
    prepared ancilla at once (one multi-qubit op, matching the legacy
    instruction stream bit for bit).

``site.round_index`` is the 0-based noisy-round index of the surrounding
syndrome round — the time coordinate consumed by :class:`DriftingChannel`.

Bias convention: a biased Pauli channel of total probability ``p`` and
bias ``eta`` splits as ``p_x = p_y = p / (eta + 2)`` and
``p_z = p * eta / (eta + 2)``, so ``eta = 1`` reduces *exactly* to the
depolarizing split ``p/3`` (bit-identical detector error models, pinned by
tests) and ``eta -> inf`` approaches pure dephasing.  The two-qubit biased
channel weights each of the 15 non-identity Pauli pairs by the product of
per-letter weights (``I, X, Y -> 1``, ``Z -> eta``), which at ``eta = 1``
is exactly the uniform ``p/15`` split of ``DEPOLARIZE2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.circuits.circuit import ONE_QUBIT_PAULIS, TWO_QUBIT_PAULIS

__all__ = [
    "GATE",
    "IDLE",
    "MEASURE",
    "RESET",
    "NoiseSite",
    "NoiseOp",
    "Channel",
    "TwoQubitDepolarizing",
    "IdleDepolarizing",
    "TwoQubitBiasedPauli",
    "IdleBiasedPauli",
    "Dephasing",
    "MeasurementFlip",
    "ResetFlip",
    "DriftingChannel",
    "ComposedNoiseModel",
    "NoiseModelBuilder",
    "biased_pauli_rates",
    "two_qubit_biased_rates",
    "biased_noise",
    "dephasing_noise",
    "drifting_noise",
]

#: Canonical site kinds.
GATE = "gate"
IDLE = "idle"
MEASURE = "measure"
RESET = "reset"


@dataclass(frozen=True)
class NoiseSite:
    """One circuit location where noise may fire.

    Attributes
    ----------
    kind:
        Site kind: ``"gate"``, ``"idle"``, ``"measure"`` or ``"reset"``.
    qubits:
        Qubits of the site (the gate pair, the single idling/measured
        qubit, or every prepared ancilla for a reset site).
    tick:
        1-based schedule tick for gate/idle sites; ``0`` for reset sites
        and ``depth + 1`` for measure sites.
    round_index:
        0-based index of the noisy syndrome round the site belongs to —
        the time coordinate of :class:`DriftingChannel`.
    """

    kind: str
    qubits: tuple[int, ...]
    tick: int = 0
    round_index: int = 0


@dataclass(frozen=True)
class NoiseOp:
    """One noise instruction a channel asks the circuit to append.

    Attributes
    ----------
    name:
        Circuit noise mnemonic (``"DEPOLARIZE2"``, ``"Z_ERROR"``,
        ``"PAULI_CHANNEL_1"``, ...).
    qubits:
        Qubits the instruction acts on.
    probability:
        Error probability for single-probability channels; ``None`` for
        ``PAULI_CHANNEL_*`` ops, which carry ``probabilities`` instead.
    probabilities:
        Per-Pauli probability tuple for ``PAULI_CHANNEL_1`` (X, Y, Z) and
        ``PAULI_CHANNEL_2`` (the 15 non-identity pairs in
        :data:`repro.circuits.circuit.TWO_QUBIT_PAULIS` order).
    """

    name: str
    qubits: tuple[int, ...]
    probability: float | None = None
    probabilities: tuple[float, ...] | None = None

    @property
    def total_probability(self) -> float:
        """Total firing probability (sum of ``probabilities`` when present)."""
        if self.probabilities is not None:
            return float(sum(self.probabilities))
        return float(self.probability or 0.0)

    def scaled(self, factor: float) -> "NoiseOp":
        """Copy with every probability multiplied by ``factor`` (clamped to 1).

        Single probabilities clamp at 1; probability tuples whose scaled sum
        would exceed 1 are rescaled proportionally so the op stays a valid
        distribution.
        """
        if self.probabilities is not None:
            scaled = [max(0.0, p * factor) for p in self.probabilities]
            total = sum(scaled)
            if total > 1.0:
                scaled = [p / total for p in scaled]
            return replace(self, probabilities=tuple(scaled))
        probability = min(1.0, max(0.0, (self.probability or 0.0) * factor))
        return replace(self, probability=probability)


def _site_rate(base: float, per_qubit: dict, qubits: tuple[int, ...]) -> float:
    """Resolve a site's rate: the maximum per-qubit override over its qubits.

    Two-qubit gates take the maximum of the two qubits' rates (the paper
    varies the *ancilla* rate, which this rule honours); single-qubit sites
    reduce to their one qubit's override.
    """
    return max(per_qubit.get(qubit, base) for qubit in qubits)


def biased_pauli_rates(p: float, eta: float) -> tuple[float, float, float]:
    """Split total probability ``p`` into ``(p_x, p_y, p_z)`` at bias ``eta``.

    ``p_x = p_y = p / (eta + 2)`` and ``p_z = p * eta / (eta + 2)``:
    ``eta = 1`` is exactly the depolarizing ``p/3`` split, ``eta -> inf``
    pure dephasing.

    Raises
    ------
    ValueError
        If ``eta`` is negative.
    """
    if eta < 0:
        raise ValueError(f"bias eta must be >= 0, got {eta}")
    share = p / (eta + 2.0)
    return (share, share, p * eta / (eta + 2.0))


def two_qubit_biased_rates(p: float, eta: float) -> tuple[float, ...]:
    """The 15 two-qubit Pauli-pair probabilities of a biased channel.

    Each non-identity pair ``(P, Q)`` is weighted by the product of
    per-letter weights (``I, X, Y -> 1``; ``Z -> eta``), normalised so the
    total is ``p``.  At ``eta = 1`` every weight is 1 and the result is the
    exact ``p/15`` split of ``DEPOLARIZE2``.  Pair order follows
    :data:`repro.circuits.circuit.TWO_QUBIT_PAULIS`.

    Raises
    ------
    ValueError
        If ``eta`` is negative.
    """
    if eta < 0:
        raise ValueError(f"bias eta must be >= 0, got {eta}")
    letter_weight = {"I": 1.0, "X": 1.0, "Y": 1.0, "Z": eta}
    weights = [
        letter_weight[first] * letter_weight[second] for first, second in TWO_QUBIT_PAULIS
    ]
    normaliser = sum(weights)
    if normaliser <= 0:
        return tuple(0.0 for _ in weights)
    return tuple(p * weight / normaliser for weight in weights)


class Channel:
    """Base class of all noise channels.

    A channel is a frozen value object answering ``ops(site)`` — the noise
    instructions to append at one :class:`NoiseSite`.  Channels respond
    only to their own site kinds and return ``()`` everywhere else, so a
    model composes channels by simple concatenation.
    """

    def ops(self, site: NoiseSite) -> tuple[NoiseOp, ...]:
        """Noise ops this channel fires at ``site`` (``()`` when inactive)."""
        raise NotImplementedError

    def scaled(self, factor: float) -> "Channel":
        """Copy of the channel with every rate multiplied by ``factor``."""
        raise NotImplementedError

    def is_noiseless(self) -> bool:
        """True when the channel can never emit an op with nonzero rate."""
        raise NotImplementedError


@dataclass(frozen=True)
class TwoQubitDepolarizing(Channel):
    """Two-qubit depolarizing after each Pauli check (``DEPOLARIZE2``).

    Attributes
    ----------
    p:
        Default depolarizing probability.
    per_qubit:
        Optional per-qubit overrides; a gate uses the maximum of its two
        qubits' rates.
    """

    p: float
    per_qubit: dict = field(default_factory=dict)

    def ops(self, site: NoiseSite) -> tuple[NoiseOp, ...]:
        """One ``DEPOLARIZE2`` op on gate sites; ``()`` elsewhere."""
        if site.kind != GATE:
            return ()
        rate = _site_rate(self.p, self.per_qubit, site.qubits)
        return (NoiseOp("DEPOLARIZE2", site.qubits, probability=rate),)

    def scaled(self, factor: float) -> "TwoQubitDepolarizing":
        """Copy with the base rate and every override multiplied by ``factor``."""
        return TwoQubitDepolarizing(
            self.p * factor, {q: p * factor for q, p in self.per_qubit.items()}
        )

    def is_noiseless(self) -> bool:
        """True when the base rate and every override are zero."""
        return self.p == 0 and not any(self.per_qubit.values())


@dataclass(frozen=True)
class IdleDepolarizing(Channel):
    """Single-qubit depolarizing on each idling qubit per tick (``DEPOLARIZE1``)."""

    p: float
    per_qubit: dict = field(default_factory=dict)

    def ops(self, site: NoiseSite) -> tuple[NoiseOp, ...]:
        """One ``DEPOLARIZE1`` op on idle sites; ``()`` elsewhere."""
        if site.kind != IDLE:
            return ()
        rate = _site_rate(self.p, self.per_qubit, site.qubits)
        return (NoiseOp("DEPOLARIZE1", site.qubits, probability=rate),)

    def scaled(self, factor: float) -> "IdleDepolarizing":
        """Copy with the base rate and every override multiplied by ``factor``."""
        return IdleDepolarizing(
            self.p * factor, {q: p * factor for q, p in self.per_qubit.items()}
        )

    def is_noiseless(self) -> bool:
        """True when the base rate and every override are zero."""
        return self.p == 0 and not any(self.per_qubit.values())


@dataclass(frozen=True)
class TwoQubitBiasedPauli(Channel):
    """Z-biased two-qubit Pauli channel after each check (``PAULI_CHANNEL_2``).

    Attributes
    ----------
    p:
        Total error probability of the channel.
    eta:
        Bias: per-letter weight of Z relative to X/Y (see
        :func:`two_qubit_biased_rates`).  ``eta = 1`` is exactly
        ``DEPOLARIZE2``.
    per_qubit:
        Optional per-qubit overrides of ``p`` (maximum-of-pair rule).
    """

    p: float
    eta: float = 1.0
    per_qubit: dict = field(default_factory=dict)

    def ops(self, site: NoiseSite) -> tuple[NoiseOp, ...]:
        """One ``PAULI_CHANNEL_2`` op on gate sites; ``()`` elsewhere."""
        if site.kind != GATE:
            return ()
        rate = _site_rate(self.p, self.per_qubit, site.qubits)
        return (
            NoiseOp(
                "PAULI_CHANNEL_2",
                site.qubits,
                probabilities=two_qubit_biased_rates(rate, self.eta),
            ),
        )

    def scaled(self, factor: float) -> "TwoQubitBiasedPauli":
        """Copy with ``p`` and every override multiplied by ``factor`` (same bias)."""
        return TwoQubitBiasedPauli(
            self.p * factor, self.eta, {q: p * factor for q, p in self.per_qubit.items()}
        )

    def is_noiseless(self) -> bool:
        """True when the base rate and every override are zero."""
        return self.p == 0 and not any(self.per_qubit.values())


@dataclass(frozen=True)
class IdleBiasedPauli(Channel):
    """Z-biased single-qubit Pauli channel on idling qubits (``PAULI_CHANNEL_1``)."""

    p: float
    eta: float = 1.0
    per_qubit: dict = field(default_factory=dict)

    def ops(self, site: NoiseSite) -> tuple[NoiseOp, ...]:
        """One ``PAULI_CHANNEL_1`` op on idle sites; ``()`` elsewhere."""
        if site.kind != IDLE:
            return ()
        rate = _site_rate(self.p, self.per_qubit, site.qubits)
        return (
            NoiseOp(
                "PAULI_CHANNEL_1",
                site.qubits,
                probabilities=biased_pauli_rates(rate, self.eta),
            ),
        )

    def scaled(self, factor: float) -> "IdleBiasedPauli":
        """Copy with ``p`` and every override multiplied by ``factor`` (same bias)."""
        return IdleBiasedPauli(
            self.p * factor, self.eta, {q: p * factor for q, p in self.per_qubit.items()}
        )

    def is_noiseless(self) -> bool:
        """True when the base rate and every override are zero."""
        return self.p == 0 and not any(self.per_qubit.values())


@dataclass(frozen=True)
class Dephasing(Channel):
    """Pure-Z dephasing on idle ticks and (optionally) after gates.

    Attributes
    ----------
    p:
        Z-error probability per site.
    gates:
        When true (the default), gate sites also dephase both gate qubits;
        otherwise only idle sites fire.
    """

    p: float
    gates: bool = True

    def ops(self, site: NoiseSite) -> tuple[NoiseOp, ...]:
        """A ``Z_ERROR`` op on idle (and optionally gate) sites."""
        if site.kind == IDLE or (self.gates and site.kind == GATE):
            return (NoiseOp("Z_ERROR", site.qubits, probability=self.p),)
        return ()

    def scaled(self, factor: float) -> "Dephasing":
        """Copy with ``p`` multiplied by ``factor``."""
        return Dephasing(self.p * factor, self.gates)

    def is_noiseless(self) -> bool:
        """True when the dephasing rate is zero."""
        return self.p == 0


@dataclass(frozen=True)
class MeasurementFlip(Channel):
    """Readout flip: ``Z_ERROR`` on the ancilla just before its X-basis readout."""

    p: float
    per_qubit: dict = field(default_factory=dict)

    def ops(self, site: NoiseSite) -> tuple[NoiseOp, ...]:
        """One ``Z_ERROR`` op on measure sites; ``()`` elsewhere."""
        if site.kind != MEASURE:
            return ()
        rate = _site_rate(self.p, self.per_qubit, site.qubits)
        return (NoiseOp("Z_ERROR", site.qubits, probability=rate),)

    def scaled(self, factor: float) -> "MeasurementFlip":
        """Copy with ``p`` and every override multiplied by ``factor``."""
        return MeasurementFlip(
            self.p * factor, {q: p * factor for q, p in self.per_qubit.items()}
        )

    def is_noiseless(self) -> bool:
        """True when the flip rate and every override are zero."""
        return self.p == 0 and not any(self.per_qubit.values())


@dataclass(frozen=True)
class ResetFlip(Channel):
    """Preparation flip: ``Z_ERROR`` on every prepared ancilla after reset.

    Fires once per round on the reset site covering *all* prepared
    ancillas, producing a single multi-qubit instruction — the same stream
    shape the legacy model emitted.
    """

    p: float

    def ops(self, site: NoiseSite) -> tuple[NoiseOp, ...]:
        """One multi-qubit ``Z_ERROR`` op on reset sites; ``()`` elsewhere."""
        if site.kind != RESET:
            return ()
        return (NoiseOp("Z_ERROR", site.qubits, probability=self.p),)

    def scaled(self, factor: float) -> "ResetFlip":
        """Copy with ``p`` multiplied by ``factor``."""
        return ResetFlip(self.p * factor)

    def is_noiseless(self) -> bool:
        """True when the flip rate is zero."""
        return self.p == 0


@dataclass(frozen=True)
class DriftingChannel(Channel):
    """Time-varying wrapper: scales an inner channel's rates per round or tick.

    The scale factor at time coordinate ``t`` is ``max(0, 1 + slope * t)``
    where ``t`` is ``site.round_index`` (``unit="round"``, the default) or
    ``site.tick`` (``unit="tick"``).  ``slope = 0`` leaves every op
    untouched, so a zero-slope drift model is bit-identical to its static
    base (pinned by tests).

    Attributes
    ----------
    channel:
        The wrapped channel whose ops are rescaled.
    slope:
        Linear drift rate per time unit (may be negative; the factor
        clamps at zero).
    unit:
        ``"round"`` or ``"tick"``.
    """

    channel: Channel
    slope: float
    unit: str = "round"

    def __post_init__(self) -> None:
        if self.unit not in ("round", "tick"):
            raise ValueError(f"drift unit must be 'round' or 'tick', got {self.unit!r}")

    def ops(self, site: NoiseSite) -> tuple[NoiseOp, ...]:
        """The wrapped channel's ops, rescaled by the drift factor at ``site``."""
        ops = self.channel.ops(site)
        time = site.round_index if self.unit == "round" else site.tick
        factor = max(0.0, 1.0 + self.slope * time)
        if factor == 1.0 or not ops:
            return ops
        return tuple(op.scaled(factor) for op in ops)

    def scaled(self, factor: float) -> "DriftingChannel":
        """Copy whose wrapped channel's rates are multiplied by ``factor``."""
        return DriftingChannel(self.channel.scaled(factor), self.slope, self.unit)

    def is_noiseless(self) -> bool:
        """True when the wrapped channel is noiseless."""
        return self.channel.is_noiseless()


@dataclass(frozen=True)
class ComposedNoiseModel:
    """A noise model as a plain composition of :class:`Channel` objects.

    Implements the same ``channel_ops(site)`` protocol as the legacy
    :class:`~repro.noise.models.NoiseModel`, so the circuit builders accept
    either interchangeably.  Composition is concatenation: every channel is
    asked for its ops at every site, in registration order.

    Attributes
    ----------
    channels:
        The composed channels, asked in order at every site.
    name:
        Optional label for ``repr`` and diagnostics.
    """

    channels: tuple[Channel, ...] = ()
    name: str = "composed"

    def channel_ops(self, site: NoiseSite) -> tuple[NoiseOp, ...]:
        """All channels' ops at ``site``, concatenated in channel order."""
        ops: list[NoiseOp] = []
        for channel in self.channels:
            ops.extend(channel.ops(site))
        return tuple(ops)

    def is_noiseless(self) -> bool:
        """True when every composed channel is noiseless (or there are none)."""
        return all(channel.is_noiseless() for channel in self.channels)

    def scaled(self, factor: float) -> "ComposedNoiseModel":
        """Copy with every channel's rates multiplied by ``factor``."""
        return ComposedNoiseModel(
            tuple(channel.scaled(factor) for channel in self.channels), self.name
        )

    def with_channels(self, *channels: Channel) -> "ComposedNoiseModel":
        """Copy with ``channels`` appended to the composition."""
        return ComposedNoiseModel(self.channels + tuple(channels), self.name)


class NoiseModelBuilder:
    """Fluent builder composing channels into a :class:`ComposedNoiseModel`.

    Example
    -------
    >>> model = (
    ...     NoiseModelBuilder("biased-demo")
    ...     .gate_biased(1e-3, eta=10)
    ...     .idle_biased(5e-4, eta=10)
    ...     .measurement_flip(1e-3)
    ...     .drift(slope=0.5)          # wraps everything added so far
    ...     .build()
    ... )
    """

    def __init__(self, name: str = "composed") -> None:
        self._name = name
        self._channels: list[Channel] = []

    def add(self, *channels: Channel) -> "NoiseModelBuilder":
        """Append arbitrary :class:`Channel` objects to the composition."""
        self._channels.extend(channels)
        return self

    def gate_depolarizing(self, p: float, *, per_qubit: dict | None = None) -> "NoiseModelBuilder":
        """Add :class:`TwoQubitDepolarizing` at rate ``p``."""
        return self.add(TwoQubitDepolarizing(p, dict(per_qubit or {})))

    def idle_depolarizing(self, p: float, *, per_qubit: dict | None = None) -> "NoiseModelBuilder":
        """Add :class:`IdleDepolarizing` at rate ``p``."""
        return self.add(IdleDepolarizing(p, dict(per_qubit or {})))

    def gate_biased(
        self, p: float, *, eta: float = 1.0, per_qubit: dict | None = None
    ) -> "NoiseModelBuilder":
        """Add :class:`TwoQubitBiasedPauli` at rate ``p`` and bias ``eta``."""
        return self.add(TwoQubitBiasedPauli(p, eta, dict(per_qubit or {})))

    def idle_biased(
        self, p: float, *, eta: float = 1.0, per_qubit: dict | None = None
    ) -> "NoiseModelBuilder":
        """Add :class:`IdleBiasedPauli` at rate ``p`` and bias ``eta``."""
        return self.add(IdleBiasedPauli(p, eta, dict(per_qubit or {})))

    def dephasing(self, p: float, *, gates: bool = True) -> "NoiseModelBuilder":
        """Add pure-Z :class:`Dephasing` at rate ``p``."""
        return self.add(Dephasing(p, gates))

    def measurement_flip(self, p: float, *, per_qubit: dict | None = None) -> "NoiseModelBuilder":
        """Add :class:`MeasurementFlip` at rate ``p``."""
        return self.add(MeasurementFlip(p, dict(per_qubit or {})))

    def reset_flip(self, p: float) -> "NoiseModelBuilder":
        """Add :class:`ResetFlip` at rate ``p``."""
        return self.add(ResetFlip(p))

    def drift(self, slope: float, *, unit: str = "round") -> "NoiseModelBuilder":
        """Wrap every channel added *so far* in a :class:`DriftingChannel`."""
        self._channels = [
            DriftingChannel(channel, slope, unit) for channel in self._channels
        ]
        return self

    def build(self) -> ComposedNoiseModel:
        """The finished :class:`ComposedNoiseModel`."""
        return ComposedNoiseModel(tuple(self._channels), self._name)


# ----------------------------------------------------------------------
# Composed-model factories behind the registry spec strings
# ----------------------------------------------------------------------
def biased_noise(
    p: float = 1e-3,
    eta: float = 10.0,
    *,
    idle: float | None = None,
    measurement: float = 0.0,
    reset: float = 0.0,
) -> ComposedNoiseModel:
    """Uniform Z-biased model: gate + idle biased channels plus optional flips.

    Parameters
    ----------
    p:
        Total two-qubit gate error probability.
    eta:
        Bias (``eta = 1`` is depolarizing; larger favours Z).
    idle:
        Idle error probability per tick (defaults to ``p``, mirroring the
        uniform ``scaled`` model).
    measurement:
        Readout flip probability (default 0).
    reset:
        Preparation flip probability (default 0).

    Returns
    -------
    ComposedNoiseModel
        The composed biased model (spec string ``"biased:p=...,eta=..."``).
    """
    builder = NoiseModelBuilder("biased")
    builder.gate_biased(p, eta=eta)
    builder.idle_biased(p if idle is None else idle, eta=eta)
    if measurement:
        builder.measurement_flip(measurement)
    if reset:
        builder.reset_flip(reset)
    return builder.build()


def dephasing_noise(p: float = 1e-3, *, gates: bool = True) -> ComposedNoiseModel:
    """Pure-Z dephasing model (spec string ``"dephasing:p=..."``).

    Parameters
    ----------
    p:
        Z-error probability per idle tick (and per gate qubit when
        ``gates`` is true).
    gates:
        Also dephase both qubits after each two-qubit gate (default true).
    """
    return NoiseModelBuilder("dephasing").dephasing(p, gates=gates).build()


def drifting_noise(
    p0: float = 1e-3,
    slope: float = 0.0,
    *,
    eta: float | None = None,
    unit: str = "round",
) -> ComposedNoiseModel:
    """Uniform model whose rates drift linearly over time.

    The instantaneous rate at time coordinate ``t`` is
    ``p0 * max(0, 1 + slope * t)`` where ``t`` is the noisy-round index
    (``unit="round"``, the default) or the schedule tick (``unit="tick"``).
    With ``slope = 0`` the model is bit-identical to the static uniform
    model at rate ``p0`` (spec ``"scaled:p=p0"`` for ``eta=None``), which
    the regression tests pin.

    Parameters
    ----------
    p0:
        Base gate/idle error probability at ``t = 0``.
    slope:
        Linear drift per time unit (negative values decay; the factor
        clamps at zero).
    eta:
        Optional bias; ``None`` (the default) uses plain depolarizing
        channels, matching ``scaled`` exactly at ``slope = 0``.
    unit:
        Drift time coordinate: ``"round"`` or ``"tick"``.
    """
    builder = NoiseModelBuilder("drift")
    if eta is None:
        builder.gate_depolarizing(p0).idle_depolarizing(p0)
    else:
        builder.gate_biased(p0, eta=eta).idle_biased(p0, eta=eta)
    builder.drift(slope, unit=unit)
    return builder.build()
