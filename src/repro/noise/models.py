"""Circuit-level noise models (the uniform/legacy family).

The paper's main error model (Section 5.1.2) is adapted from IBM Brisbane:
every two-qubit gate is followed by a two-qubit depolarizing channel with
probability ``p_two = 0.0074`` and every idling qubit accumulates a
single-qubit depolarizing channel with probability ``p_idle = 0.0052`` per
tick.  Error rates may be uniform across qubits or per-qubit ("non-uniform
error model", Section 5.7); measurement/reset flip probabilities are
supported but default to zero to match the paper.

:class:`NoiseModel` is the historical four-rate dataclass.  Since the
channel refactor it is a thin facade over :mod:`repro.noise.channels`: its
rates decompose into a fixed channel tuple (:meth:`NoiseModel.channels`)
and the circuit builders consume it through the same
``channel_ops(site)`` protocol as any composed model, so the legacy
uniform models flow through the exact code path new channel compositions
do — with bit-identical instruction streams, pinned by regression tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.noise.channels import (
    Channel,
    IdleDepolarizing,
    MeasurementFlip,
    NoiseOp,
    NoiseSite,
    ResetFlip,
    TwoQubitDepolarizing,
)

__all__ = ["NoiseModel", "brisbane_noise", "scaled_noise", "non_uniform_noise"]

#: Two-qubit depolarizing probability measured on IBM Brisbane (paper Sec. 5.1.2).
BRISBANE_TWO_QUBIT_ERROR = 0.0074
#: Per-tick idling depolarizing probability (paper Sec. 5.1.2).
BRISBANE_IDLE_ERROR = 0.0052
#: Two-qubit gate duration in nanoseconds (paper Sec. 5.3.2).
BRISBANE_TWO_QUBIT_TIME_NS = 600.0
#: Ancilla readout duration in nanoseconds (paper Sec. 5.3.2).
BRISBANE_MEASUREMENT_TIME_NS = 4000.0


@dataclass
class NoiseModel:
    """Per-qubit circuit-level depolarizing noise.

    Attributes
    ----------
    two_qubit_error:
        Default depolarizing probability applied after each two-qubit gate.
    idle_error:
        Default depolarizing probability applied to each idling qubit per tick.
    measurement_error:
        Probability of flipping a measurement outcome (X error before an
        X-basis readout / Z-basis readout flip).
    reset_error:
        Probability of a Pauli flip immediately after a reset.
    per_qubit_two_qubit:
        Optional per-qubit overrides; a two-qubit gate uses the maximum of
        its two qubits' rates (the paper varies the *ancilla* rate, which
        this rule honours).
    per_qubit_idle:
        Optional per-qubit idle-rate overrides.
    """

    two_qubit_error: float = BRISBANE_TWO_QUBIT_ERROR
    idle_error: float = BRISBANE_IDLE_ERROR
    measurement_error: float = 0.0
    reset_error: float = 0.0
    per_qubit_two_qubit: dict[int, float] = field(default_factory=dict)
    per_qubit_idle: dict[int, float] = field(default_factory=dict)

    def two_qubit_rate(self, first: int, second: int) -> float:
        """Depolarizing probability for a two-qubit gate on ``(first, second)``."""
        rates = [
            self.per_qubit_two_qubit.get(first, self.two_qubit_error),
            self.per_qubit_two_qubit.get(second, self.two_qubit_error),
        ]
        return max(rates)

    def idle_rate(self, qubit: int) -> float:
        """Per-tick idling depolarizing probability for ``qubit``."""
        return self.per_qubit_idle.get(qubit, self.idle_error)

    def channels(self) -> tuple[Channel, ...]:
        """This model's decomposition into composable channels.

        Gate depolarizing, idle depolarizing, measurement flip and reset
        flip — asked in exactly the order the legacy emitters fired, so
        routing through the channel path reproduces the historical
        instruction stream bit for bit.

        The tuple is computed once and cached (``channel_ops`` runs once
        per noise site in the circuit-builder hot loop); models are
        treated as immutable after their first use.
        """
        cached = self.__dict__.get("_channels")
        if cached is None:
            cached = (
                TwoQubitDepolarizing(self.two_qubit_error, self.per_qubit_two_qubit),
                IdleDepolarizing(self.idle_error, self.per_qubit_idle),
                MeasurementFlip(self.measurement_error),
                ResetFlip(self.reset_error),
            )
            self.__dict__["_channels"] = cached
        return cached

    def channel_ops(self, site: NoiseSite) -> tuple[NoiseOp, ...]:
        """Noise ops to append at ``site`` (the shared builder protocol).

        Same contract as
        :meth:`repro.noise.channels.ComposedNoiseModel.channel_ops`: the
        concatenated ops of :meth:`channels` at ``site``.
        """
        ops: list[NoiseOp] = []
        for channel in self.channels():
            ops.extend(channel.ops(site))
        return tuple(ops)

    def is_noiseless(self) -> bool:
        """True when every rate (and every per-qubit override) is zero."""
        return (
            self.two_qubit_error == 0
            and self.idle_error == 0
            and self.measurement_error == 0
            and self.reset_error == 0
            and not self.per_qubit_two_qubit
            and not self.per_qubit_idle
        )

    def scaled(self, factor: float) -> "NoiseModel":
        """Return a copy with every probability multiplied by ``factor``."""
        return NoiseModel(
            two_qubit_error=self.two_qubit_error * factor,
            idle_error=self.idle_error * factor,
            measurement_error=self.measurement_error * factor,
            reset_error=self.reset_error * factor,
            per_qubit_two_qubit={
                q: p * factor for q, p in self.per_qubit_two_qubit.items()
            },
            per_qubit_idle={q: p * factor for q, p in self.per_qubit_idle.items()},
        )


def brisbane_noise() -> NoiseModel:
    """The uniform IBM-Brisbane-derived model used in most experiments."""
    return NoiseModel()


def scaled_noise(physical_error_rate: float) -> NoiseModel:
    """Uniform model with both CNOT and idle error set to ``physical_error_rate``.

    Used by the low-physical-error-rate scaling study (Figure 14), which
    sweeps the rate over ``1e-2 ... 1e-5``.
    """
    return NoiseModel(
        two_qubit_error=physical_error_rate, idle_error=physical_error_rate
    )


def non_uniform_noise(
    ancilla_qubits: list[int],
    *,
    base: NoiseModel | None = None,
    variance: float = 0.5,
    seed: int = 7,
) -> NoiseModel:
    """Per-ancilla noise variation used in the Figure 15 experiment.

    Each listed ancilla qubit receives a two-qubit error rate drawn
    uniformly from ``base_rate * [1 - variance, 1 + variance]``.
    """
    base = base or brisbane_noise()
    rng = np.random.default_rng(seed)
    factors = rng.uniform(1.0 - variance, 1.0 + variance, size=len(ancilla_qubits))
    per_qubit = {
        qubit: float(base.two_qubit_error * factor)
        for qubit, factor in zip(ancilla_qubits, factors)
    }
    return NoiseModel(
        two_qubit_error=base.two_qubit_error,
        idle_error=base.idle_error,
        measurement_error=base.measurement_error,
        reset_error=base.reset_error,
        per_qubit_two_qubit=per_qubit,
        per_qubit_idle=dict(base.per_qubit_idle),
    )
