"""Noise models for syndrome-measurement circuits.

Two layers live here: :mod:`repro.noise.channels` — the composable
channel algebra (sites, ops, channels, :class:`ComposedNoiseModel` and
its builder) — and :mod:`repro.noise.models` — the uniform/legacy
:class:`NoiseModel` family, now a facade over the same channels.  Every
model, legacy or composed, talks to the circuit builders through the one
``channel_ops(site)`` protocol.
"""

from repro.noise.channels import (
    Channel,
    ComposedNoiseModel,
    Dephasing,
    DriftingChannel,
    IdleBiasedPauli,
    IdleDepolarizing,
    MeasurementFlip,
    NoiseModelBuilder,
    NoiseOp,
    NoiseSite,
    ResetFlip,
    TwoQubitBiasedPauli,
    TwoQubitDepolarizing,
    biased_noise,
    biased_pauli_rates,
    dephasing_noise,
    drifting_noise,
    two_qubit_biased_rates,
)
from repro.noise.models import (
    BRISBANE_IDLE_ERROR,
    BRISBANE_MEASUREMENT_TIME_NS,
    BRISBANE_TWO_QUBIT_ERROR,
    BRISBANE_TWO_QUBIT_TIME_NS,
    NoiseModel,
    brisbane_noise,
    non_uniform_noise,
    scaled_noise,
)

__all__ = [
    # Legacy uniform family
    "NoiseModel",
    "brisbane_noise",
    "scaled_noise",
    "non_uniform_noise",
    "BRISBANE_TWO_QUBIT_ERROR",
    "BRISBANE_IDLE_ERROR",
    "BRISBANE_TWO_QUBIT_TIME_NS",
    "BRISBANE_MEASUREMENT_TIME_NS",
    # Channel algebra
    "Channel",
    "ComposedNoiseModel",
    "NoiseModelBuilder",
    "NoiseOp",
    "NoiseSite",
    "TwoQubitDepolarizing",
    "IdleDepolarizing",
    "TwoQubitBiasedPauli",
    "IdleBiasedPauli",
    "Dephasing",
    "MeasurementFlip",
    "ResetFlip",
    "DriftingChannel",
    "biased_noise",
    "dephasing_noise",
    "drifting_noise",
    "biased_pauli_rates",
    "two_qubit_biased_rates",
]
