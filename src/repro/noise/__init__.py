"""Noise models for syndrome-measurement circuits."""

from repro.noise.models import (
    BRISBANE_IDLE_ERROR,
    BRISBANE_MEASUREMENT_TIME_NS,
    BRISBANE_TWO_QUBIT_ERROR,
    BRISBANE_TWO_QUBIT_TIME_NS,
    NoiseModel,
    brisbane_noise,
    non_uniform_noise,
    scaled_noise,
)

__all__ = [
    "NoiseModel",
    "brisbane_noise",
    "scaled_noise",
    "non_uniform_noise",
    "BRISBANE_TWO_QUBIT_ERROR",
    "BRISBANE_IDLE_ERROR",
    "BRISBANE_TWO_QUBIT_TIME_NS",
    "BRISBANE_MEASUREMENT_TIME_NS",
]
