"""AlphaSyndrome reproduction: syndrome-measurement circuit scheduling for QEC codes.

The package layers:

``repro.pauli``      Pauli algebra and GF(2) linear algebra.
``repro.codes``      Stabilizer / CSS code library (surface, colour, BB, HGP, ...).
``repro.circuits``   Tick-based Clifford circuit IR and experiment builders.
``repro.noise``      Circuit-level noise models (IBM-Brisbane-derived).
``repro.sim``        Fault propagation, detector error models, sampling, tableau sim.
``repro.decoders``   MWPM, union-find, BP-OSD, lookup decoders.
``repro.scheduling`` Schedule representation, partitioning, baselines, hand-crafted orders.
``repro.core``       The AlphaSyndrome MCTS synthesiser and evaluation function.
``repro.analysis``   Space-time volume model and statistics helpers.
``repro.experiments``Drivers regenerating every table and figure of the paper.

Quickstart::

    from repro.codes import get_code
    from repro.noise import brisbane_noise
    from repro.decoders import decoder_factory
    from repro.core import synthesize_schedule

    code = get_code("rotated_surface_d3")
    result = synthesize_schedule(code, brisbane_noise(), decoder_factory("mwpm"))
    print(result.rates, result.schedule.depth)
"""

from repro.codes import get_code
from repro.core import AlphaSyndrome, MCTSConfig, SynthesisResult, synthesize_schedule
from repro.decoders import decoder_factory
from repro.noise import NoiseModel, brisbane_noise, non_uniform_noise, scaled_noise
from repro.scheduling import (
    Schedule,
    google_surface_schedule,
    lowest_depth_schedule,
    trivial_schedule,
)
from repro.sim import estimate_logical_error_rates

__version__ = "1.0.0"

__all__ = [
    "get_code",
    "AlphaSyndrome",
    "MCTSConfig",
    "SynthesisResult",
    "synthesize_schedule",
    "decoder_factory",
    "NoiseModel",
    "brisbane_noise",
    "scaled_noise",
    "non_uniform_noise",
    "Schedule",
    "trivial_schedule",
    "lowest_depth_schedule",
    "google_surface_schedule",
    "estimate_logical_error_rates",
    "__version__",
]
