"""AlphaSyndrome reproduction: syndrome-measurement circuit scheduling for QEC codes.

The package layers:

``repro.api``        The front door: registries, RunSpec/Pipeline, the CLI.
``repro.pauli``      Pauli algebra and GF(2) linear algebra.
``repro.codes``      Stabilizer / CSS code library (surface, colour, BB, HGP, ...).
``repro.circuits``   Tick-based Clifford circuit IR and experiment builders.
``repro.noise``      Circuit-level noise models (IBM-Brisbane-derived).
``repro.sim``        Fault propagation, detector error models, sampling, tableau sim.
``repro.decoders``   MWPM, union-find, BP-OSD, lookup decoders.
``repro.scheduling`` Schedule representation, partitioning, baselines, hand-crafted orders.
``repro.core``       The AlphaSyndrome MCTS synthesiser and evaluation function.
``repro.analysis``   Space-time volume model and statistics helpers.
``repro.seeding``    SeedSequence-based derivation of per-stage random streams.
``repro.experiments``Drivers regenerating every table and figure of the paper.

Quickstart::

    from repro.api import Pipeline, RunSpec

    spec = RunSpec(code="surface:d=3", decoder="mwpm", scheduler="alphasyndrome")
    result = Pipeline(spec).result
    print(result.rates, result.depth)

The same run from the shell::

    repro run --code surface:d=3 --decoder mwpm --scheduler alphasyndrome

``get_code`` and ``decoder_factory`` below are deprecated shims over the
``repro.api`` registries, kept so pre-1.1 imports keep working.
"""

from repro.api import Budget, Pipeline, RunResult, RunSpec
from repro.codes import get_code
from repro.core import AlphaSyndrome, MCTSConfig, SynthesisResult, synthesize_schedule
from repro.decoders import decoder_factory
from repro.noise import NoiseModel, brisbane_noise, non_uniform_noise, scaled_noise
from repro.scheduling import (
    Schedule,
    google_surface_schedule,
    lowest_depth_schedule,
    trivial_schedule,
)
from repro.sim import estimate_logical_error_rates

__version__ = "1.1.0"

__all__ = [
    "Budget",
    "Pipeline",
    "RunResult",
    "RunSpec",
    "get_code",
    "AlphaSyndrome",
    "MCTSConfig",
    "SynthesisResult",
    "synthesize_schedule",
    "decoder_factory",
    "NoiseModel",
    "brisbane_noise",
    "scaled_noise",
    "non_uniform_noise",
    "Schedule",
    "trivial_schedule",
    "lowest_depth_schedule",
    "google_surface_schedule",
    "estimate_logical_error_rates",
    "__version__",
]
