"""Imported-circuit pseudo-code: runs external stim circuits through the stack.

The pipeline is organised around *generated* circuits (code -> noise ->
schedule -> per-basis memory experiment).  An imported stim file arrives
with all of that already baked in, so the ``stimfile:PATH`` registry entry
returns an :class:`ImportedCircuit` instead of a
:class:`~repro.codes.base.StabilizerCode`, and the pipeline short-circuits
the generation stages when it sees one:

* ``noise`` is ``None`` (the file's noise channels are the noise model),
* ``schedule`` is an :class:`ImportedSchedule` carrying only what the rest
  of the stack reads (``depth`` = the circuit's TICK count, empty
  ``ticks()``),
* ``circuit`` serves the same imported circuit for both basis slots — two
  statistically independent replicas under the pipeline's two per-basis
  seed streams, so every downstream invariant (chunk layout and cache
  addresses, worker-count invariance, serve memoisation, adaptive
  stopping) applies to imported circuits completely unchanged.

The both-bases convention means ``error_x`` and ``error_z`` of an imported
run are two independent estimates of the same circuit's logical error rate
(stim files carry no basis axis).  Usefully exact corollary: exporting a
pipeline's basis-Z circuit and re-importing it reproduces the original
run's ``error_x`` bit for bit — both consume the first per-basis seed
stream on an identical DEM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import Circuit

__all__ = ["ImportedCircuit", "ImportedSchedule"]


@dataclass(frozen=True)
class ImportedSchedule:
    """Stand-in schedule for imported circuits.

    Carries the two things the post-circuit stack reads from a schedule:
    ``depth`` (reported in results; the imported circuit's TICK count) and
    ``ticks()`` (empty — there is no per-stabilizer CNOT order to print).
    """

    depth: int

    def ticks(self) -> dict:
        """No synthesised CNOT order exists for an imported circuit."""
        return {}


@dataclass(frozen=True)
class ImportedCircuit:
    """A circuit loaded from an external file, posing as a registry "code".

    ``Pipeline`` detects this type and skips code/noise/schedule/experiment
    generation, running ``circuit`` directly.  ``source`` names the file it
    came from (used in reprs and error messages).
    """

    circuit: Circuit
    source: str
    name: str = field(default="", compare=False)

    def __post_init__(self):
        if not self.name:
            object.__setattr__(self, "name", f"stimfile:{self.source}")

    @property
    def schedule(self) -> ImportedSchedule:
        """The stand-in schedule (depth = the circuit's TICK count)."""
        return ImportedSchedule(depth=self.circuit.num_ticks)
