"""Loader for the paper artifact's QECC JSON format.

The AlphaSyndrome artifact ships code definitions as JSON files of the form::

    {
      "family": "hexagonal_color",
      "n": 19, "k": 1, "d": 5,
      "x_stabilizers": ["XXXX...", ...],
      "z_stabilizers": ["ZZZZ...", ...],
      "logical_xs": ["XXXXX..."],
      "logical_zs": ["ZZZZZ..."]
    }

where every operator is a length-``n`` Pauli string over ``IXYZ_``.  This
module reads and writes that format so externally supplied codes (including
the hyperbolic instances the paper used, if available) can be dropped into
the same pipeline.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.codes.base import CodeValidationError, StabilizerCode
from repro.pauli import PauliString

__all__ = ["load_code_json", "dump_code_json", "code_to_dict", "code_from_dict"]


def code_from_dict(payload: dict) -> StabilizerCode:
    """Build a :class:`StabilizerCode` from a decoded artifact dictionary."""
    n = int(payload["n"])
    if payload.get("stabilizers"):
        stabilizer_strings = list(payload["stabilizers"])
    else:
        stabilizer_strings = list(payload.get("x_stabilizers", [])) + list(
            payload.get("z_stabilizers", [])
        )
    if not stabilizer_strings:
        raise CodeValidationError("JSON code definition contains no stabilizers")
    stabilizers = [PauliString.from_string(text) for text in stabilizer_strings]
    for stabilizer in stabilizers:
        if stabilizer.num_qubits != n:
            raise CodeValidationError(
                f"stabilizer length {stabilizer.num_qubits} does not match n={n}"
            )
    code = StabilizerCode(
        stabilizers,
        name=str(payload.get("family", "json_code")),
        distance=int(payload["d"]) if "d" in payload else None,
        metadata={"family": payload.get("family", "json_code"), "source": "json"},
    )
    expected_k = payload.get("k")
    if expected_k is not None and int(expected_k) != code.num_logical_qubits:
        raise CodeValidationError(
            f"JSON declares k={expected_k} but stabilizers give k={code.num_logical_qubits}"
        )
    logical_xs = [PauliString.from_string(text) for text in payload.get("logical_xs", [])]
    logical_zs = [PauliString.from_string(text) for text in payload.get("logical_zs", [])]
    if logical_xs and logical_zs:
        code.set_logicals(logical_xs, logical_zs)
    return code


def code_to_dict(code: StabilizerCode) -> dict:
    """Serialise a code into the artifact dictionary format."""
    x_stabilizers = []
    z_stabilizers = []
    mixed = []
    for stabilizer in code.stabilizers:
        letters = {stabilizer.pauli_at(q) for q in stabilizer.support}
        text = str(stabilizer)[1:]
        if letters == {"X"}:
            x_stabilizers.append(text)
        elif letters == {"Z"}:
            z_stabilizers.append(text)
        else:
            mixed.append(text)
    payload = {
        "family": code.metadata.get("family", code.name),
        "n": code.num_qubits,
        "k": code.num_logical_qubits,
        "d": code.declared_distance,
        "x_stabilizers": x_stabilizers,
        "z_stabilizers": z_stabilizers,
        "logical_xs": [str(p)[1:] for p in code.logical_xs],
        "logical_zs": [str(p)[1:] for p in code.logical_zs],
    }
    if mixed:
        # Non-CSS codes: keep every generator (in order) under "stabilizers"
        # so nothing is lost on a round trip.
        payload["stabilizers"] = [str(s)[1:] for s in code.stabilizers]
        payload["x_stabilizers"] = []
        payload["z_stabilizers"] = []
    return payload


def load_code_json(path: str | Path) -> StabilizerCode:
    """Load a code from a JSON file in the artifact format."""
    with open(path) as handle:
        return code_from_dict(json.load(handle))


def dump_code_json(code: StabilizerCode, path: str | Path) -> None:
    """Write ``code`` to ``path`` in the artifact format."""
    with open(path, "w") as handle:
        json.dump(code_to_dict(code), handle, indent=2)
