"""Serialisation helpers: QECC JSON codes and stim text-format interop.

Two format families live here:

* :mod:`repro.io.qecc_json` — the artifact-compatible JSON encoding of
  stabilizer codes.
* :mod:`repro.io.stim_text` / :mod:`repro.io.stim_dem` — bidirectional
  converters between the internal circuit IR / detector error model and
  stim's circuit / DEM text formats, with :class:`ImportedCircuit`
  (:mod:`repro.io.imported`) carrying imported circuits through the
  pipeline via the ``stimfile:PATH`` code spec.
"""

from repro.io.imported import ImportedCircuit, ImportedSchedule
from repro.io.qecc_json import code_from_dict, code_to_dict, dump_code_json, load_code_json
from repro.io.stim_dem import emit_stim_dem, load_stim_dem, parse_stim_dem, write_stim_dem
from repro.io.stim_text import (
    StimFormatError,
    emit_stim_circuit,
    load_stim_circuit,
    parse_stim_circuit,
    write_stim_circuit,
)

__all__ = [
    "load_code_json",
    "dump_code_json",
    "code_to_dict",
    "code_from_dict",
    "StimFormatError",
    "parse_stim_circuit",
    "emit_stim_circuit",
    "load_stim_circuit",
    "write_stim_circuit",
    "parse_stim_dem",
    "emit_stim_dem",
    "load_stim_dem",
    "write_stim_dem",
    "ImportedCircuit",
    "ImportedSchedule",
]
