"""Serialisation helpers (artifact-compatible QECC JSON format)."""

from repro.io.qecc_json import code_from_dict, code_to_dict, dump_code_json, load_code_json

__all__ = ["load_code_json", "dump_code_json", "code_to_dict", "code_from_dict"]
