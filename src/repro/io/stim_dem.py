"""Stim detector-error-model text format: parser and emitter.

The internal :class:`~repro.sim.dem.DetectorErrorModel` maps onto stim's DEM
text almost one-to-one: each :class:`~repro.sim.dem.ErrorMechanism` is one
``error(p) D... L...`` line (detectors then observables, each sorted
ascending), and ``detector`` / ``logical_observable`` declaration lines pin
``num_detectors`` / ``num_observables`` when they exceed the highest index
any error references.

Round-trip guarantees (pinned by the property tests):

* ``parse_stim_dem(emit_stim_dem(dem)) == dem`` for every internal DEM —
  mechanism order is preserved exactly (the parser never re-sorts or merges
  error lines), probabilities are emitted with ``repr`` (shortest exact
  form), and the pin lines restore detector/observable counts.
* On the parse side, the full text grammar is accepted: ``repeat N {...}``
  blocks (expanded), ``shift_detectors`` offsets (applied to subsequent
  ``D`` targets, as stim defines), ``^`` decomposition separators (the
  suggested split is dropped; targets XOR-accumulate into one mechanism),
  comments, and coordinate arguments on ``detector``/``shift_detectors``
  (accepted and dropped — the internal DEM carries no geometry).

Degenerate inputs stay faithful: a target repeated an even number of times
on one error line cancels (XOR), and an error line whose targets all cancel
still contributes a mechanism with empty symptom sets, so what you parse is
what the file says, not a cleaned-up version.
"""

from __future__ import annotations

from pathlib import Path

from repro.sim.dem import DetectorErrorModel, ErrorMechanism

from repro.io.stim_text import StimFormatError

__all__ = ["parse_stim_dem", "emit_stim_dem", "load_stim_dem", "write_stim_dem"]


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------
def emit_stim_dem(dem: DetectorErrorModel) -> str:
    """Render ``dem`` as stim DEM text, preserving stored mechanism order."""
    lines: list[str] = []
    max_detector = -1
    max_observable = -1
    for mechanism in dem.mechanisms:
        targets = [f"D{d}" for d in sorted(mechanism.detectors)]
        targets += [f"L{o}" for o in sorted(mechanism.observables)]
        if mechanism.detectors:
            max_detector = max(max_detector, max(mechanism.detectors))
        if mechanism.observables:
            max_observable = max(max_observable, max(mechanism.observables))
        lines.append((f"error({repr(float(mechanism.probability))}) " + " ".join(targets)).rstrip())
    if dem.num_detectors > max_detector + 1:
        lines.append(f"detector D{dem.num_detectors - 1}")
    if dem.num_observables > max_observable + 1:
        lines.append(f"logical_observable L{dem.num_observables - 1}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def parse_stim_dem(text: str, *, source: str | None = None) -> DetectorErrorModel:
    """Parse stim DEM text into an internal :class:`DetectorErrorModel`.

    Error lines become mechanisms in file order.  ``num_detectors`` /
    ``num_observables`` are one past the highest index referenced anywhere
    (error targets or declaration lines), matching stim's convention.
    ``source`` names the input in diagnostics (usually the file path).
    """
    state = _ParseState(source=source)
    _parse_block(text.splitlines(), 0, state, depth=0)
    return DetectorErrorModel(
        num_detectors=state.max_detector + 1,
        num_observables=state.max_observable + 1,
        mechanisms=state.mechanisms,
    )


class _ParseState:
    """Mutable parse accumulator: mechanisms, index maxima, detector offset."""

    def __init__(self, source: str | None):
        self.source = source
        self.mechanisms: list[ErrorMechanism] = []
        self.max_detector = -1
        self.max_observable = -1
        self.detector_offset = 0


def _parse_block(lines: list[str], start: int, state: _ParseState, *, depth: int) -> int:
    """Parse lines from ``start`` until EOF or a closing ``}``.

    Returns the index of the ``}`` line (nested block) or ``len(lines)``.
    ``repeat`` recursion re-parses the body per iteration so interleaved
    ``shift_detectors`` offsets accumulate per-iteration, as stim defines.
    """
    index = start
    while index < len(lines):
        stripped = lines[index].split("#", 1)[0].strip()
        line_number = index + 1
        if not stripped:
            index += 1
            continue
        if stripped == "}":
            if depth:
                return index
            raise StimFormatError("unmatched '}'", line=line_number, source=state.source)
        name, arguments, targets = _split_dem_line(stripped, line_number, state.source)
        if name == "repeat":
            if arguments is not None:
                raise StimFormatError(
                    "repeat takes no parenthesised arguments",
                    line=line_number,
                    source=state.source,
                )
            if len(targets) != 2 or targets[-1] != "{":
                raise StimFormatError(
                    "repeat must read: repeat N {", line=line_number, source=state.source
                )
            count = _parse_int(targets[0], "repeat count", line_number, state.source)
            if count < 1:
                raise StimFormatError(
                    f"repeat count must be >= 1, got {count}",
                    line=line_number,
                    source=state.source,
                )
            block_end = None
            for _ in range(count):
                block_end = _parse_block(lines, index + 1, state, depth=depth + 1)
                if block_end >= len(lines):
                    raise StimFormatError(
                        "repeat block never closed with '}'",
                        line=line_number,
                        source=state.source,
                    )
            index = block_end + 1
            continue
        _parse_dem_instruction(name, arguments, targets, state, line_number)
        index += 1
    return index


def _parse_dem_instruction(
    name: str,
    arguments: list[float] | None,
    targets: list[str],
    state: _ParseState,
    line: int,
) -> None:
    source = state.source
    if name == "error":
        if arguments is None or len(arguments) != 1:
            raise StimFormatError(
                "error needs exactly one parenthesised probability", line=line, source=source
            )
        probability = arguments[0]
        if not 0.0 <= probability <= 1.0:
            raise StimFormatError(
                f"error probability must be in [0, 1], got {probability}",
                line=line,
                source=source,
            )
        detectors: set[int] = set()
        observables: set[int] = set()
        for token in targets:
            if token == "^":
                # Suggested decomposition separator: the split is advisory,
                # the mechanism is the XOR of all its parts.
                continue
            kind, value = _parse_target(token, line, source)
            if kind == "D":
                value += state.detector_offset
                detectors.symmetric_difference_update({value})
                state.max_detector = max(state.max_detector, value)
            else:
                observables.symmetric_difference_update({value})
                state.max_observable = max(state.max_observable, value)
        state.mechanisms.append(
            ErrorMechanism(probability, frozenset(detectors), frozenset(observables))
        )
        return
    if name == "detector":
        # Coordinate arguments are accepted and dropped.
        for token in targets:
            kind, value = _parse_target(token, line, source)
            if kind != "D":
                raise StimFormatError(
                    f"detector declarations take D targets, got {token!r}",
                    line=line,
                    source=source,
                )
            state.max_detector = max(state.max_detector, value + state.detector_offset)
        return
    if name == "logical_observable":
        if arguments is not None:
            raise StimFormatError(
                "logical_observable takes no parenthesised arguments",
                line=line,
                source=source,
            )
        for token in targets:
            kind, value = _parse_target(token, line, source)
            if kind != "L":
                raise StimFormatError(
                    f"logical_observable declarations take L targets, got {token!r}",
                    line=line,
                    source=source,
                )
            state.max_observable = max(state.max_observable, value)
        return
    if name == "shift_detectors":
        # Coordinate arguments (parenthesised) are accepted and dropped;
        # the single plain target is the detector-index shift.
        if len(targets) != 1:
            raise StimFormatError(
                "shift_detectors needs exactly one plain-integer target",
                line=line,
                source=source,
            )
        shift = _parse_int(targets[0], "shift_detectors target", line, source)
        if shift < 0:
            raise StimFormatError(
                f"shift_detectors must be >= 0, got {shift}", line=line, source=source
            )
        state.detector_offset += shift
        return
    raise StimFormatError(f"unknown DEM instruction {name!r}", line=line, source=source)


def _split_dem_line(
    text: str, line: int, source: str | None
) -> tuple[str, list[float] | None, list[str]]:
    """Split one DEM line into ``(name, paren args or None, target tokens)``."""
    name_end = 0
    while name_end < len(text) and (text[name_end].isalnum() or text[name_end] == "_"):
        name_end += 1
    name = text[:name_end].lower()
    if not name:
        raise StimFormatError(f"cannot parse DEM line {text!r}", line=line, source=source)
    rest = text[name_end:].lstrip()
    arguments: list[float] | None = None
    if rest.startswith("("):
        close = rest.find(")")
        if close < 0:
            raise StimFormatError("unterminated '(' argument list", line=line, source=source)
        arguments = []
        inner = rest[1:close].strip()
        if inner:
            for token in inner.split(","):
                try:
                    arguments.append(float(token.strip()))
                except ValueError:
                    raise StimFormatError(
                        f"invalid numeric argument {token.strip()!r}",
                        line=line,
                        source=source,
                    ) from None
        rest = rest[close + 1 :]
    return name, arguments, rest.split()


def _parse_target(token: str, line: int, source: str | None) -> tuple[str, int]:
    """Decode a ``D<k>`` or ``L<k>`` target token."""
    kind = token[:1].upper()
    if kind not in ("D", "L"):
        raise StimFormatError(
            f"expected D<k> or L<k> target, got {token!r}", line=line, source=source
        )
    value = _parse_int(token[1:], f"{kind} target index", line, source)
    if value < 0:
        raise StimFormatError(
            f"target indices must be >= 0, got {token!r}", line=line, source=source
        )
    return kind, value


def _parse_int(token: str, what: str, line: int, source: str | None) -> int:
    try:
        return int(token)
    except ValueError:
        raise StimFormatError(
            f"invalid {what} {token!r}", line=line, source=source
        ) from None


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
def load_stim_dem(path: "str | Path") -> DetectorErrorModel:
    """Parse the stim DEM file at ``path`` (diagnostics name the file)."""
    path = Path(path)
    return parse_stim_dem(path.read_text(), source=str(path))


def write_stim_dem(dem: DetectorErrorModel, path: "str | Path") -> Path:
    """Write ``dem`` as stim DEM text to ``path``; returns the written path."""
    path = Path(path)
    path.write_text(emit_stim_dem(dem))
    return path
