"""Stim circuit text format: parser and emitter for the internal circuit IR.

The supported instruction set is exactly the internal one
(:mod:`repro.circuits.circuit`): resets and measurements in the Z/X bases,
the ``H``/``S``/Pauli/controlled-Pauli/``SWAP`` Cliffords, every stochastic
Pauli noise channel (including the general ``PAULI_CHANNEL_1/2``), ``TICK``,
``DETECTOR`` and ``OBSERVABLE_INCLUDE``, plus ``REPEAT`` blocks (expanded on
parse — the internal IR stores flat instruction lists).  ``QUBIT_COORDS`` /
``SHIFT_COORDS`` annotations are accepted and dropped: the internal IR
carries no geometry.

Everything else in stim's instruction set (``MR``, ``MPP``, ``MY``/``RY``,
``CORRELATED_ERROR``, heralded channels, non-Clifford gates, sweep/inverted
targets, ...) raises :class:`StimFormatError` naming the offending line, so
a failed import is a one-line diagnostic rather than a stack trace.

Round-trip guarantees (pinned by the property tests):

* ``parse_stim_circuit(emit_stim_circuit(c)) == c`` bit-for-bit for every
  internal circuit — float probabilities are emitted with ``repr`` (shortest
  exact form), record targets convert absolute -> relative -> absolute
  losslessly, and instruction boundaries are one line each.
* ``emit_stim_circuit(parse_stim_circuit(text))`` is the *normal form* of
  ``text``: aliases canonicalise (``CNOT`` -> ``CX``), ``REPEAT`` blocks
  flatten, multi-pair controlled gates split; parsing the normal form is a
  fixed point.

Measurement-record targets: stim detectors reference measurements
relatively (``rec[-k]`` = k-th most recent); the internal IR stores
absolute 0-based indices.  The parser converts as it walks (tracking the
running measurement count, including through ``REPEAT`` expansions); the
emitter converts back and rejects circuits whose annotations reference
measurements that appear later in the instruction stream (inexpressible in
stim's relative form).
"""

from __future__ import annotations

from pathlib import Path

from repro.circuits.circuit import GATE_NAMES, NOISE_NAMES, Circuit, Instruction

__all__ = [
    "StimFormatError",
    "parse_stim_circuit",
    "emit_stim_circuit",
    "load_stim_circuit",
    "write_stim_circuit",
]


class StimFormatError(ValueError):
    """A stim-format text could not be parsed / a circuit could not be emitted.

    A ``ValueError`` subclass so the CLI's one-line user-error handling
    applies.  ``line`` is the 1-based source line (``None`` for emit-side
    errors); ``source`` is an optional file name prefixed to the message.
    """

    def __init__(self, message: str, *, line: int | None = None, source: str | None = None):
        self.line = line
        self.source = source
        prefix = ""
        if source is not None:
            prefix += f"{source}: "
        if line is not None:
            prefix += f"line {line}: "
        super().__init__(prefix + message)


# ----------------------------------------------------------------------
# Instruction tables
# ----------------------------------------------------------------------
#: Internal gate mnemonics that emit under their own name.
_VERBATIM_GATES = ("R", "RX", "M", "MX", "H", "S", "X", "Y", "Z", "SWAP")

#: ``CPAULI`` check Pauli -> stim two-qubit gate name.
_CPAULI_TO_STIM = {"X": "CX", "Y": "CY", "Z": "CZ"}

#: stim gate name (or alias) -> (internal name, CPAULI check Pauli or None).
_STIM_TO_INTERNAL: dict[str, tuple[str, str | None]] = {
    name: (name, None) for name in _VERBATIM_GATES
}
_STIM_TO_INTERNAL.update(
    {
        "RZ": ("R", None),
        "MZ": ("M", None),
        "CX": ("CPAULI", "X"),
        "CNOT": ("CPAULI", "X"),
        "ZCX": ("CPAULI", "X"),
        "CY": ("CPAULI", "Y"),
        "ZCY": ("CPAULI", "Y"),
        "CZ": ("CPAULI", "Z"),
        "ZCZ": ("CPAULI", "Z"),
    }
)

#: Noise channels shared verbatim with stim, with their paren-argument count
#: (None = exactly one probability).
_CHANNEL_ARITY = {
    "X_ERROR": 1,
    "Y_ERROR": 1,
    "Z_ERROR": 1,
    "DEPOLARIZE1": 1,
    "DEPOLARIZE2": 1,
    "PAULI_CHANNEL_1": 3,
    "PAULI_CHANNEL_2": 15,
}

#: Annotations accepted and dropped (the internal IR has no geometry).
_IGNORED = ("QUBIT_COORDS", "SHIFT_COORDS")

#: Real stim instructions we recognise but deliberately do not support, with
#: the reason the diagnostic should give.
_UNSUPPORTED: dict[str, str] = {}
for _name in ("MR", "MRZ", "MRX", "MRY"):
    _UNSUPPORTED[_name] = "combined measure+reset is not supported; split into M then R"
for _name in ("MY", "RY"):
    _UNSUPPORTED[_name] = "Y-basis measurement/reset is not supported"
_UNSUPPORTED["MPP"] = "Pauli-product measurement is not supported"
for _name in ("CORRELATED_ERROR", "E", "ELSE_CORRELATED_ERROR"):
    _UNSUPPORTED[_name] = "correlated error records are not supported"
for _name in ("HERALDED_ERASE", "HERALDED_PAULI_CHANNEL_1"):
    _UNSUPPORTED[_name] = "heralded channels are not supported"
for _name in (
    "C_XYZ",
    "C_ZYX",
    "SQRT_X",
    "SQRT_X_DAG",
    "SQRT_Y",
    "SQRT_Y_DAG",
    "S_DAG",
    "SQRT_XX",
    "SQRT_YY",
    "SQRT_ZZ",
    "ISWAP",
    "ISWAP_DAG",
    "XCX",
    "XCY",
    "XCZ",
    "YCX",
    "YCY",
    "YCZ",
    "CXSWAP",
    "SWAPCX",
):
    _UNSUPPORTED[_name] = "gate outside the supported Clifford set (H, S, X/Y/Z, CX/CY/CZ, SWAP)"
_UNSUPPORTED["H_XY"] = _UNSUPPORTED["H_YZ"] = _UNSUPPORTED["C_XYZ"]
_UNSUPPORTED["DEPOLARIZE"] = "unknown arity; use DEPOLARIZE1 or DEPOLARIZE2"


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------
def _format_float(value: float) -> str:
    """Shortest exact decimal form of ``value`` (``float(repr(x)) == x``)."""
    return repr(float(value))


def emit_stim_circuit(circuit: Circuit) -> str:
    """Render ``circuit`` as stim circuit text (one instruction per line).

    Raises :class:`StimFormatError` if a ``DETECTOR`` / ``OBSERVABLE``
    references a measurement that has not happened yet at its position in
    the instruction stream (stim's relative ``rec[-k]`` targets cannot
    express forward references).
    """
    lines: list[str] = []
    measurements = 0
    for position, instruction in enumerate(circuit.instructions):
        name = instruction.name
        if name == "CPAULI":
            lines.append(
                f"{_CPAULI_TO_STIM[instruction.pauli]} "
                + " ".join(str(q) for q in instruction.qubits)
            )
        elif name in _VERBATIM_GATES:
            qubits = " ".join(str(q) for q in instruction.qubits)
            lines.append(f"{name} {qubits}".rstrip())
        elif name in ("PAULI_CHANNEL_1", "PAULI_CHANNEL_2"):
            args = ", ".join(_format_float(p) for p in instruction.probabilities)
            qubits = " ".join(str(q) for q in instruction.qubits)
            lines.append(f"{name}({args}) {qubits}".rstrip())
        elif name in NOISE_NAMES:
            qubits = " ".join(str(q) for q in instruction.qubits)
            lines.append(f"{name}({_format_float(instruction.probability)}) {qubits}".rstrip())
        elif name == "TICK":
            lines.append("TICK")
        elif name in ("DETECTOR", "OBSERVABLE"):
            records = []
            for target in instruction.targets:
                if target >= measurements:
                    raise StimFormatError(
                        f"{name} at instruction {position} references measurement "
                        f"{target}, but only {measurements} measurement(s) precede it "
                        "— stim rec[-k] targets cannot reference future measurements"
                    )
                records.append(f"rec[{target - measurements}]")
            if name == "DETECTOR":
                lines.append(("DETECTOR " + " ".join(records)).rstrip())
            else:
                lines.append(
                    (f"OBSERVABLE_INCLUDE({instruction.index}) " + " ".join(records)).rstrip()
                )
        else:  # pragma: no cover - every IR name is handled above
            raise StimFormatError(f"cannot emit instruction {name!r}")
        if name in ("M", "MX"):
            measurements += len(instruction.qubits)
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def _parse_parens(argument_text: str, line: int, source: str | None) -> list[float]:
    """Parse the comma-separated parenthesised argument list of one line."""
    values: list[float] = []
    for token in argument_text.split(","):
        token = token.strip()
        if not token:
            raise StimFormatError("empty parenthesised argument", line=line, source=source)
        try:
            values.append(float(token))
        except ValueError:
            raise StimFormatError(
                f"invalid numeric argument {token!r}", line=line, source=source
            ) from None
    return values


def _split_line(
    raw: str, line: int, source: str | None
) -> tuple[str, list[float] | None, list[str]]:
    """Split one instruction line into ``(NAME, paren args or None, target tokens)``."""
    text = raw.strip()
    name_end = 0
    while name_end < len(text) and (text[name_end].isalnum() or text[name_end] == "_"):
        name_end += 1
    name = text[:name_end].upper()
    if not name:
        raise StimFormatError(f"cannot parse instruction {text!r}", line=line, source=source)
    rest = text[name_end:].lstrip()
    arguments: list[float] | None = None
    if rest.startswith("("):
        close = rest.find(")")
        if close < 0:
            raise StimFormatError("unterminated '(' argument list", line=line, source=source)
        arguments = _parse_parens(rest[1:close], line, source)
        rest = rest[close + 1 :]
    targets = rest.split()
    return name, arguments, targets


def _qubit_targets(tokens: list[str], name: str, line: int, source: str | None) -> tuple[int, ...]:
    """Decode plain qubit-index targets; reject stim's fancier target types."""
    qubits: list[int] = []
    for token in tokens:
        if token.startswith("!"):
            raise StimFormatError(
                f"inverted target {token!r} is not supported", line=line, source=source
            )
        if token.startswith("rec["):
            raise StimFormatError(
                f"{name} does not accept measurement-record targets", line=line, source=source
            )
        if token.startswith("sweep["):
            raise StimFormatError(
                f"sweep target {token!r} is not supported", line=line, source=source
            )
        if token == "*":
            raise StimFormatError(
                "combined (tensor-product) targets are not supported", line=line, source=source
            )
        try:
            qubit = int(token)
        except ValueError:
            raise StimFormatError(
                f"invalid qubit target {token!r}", line=line, source=source
            ) from None
        if qubit < 0:
            raise StimFormatError(
                f"qubit targets must be >= 0, got {qubit}", line=line, source=source
            )
        qubits.append(qubit)
    return tuple(qubits)


def _record_targets(
    tokens: list[str], measurements: int, name: str, line: int, source: str | None
) -> tuple[int, ...]:
    """Decode ``rec[-k]`` targets into absolute measurement indices."""
    records: list[int] = []
    for token in tokens:
        if not (token.startswith("rec[") and token.endswith("]")):
            raise StimFormatError(
                f"{name} takes rec[-k] targets, got {token!r}", line=line, source=source
            )
        try:
            lookback = int(token[4:-1])
        except ValueError:
            raise StimFormatError(
                f"invalid record target {token!r}", line=line, source=source
            ) from None
        if lookback >= 0:
            raise StimFormatError(
                f"record lookbacks must be negative, got {token!r}", line=line, source=source
            )
        absolute = measurements + lookback
        if absolute < 0:
            raise StimFormatError(
                f"{token} looks back past the first measurement "
                f"(only {measurements} so far)",
                line=line,
                source=source,
            )
        records.append(absolute)
    return tuple(records)


def _check_no_arguments(
    arguments: list[float] | None, name: str, line: int, source: str | None
) -> None:
    if arguments is not None:
        if name in ("M", "MX", "MZ"):
            raise StimFormatError(
                f"noisy measurement {name}({_format_float(arguments[0])}) is not "
                "supported; model readout noise with an explicit X_ERROR/Z_ERROR "
                "before the measurement",
                line=line,
                source=source,
            )
        raise StimFormatError(
            f"{name} takes no parenthesised arguments", line=line, source=source
        )


def parse_stim_circuit(text: str, *, source: str | None = None) -> Circuit:
    """Parse stim circuit text into an internal :class:`Circuit`.

    ``REPEAT n { ... }`` blocks (arbitrarily nested) are expanded inline;
    relative ``rec[-k]`` targets resolve against the running measurement
    count exactly as stim defines them, so detectors inside repeated blocks
    land on the right absolute indices per iteration.  ``source`` names the
    input in diagnostics (usually the file path).
    """
    circuit = Circuit()
    _parse_block(text.splitlines(), 0, circuit, source, depth=0)
    return circuit


def _parse_block(
    lines: list[str], start: int, circuit: Circuit, source: str | None, *, depth: int
) -> int:
    """Parse lines from ``start`` until EOF or a closing ``}``.

    Appends instructions to ``circuit`` and returns the index of the line
    holding the ``}`` (for a nested block) or ``len(lines)`` at top level.
    ``REPEAT`` recursion re-parses the block body per iteration so record
    lookbacks resolve per-iteration, matching stim semantics.
    """
    index = start
    while index < len(lines):
        raw = lines[index]
        stripped = raw.split("#", 1)[0].strip()
        line_number = index + 1
        if not stripped:
            index += 1
            continue
        if stripped == "}":
            if depth:
                return index
            raise StimFormatError("unmatched '}'", line=line_number, source=source)
        upper = stripped.upper()
        if upper.startswith("REPEAT"):
            count_text = stripped[len("REPEAT") :].strip()
            if not count_text.endswith("{"):
                raise StimFormatError(
                    "REPEAT must open a '{' block on the same line",
                    line=line_number,
                    source=source,
                )
            count_text = count_text[:-1].strip()
            try:
                count = int(count_text)
            except ValueError:
                raise StimFormatError(
                    f"invalid REPEAT count {count_text!r}", line=line_number, source=source
                ) from None
            if count < 1:
                raise StimFormatError(
                    f"REPEAT count must be >= 1, got {count}", line=line_number, source=source
                )
            block_end = None
            for _ in range(count):
                block_end = _parse_block(lines, index + 1, circuit, source, depth=depth + 1)
                if block_end >= len(lines):
                    raise StimFormatError(
                        "REPEAT block never closed with '}'", line=line_number, source=source
                    )
            index = block_end + 1
            continue
        _parse_instruction(stripped, circuit, line_number, source)
        index += 1
    return index


def _parse_instruction(text: str, circuit: Circuit, line: int, source: str | None) -> None:
    """Parse one (non-REPEAT) instruction line and append it to ``circuit``."""
    name, arguments, target_tokens = _split_line(text, line, source)
    if name in _IGNORED:
        return
    if name in _UNSUPPORTED:
        raise StimFormatError(
            f"unsupported instruction {name!r}: {_UNSUPPORTED[name]}", line=line, source=source
        )
    if name == "TICK":
        _check_no_arguments(arguments, name, line, source)
        if target_tokens:
            raise StimFormatError("TICK takes no targets", line=line, source=source)
        _append(circuit, Instruction("TICK"), line, source)
        return
    if name == "DETECTOR":
        # Parenthesised detector coordinates are accepted and dropped.
        targets = _record_targets(
            target_tokens, circuit.num_measurements, name, line, source
        )
        _append(circuit, Instruction("DETECTOR", targets=targets), line, source)
        return
    if name == "OBSERVABLE_INCLUDE":
        if not arguments or len(arguments) != 1 or arguments[0] != int(arguments[0]):
            raise StimFormatError(
                "OBSERVABLE_INCLUDE needs one integer argument (the observable index)",
                line=line,
                source=source,
            )
        observable_index = int(arguments[0])
        if observable_index < 0:
            raise StimFormatError(
                f"observable indices must be >= 0, got {observable_index}",
                line=line,
                source=source,
            )
        targets = _record_targets(
            target_tokens, circuit.num_measurements, name, line, source
        )
        _append(
            circuit,
            Instruction("OBSERVABLE", targets=targets, index=observable_index),
            line,
            source,
        )
        return
    if name in _CHANNEL_ARITY:
        arity = _CHANNEL_ARITY[name]
        if arguments is None or len(arguments) != arity:
            raise StimFormatError(
                f"{name} needs exactly {arity} parenthesised probability"
                f"{'s' if arity > 1 else ''}, got "
                f"{0 if arguments is None else len(arguments)}",
                line=line,
                source=source,
            )
        qubits = _qubit_targets(target_tokens, name, line, source)
        if name in ("PAULI_CHANNEL_1", "PAULI_CHANNEL_2"):
            instruction = Instruction(name, qubits, probabilities=tuple(arguments))
        else:
            instruction = Instruction(name, qubits, probability=arguments[0])
        _append(circuit, instruction, line, source)
        return
    if name in _STIM_TO_INTERNAL:
        internal, check_pauli = _STIM_TO_INTERNAL[name]
        _check_no_arguments(arguments, name, line, source)
        qubits = _qubit_targets(target_tokens, name, line, source)
        if internal == "CPAULI":
            if len(qubits) % 2 or not qubits:
                raise StimFormatError(
                    f"{name} needs an even, non-zero number of qubit targets",
                    line=line,
                    source=source,
                )
            # stim packs many control/target pairs on one line; the internal
            # CPAULI is one pair per instruction, so the line splits.
            for control, target in zip(qubits[::2], qubits[1::2]):
                _append(
                    circuit,
                    Instruction(internal, (control, target), pauli=check_pauli),
                    line,
                    source,
                )
            return
        _append(circuit, Instruction(internal, qubits), line, source)
        return
    raise StimFormatError(f"unknown instruction {name!r}", line=line, source=source)


def _append(circuit: Circuit, instruction: Instruction, line: int, source: str | None) -> None:
    """Append through :meth:`Circuit.append` so IR validation applies."""
    try:
        circuit.append(instruction)
    except ValueError as error:
        raise StimFormatError(str(error), line=line, source=source) from None


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
def load_stim_circuit(path: "str | Path") -> Circuit:
    """Parse the stim circuit file at ``path`` (diagnostics name the file)."""
    path = Path(path)
    return parse_stim_circuit(path.read_text(), source=str(path))


def write_stim_circuit(circuit: Circuit, path: "str | Path") -> Path:
    """Write ``circuit`` as stim text to ``path``; returns the written path."""
    path = Path(path)
    path.write_text(emit_stim_circuit(circuit))
    return path


# Re-exported for symmetry with the IR module; emitting uses the same gate
# tables, so the supported set is discoverable in one place.
SUPPORTED_INTERNAL_NAMES = frozenset(GATE_NAMES | NOISE_NAMES | {"TICK", "DETECTOR", "OBSERVABLE"})
