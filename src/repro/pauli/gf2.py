"""Dense linear algebra over GF(2).

All matrices are ``numpy`` arrays with entries in ``{0, 1}`` (dtype ``uint8``
is used internally).  The routines here are the workhorses behind logical
operator derivation, code-distance search, OSD post-processing, and the
union-find decoder's cluster-validity checks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gf2_row_reduce",
    "gf2_gauss_elim",
    "gf2_rank",
    "gf2_solve",
    "gf2_nullspace",
    "gf2_inverse",
    "gf2_matmul",
    "gf2_row_span_contains",
]


def _as_gf2(matrix: np.ndarray) -> np.ndarray:
    """Return a uint8 copy of ``matrix`` reduced modulo 2."""
    arr = np.array(matrix, dtype=np.uint8, copy=True)
    arr &= 1
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    return arr


def gf2_row_reduce(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Row reduce ``matrix`` over GF(2) to reduced row-echelon form.

    Returns the reduced matrix and the list of pivot column indices.  Zero
    rows are kept (at the bottom) so the output has the same shape as the
    input.
    """
    mat = _as_gf2(matrix)
    rows, cols = mat.shape
    pivots: list[int] = []
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        candidates = np.nonzero(mat[pivot_row:, col])[0]
        if candidates.size == 0:
            continue
        swap = pivot_row + candidates[0]
        if swap != pivot_row:
            mat[[pivot_row, swap]] = mat[[swap, pivot_row]]
        # Eliminate the pivot column from every other row.
        targets = np.nonzero(mat[:, col])[0]
        for row in targets:
            if row != pivot_row:
                mat[row] ^= mat[pivot_row]
        pivots.append(col)
        pivot_row += 1
    return mat, pivots


def gf2_gauss_elim(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Alias of :func:`gf2_row_reduce` kept for call-site readability."""
    return gf2_row_reduce(matrix)


def gf2_rank(matrix: np.ndarray) -> int:
    """Return the GF(2) rank of ``matrix``."""
    if np.asarray(matrix).size == 0:
        return 0
    _, pivots = gf2_row_reduce(matrix)
    return len(pivots)


#: Below this many scalar multiply-adds the dense int64 product wins (packing
#: overhead dominates); above it the bit-packed popcount kernel takes over.
_PACKED_MATMUL_MIN_OPS = 1 << 18


def gf2_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply two GF(2) matrices (or matrix-vector) modulo 2.

    Small products use a dense ``int64`` matmul; large 2-D products are
    routed through the bit-packed AND/popcount kernel in
    :mod:`repro.sim.bitops` (64 entries per word operation).  Both paths
    return identical uint8 results.
    """
    left = np.asarray(a, dtype=np.uint8)
    right = np.asarray(b, dtype=np.uint8)
    if (
        left.ndim == 2
        and right.ndim == 2
        and left.shape[1] == right.shape[0]
        and left.shape[0] * left.shape[1] * right.shape[1] >= _PACKED_MATMUL_MIN_OPS
    ):
        # Imported lazily: repro.pauli is a base layer and must not pull the
        # simulation stack in at import time.
        from repro.sim.bitops import pack_rows, packed_matmul_parity

        return packed_matmul_parity(pack_rows(left), pack_rows(right.T))
    product = left.astype(np.int64) @ right.astype(np.int64)
    return (product % 2).astype(np.uint8)


def gf2_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray | None:
    """Solve ``matrix @ x = rhs`` over GF(2).

    Returns one solution vector, or ``None`` when the system is
    inconsistent.  ``rhs`` may be a vector of length equal to the number of
    rows of ``matrix``.
    """
    mat = _as_gf2(matrix)
    vec = np.asarray(rhs, dtype=np.uint8).reshape(-1) & 1
    rows, cols = mat.shape
    if vec.shape[0] != rows:
        raise ValueError(
            f"rhs length {vec.shape[0]} does not match matrix rows {rows}"
        )
    augmented = np.concatenate([mat, vec.reshape(-1, 1)], axis=1)
    reduced, pivots = gf2_row_reduce(augmented)
    # Inconsistent if a pivot lands in the augmented column.
    if cols in pivots:
        return None
    solution = np.zeros(cols, dtype=np.uint8)
    for row_index, col in enumerate(pivots):
        solution[col] = reduced[row_index, cols]
    return solution


def gf2_nullspace(matrix: np.ndarray) -> np.ndarray:
    """Return a basis of the right null space of ``matrix`` over GF(2).

    The result has one basis vector per row; it may be empty (shape
    ``(0, cols)``) when the matrix has full column rank.
    """
    mat = _as_gf2(matrix)
    rows, cols = mat.shape
    reduced, pivots = gf2_row_reduce(mat)
    pivot_set = set(pivots)
    free_cols = [c for c in range(cols) if c not in pivot_set]
    basis = np.zeros((len(free_cols), cols), dtype=np.uint8)
    for basis_index, free in enumerate(free_cols):
        basis[basis_index, free] = 1
        for row_index, piv in enumerate(pivots):
            if reduced[row_index, free]:
                basis[basis_index, piv] = 1
    return basis


def gf2_inverse(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(2) matrix; raises ``ValueError`` if singular."""
    mat = _as_gf2(matrix)
    rows, cols = mat.shape
    if rows != cols:
        raise ValueError("only square matrices can be inverted")
    augmented = np.concatenate([mat, np.eye(rows, dtype=np.uint8)], axis=1)
    reduced, pivots = gf2_row_reduce(augmented)
    if pivots[: rows] != list(range(rows)) or len(pivots) < rows:
        raise ValueError("matrix is singular over GF(2)")
    return reduced[:, rows:]


def gf2_row_span_contains(matrix: np.ndarray, vector: np.ndarray) -> bool:
    """Return ``True`` when ``vector`` lies in the row span of ``matrix``."""
    mat = _as_gf2(matrix)
    vec = np.asarray(vector, dtype=np.uint8).reshape(1, -1) & 1
    if mat.size == 0:
        return not vec.any()
    base_rank = gf2_rank(mat)
    stacked = np.concatenate([mat, vec], axis=0)
    return gf2_rank(stacked) == base_rank
