"""Pauli algebra and GF(2) linear algebra primitives.

This package provides the symplectic binary representation of Pauli strings
used throughout the code library, the simulators, and the decoders, together
with the GF(2) linear-algebra routines (row reduction, rank, solving, null
spaces) that stabilizer-code constructions rely on.
"""

from repro.pauli.gf2 import (
    gf2_gauss_elim,
    gf2_inverse,
    gf2_matmul,
    gf2_nullspace,
    gf2_rank,
    gf2_row_reduce,
    gf2_row_span_contains,
    gf2_solve,
)
from repro.pauli.pauli import PauliString, commutes, pauli_product_phase

__all__ = [
    "PauliString",
    "commutes",
    "pauli_product_phase",
    "gf2_gauss_elim",
    "gf2_inverse",
    "gf2_matmul",
    "gf2_nullspace",
    "gf2_rank",
    "gf2_row_reduce",
    "gf2_row_span_contains",
    "gf2_solve",
]
