"""Pauli strings in the symplectic (binary) representation.

A Pauli string on ``n`` qubits is stored as two length-``n`` bit vectors
``xs`` and ``zs``: qubit ``i`` carries ``X`` when ``xs[i] = 1, zs[i] = 0``,
``Z`` when ``xs[i] = 0, zs[i] = 1``, ``Y`` when both bits are set, and
identity otherwise.  A global sign (+1 / -1) is tracked but the imaginary
phases of intermediate products are folded into it following the usual
convention (products of Hermitian Paulis that end up anti-Hermitian never
appear in stabilizer manipulations used here).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

__all__ = ["PauliString", "commutes", "pauli_product_phase"]

_CHAR_TO_BITS = {"I": (0, 0), "_": (0, 0), "X": (1, 0), "Z": (0, 1), "Y": (1, 1)}
_BITS_TO_CHAR = {(0, 0): "I", (1, 0): "X", (0, 1): "Z", (1, 1): "Y"}


def pauli_product_phase(x1: int, z1: int, x2: int, z2: int) -> int:
    """Return the power of ``i`` produced when multiplying two single-qubit Paulis.

    The inputs are the symplectic bits of the left and right operand.  The
    returned value is in ``{-1, 0, +1}`` following the Aaronson–Gottesman
    ``g`` function, i.e. the exponent of ``i`` modulo 4 restricted to the
    values that occur for single-qubit Pauli products.
    """
    if x1 == 0 and z1 == 0:
        return 0
    if x1 == 1 and z1 == 1:  # Y
        return int(z2) - int(x2)
    if x1 == 1 and z1 == 0:  # X
        return int(z2) * (2 * int(x2) - 1)
    # Z
    return int(x2) * (1 - 2 * int(z2))


class PauliString:
    """An n-qubit Pauli operator with a +/-1 sign.

    Instances are mutable only through the documented methods; ``xs`` and
    ``zs`` are exposed as numpy ``uint8`` arrays and should be treated as
    read-only by callers.
    """

    __slots__ = ("xs", "zs", "sign")

    def __init__(
        self,
        num_qubits: int | None = None,
        *,
        xs: np.ndarray | None = None,
        zs: np.ndarray | None = None,
        sign: int = 1,
    ) -> None:
        if xs is not None or zs is not None:
            if xs is None or zs is None:
                raise ValueError("xs and zs must be provided together")
            self.xs = np.asarray(xs, dtype=np.uint8).copy() & 1
            self.zs = np.asarray(zs, dtype=np.uint8).copy() & 1
            if self.xs.shape != self.zs.shape:
                raise ValueError("xs and zs must have the same length")
        else:
            if num_qubits is None:
                raise ValueError("either num_qubits or xs/zs must be given")
            self.xs = np.zeros(num_qubits, dtype=np.uint8)
            self.zs = np.zeros(num_qubits, dtype=np.uint8)
        if sign not in (1, -1):
            raise ValueError("sign must be +1 or -1")
        self.sign = sign

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        """Return the identity operator on ``num_qubits`` qubits."""
        return cls(num_qubits)

    @classmethod
    def from_string(cls, text: str, *, sign: int = 1) -> "PauliString":
        """Build a Pauli string from characters in ``IXZY_`` (e.g. ``"XZZXI"``)."""
        cleaned = text.strip()
        if cleaned.startswith("+"):
            cleaned = cleaned[1:]
        elif cleaned.startswith("-"):
            sign = -sign
            cleaned = cleaned[1:]
        xs = np.zeros(len(cleaned), dtype=np.uint8)
        zs = np.zeros(len(cleaned), dtype=np.uint8)
        for index, char in enumerate(cleaned.upper()):
            if char not in _CHAR_TO_BITS:
                raise ValueError(f"invalid Pauli character {char!r}")
            xs[index], zs[index] = _CHAR_TO_BITS[char]
        return cls(xs=xs, zs=zs, sign=sign)

    @classmethod
    def from_sparse(
        cls,
        num_qubits: int,
        terms: Mapping[int, str] | Iterable[tuple[int, str]],
        *,
        sign: int = 1,
    ) -> "PauliString":
        """Build a Pauli string from ``{qubit: pauli-letter}`` terms."""
        pauli = cls(num_qubits)
        items = terms.items() if isinstance(terms, Mapping) else terms
        for qubit, letter in items:
            if not 0 <= qubit < num_qubits:
                raise ValueError(f"qubit index {qubit} out of range")
            x_bit, z_bit = _CHAR_TO_BITS[letter.upper()]
            pauli.xs[qubit] = x_bit
            pauli.zs[qubit] = z_bit
        pauli.sign = sign
        return pauli

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return int(self.xs.shape[0])

    @property
    def weight(self) -> int:
        """Number of qubits acted on non-trivially."""
        return int(np.count_nonzero(self.xs | self.zs))

    @property
    def support(self) -> list[int]:
        """Sorted list of qubit indices acted on non-trivially."""
        return list(np.nonzero(self.xs | self.zs)[0])

    def pauli_at(self, qubit: int) -> str:
        """Return the single-qubit Pauli letter acting on ``qubit``."""
        return _BITS_TO_CHAR[(int(self.xs[qubit]), int(self.zs[qubit]))]

    def is_identity(self) -> bool:
        return not (self.xs.any() or self.zs.any())

    def to_symplectic(self) -> np.ndarray:
        """Return the length-2n binary vector ``[xs | zs]``."""
        return np.concatenate([self.xs, self.zs])

    @classmethod
    def from_symplectic(cls, vector: np.ndarray, *, sign: int = 1) -> "PauliString":
        vec = np.asarray(vector, dtype=np.uint8).reshape(-1) & 1
        if vec.shape[0] % 2:
            raise ValueError("symplectic vector must have even length")
        half = vec.shape[0] // 2
        return cls(xs=vec[:half], zs=vec[half:], sign=sign)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def commutes_with(self, other: "PauliString") -> bool:
        """Return ``True`` when the two Pauli strings commute."""
        return commutes(self, other)

    def __mul__(self, other: "PauliString") -> "PauliString":
        if self.num_qubits != other.num_qubits:
            raise ValueError("cannot multiply Paulis on different qubit counts")
        phase = 0
        for x1, z1, x2, z2 in zip(self.xs, self.zs, other.xs, other.zs):
            phase += pauli_product_phase(int(x1), int(z1), int(x2), int(z2))
        phase %= 4
        sign = self.sign * other.sign
        if phase == 2:
            sign = -sign
        elif phase != 0:
            # Products of commuting Hermitian Paulis never end up here; for
            # anticommuting operands we fold the i into the sign convention
            # used by the tableau simulator (phase tracked modulo 2).
            sign = -sign if phase == 3 else sign
        product = PauliString(
            xs=self.xs ^ other.xs, zs=self.zs ^ other.zs, sign=sign
        )
        return product

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return (
            self.sign == other.sign
            and np.array_equal(self.xs, other.xs)
            and np.array_equal(self.zs, other.zs)
        )

    def equal_up_to_sign(self, other: "PauliString") -> bool:
        return np.array_equal(self.xs, other.xs) and np.array_equal(self.zs, other.zs)

    def __hash__(self) -> int:
        return hash((self.sign, self.xs.tobytes(), self.zs.tobytes()))

    def copy(self) -> "PauliString":
        return PauliString(xs=self.xs, zs=self.zs, sign=self.sign)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        body = "".join(
            _BITS_TO_CHAR[(int(x), int(z))] for x, z in zip(self.xs, self.zs)
        )
        prefix = "-" if self.sign < 0 else "+"
        return prefix + body

    def __repr__(self) -> str:
        return f"PauliString({str(self)!r})"


def commutes(first: PauliString, second: PauliString) -> bool:
    """Return ``True`` when two Pauli strings commute.

    Two Paulis commute exactly when the symplectic inner product
    ``sum(x1*z2 + z1*x2) mod 2`` vanishes.
    """
    if first.num_qubits != second.num_qubits:
        raise ValueError("Pauli strings act on different numbers of qubits")
    overlap = int(np.dot(first.xs.astype(np.int64), second.zs.astype(np.int64)))
    overlap += int(np.dot(first.zs.astype(np.int64), second.xs.astype(np.int64)))
    return overlap % 2 == 0
