"""Content-addressed on-disk cache of per-chunk estimation results.

The adaptive estimation engine (:func:`repro.parallel
.adaptive_sample_and_decode`) consumes fixed deterministic chunks whose
content is a pure function of the run's configuration: the code, noise,
scheduler and decoder specs, the synthesis budget, the master seed, the
chunk plan (``Budget.plan_shots`` + chunk size) and the chunk index.  That
makes each chunk's ``(shots, errors)`` summary *content addressable* — this
module keys it by the SHA-256 of the canonical JSON of exactly those
inputs.

Deliberately **excluded** from the address:

``workers``
    an execution detail; the worker-invariance guarantee says it never
    changes results, so a cache written on an 8-core server is valid on a
    1-core laptop.
``target_rse`` / ``confidence`` / ``shots``
    precision knobs that decide *how many* chunks are consumed, never what
    a chunk contains.  A run with a tighter ``target_rse`` therefore
    *refines* a cached point — it replays every cached chunk and only
    samples the additional ones — instead of starting over.

Entries are one small JSON file each (sharded by key prefix, written
atomically via ``os.replace``), so concurrent processes can share a cache
directory without locking: the worst case is two processes computing the
same chunk and one idempotent overwrite winning.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.api.spec import RunSpec

__all__ = ["CACHE_VERSION", "ChunkSummary", "ChunkStore", "ResultCache", "chunk_address"]

#: Bump when the address schema or the chunk semantics change; the version
#: is folded into every key, so stale entries simply stop matching.
#: v2: ``RunSpec`` gained ``eval_stage`` (the evaluation seeding stage used
#: by the experiment suites), which enters the spec payload and therefore
#: the address of every chunk.
#: v3: ``RunSpec`` gained ``rounds`` (noisy syndrome rounds per memory
#: experiment), which likewise enters every chunk address.
#: (``RunSpec.sampler`` needed no bump: ``to_dict`` omits it at its default
#: ``"dem"`` — the historical sampling path — so old addresses keep
#: matching, while any non-default sampler enters the address and keys its
#: chunks separately.)
CACHE_VERSION = 3

#: Budget fields that never influence a chunk's content (see module docs).
_NON_CONTENT_BUDGET_FIELDS = ("shots", "target_rse", "max_shots", "confidence")


def chunk_address(spec: RunSpec, basis: str, index: int, chunk_shots: int) -> dict:
    """The canonical (pre-hash) address of one chunk of one run.

    ``plan_shots`` pins the chunk layout and seed-stream plan the chunk was
    drawn from; the spec enters minus ``workers`` and minus the precision
    knobs, per the module contract.
    """
    payload = spec.to_dict()
    payload.pop("workers", None)
    for field_name in _NON_CONTENT_BUDGET_FIELDS:
        payload["budget"].pop(field_name, None)
    return {
        "v": CACHE_VERSION,
        "spec": payload,
        "plan_shots": int(spec.budget.plan_shots),
        "chunk_shots": int(chunk_shots),
        "basis": basis,
        "chunk": int(index),
    }


def _key_of(address: dict) -> str:
    canonical = json.dumps(address, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ChunkSummary:
    """Persisted outcome of one chunk: sample size and logical-error count."""

    shots: int
    errors: int


class ChunkStore:
    """One run-and-basis view of a :class:`ResultCache`.

    The adaptive engine talks to this narrow interface only; the store
    resolves chunk indices to content-addressed files underneath.
    """

    def __init__(self, cache: "ResultCache", spec: RunSpec, basis: str, chunk_shots: int) -> None:
        self._cache = cache
        self._spec = spec
        self._basis = basis
        self._chunk_shots = int(chunk_shots)
        # Per-instance read memo: the warm-cache probe and the replay loop
        # both walk the same indices, and each uncached get() costs an
        # address hash + file read + JSON parse.  A miss is memoised too —
        # if a concurrent process fills it meanwhile, this run just
        # recomputes the chunk and the write stays idempotent.
        self._memo: dict[int, ChunkSummary | None] = {}

    def _address(self, index: int) -> dict:
        return chunk_address(self._spec, self._basis, index, self._chunk_shots)

    def get(self, index: int) -> ChunkSummary | None:
        """The persisted summary of chunk ``index``, or ``None`` on a miss."""
        if index in self._memo:
            return self._memo[index]
        payload = self._cache._read(_key_of(self._address(index)))
        summary = None
        if payload is not None:
            try:
                summary = ChunkSummary(
                    shots=int(payload["shots"]), errors=int(payload["errors"])
                )
            except (KeyError, TypeError, ValueError):
                summary = None  # corrupt entry: fall back to resampling it
        self._memo[index] = summary
        return summary

    def put(self, index: int, shots: int, errors: int) -> None:
        """Persist chunk ``index`` (atomic; idempotent across processes)."""
        address = self._address(index)
        self._cache._write(
            _key_of(address),
            {"address": address, "shots": int(shots), "errors": int(errors)},
        )
        self._memo[index] = ChunkSummary(shots=int(shots), errors=int(errors))


class ResultCache:
    """A directory of content-addressed chunk summaries.

    Layout: ``<root>/<key[:2]>/<key>.json`` — two-level sharding keeps
    directory listings manageable for large sweeps.  All methods tolerate a
    missing root (a fresh cache is just an empty directory).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r})"

    # ------------------------------------------------------------------
    # Store construction
    # ------------------------------------------------------------------
    def chunk_store(self, spec: RunSpec, basis: str, chunk_shots: int) -> ChunkStore:
        """The :class:`ChunkStore` for one (run spec, basis) pair."""
        return ChunkStore(self, spec, basis, chunk_shots)

    # ------------------------------------------------------------------
    # Raw entry IO
    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _read(self, key: str) -> dict | None:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        return payload if isinstance(payload, dict) else None

    def _write(self, key: str, payload: dict) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: readers either see the old entry or the complete
        # new one, never a torn write — the cross-process safety story.
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp", delete=False
        )
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Inspection / maintenance (the `repro cache` CLI surface)
    # ------------------------------------------------------------------
    def _entry_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self._entry_files())

    def entries(self) -> "list[dict]":
        """Every readable entry's payload, with its key under ``"key"``."""
        rows = []
        for path in self._entry_files():
            try:
                payload = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                continue
            if isinstance(payload, dict):
                payload["key"] = path.stem
                rows.append(payload)
        return rows

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entry_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # non-empty (unreadable stragglers) — leave it
        return removed
