"""Scheduling a user-supplied QEC code loaded from the artifact JSON format.

Shows the full "bring your own code" path on top of ``repro.api``:
serialise a code to the paper artifact's JSON format, load it back,
register it under a name with the ``repro.api.codes`` registry (exactly
what a downstream package would do with ``@register_code``), and then run
it through the declarative pipeline like any built-in code — including
AlphaSyndrome synthesis for the decoder of choice.  Point ``--json`` at
your own file to schedule a custom code.

Run with::

    python examples/custom_code_from_json.py [--json path/to/code.json]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.api import Budget, Pipeline, RunSpec, codes
from repro.codes import five_qubit_code
from repro.io import dump_code_json, load_code_json
from repro.scheduling import partition_stabilizers


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="path to a code in the artifact format")
    parser.add_argument("--decoder", default="bposd")
    parser.add_argument("--shots", type=int, default=1500)
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if args.json is None:
        # No file supplied: round-trip the [[5,1,3]] code as a demonstration.
        path = Path(tempfile.gettempdir()) / "five_qubit.json"
        dump_code_json(five_qubit_code(), path)
        print(f"no --json given; wrote and reloaded the [[5,1,3]] code at {path}")
    else:
        path = Path(args.json)
    code = load_code_json(path)
    print(f"loaded {code!r}")

    # Register the loaded code so spec strings (and the CLI) can name it.
    if "custom" not in codes:
        codes.add("custom", lambda: load_code_json(path), help="user-supplied JSON code")

    partitions = partition_stabilizers(code)
    print(f"stabilizer partitions (Algorithm 1): {partitions}")

    base = RunSpec(
        code="custom",
        decoder=args.decoder,
        scheduler="alphasyndrome",
        seed=args.seed,
        budget=Budget(
            shots=args.shots,
            synthesis_shots=max(100, args.shots // 5),
            iterations_per_step=args.iterations,
        ),
    )
    synthesis_run = Pipeline(base)

    print(f"\n{'schedule':<14} {'depth':>5} {'overall logical error':>22}")
    for scheduler in ("alphasyndrome", "lowest_depth", "trivial"):
        run = synthesis_run if scheduler == "alphasyndrome" else Pipeline(
            base.replace(scheduler=scheduler)
        )
        print(f"{scheduler:<14} {run.schedule.depth:>5} {run.rates.overall:>22.3e}")

    print("\nfinal schedule (tick -> checks):")
    for tick, checks in synthesis_run.schedule.ticks().items():
        rendered = ", ".join(
            f"S{c.stabilizer}:{c.pauli}@q{c.data_qubit}" for c in checks
        )
        print(f"  tick {tick:>2}: {rendered}")


if __name__ == "__main__":
    main()
