"""Scheduling a user-supplied QEC code loaded from the artifact JSON format.

Shows the full "bring your own code" path: serialise a code to the paper
artifact's JSON format, load it back, partition its stabilizers, build the
baseline schedules, and synthesise an optimised schedule for the decoder of
choice.  Point ``--json`` at your own file to schedule a custom code.

Run with::

    python examples/custom_code_from_json.py [--json path/to/code.json]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.codes import five_qubit_code
from repro.core import AlphaSyndrome, MCTSConfig
from repro.decoders import decoder_factory
from repro.io import dump_code_json, load_code_json
from repro.noise import brisbane_noise
from repro.scheduling import lowest_depth_schedule, partition_stabilizers, trivial_schedule
from repro.sim import estimate_logical_error_rates


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="path to a code in the artifact format")
    parser.add_argument("--decoder", default="bposd")
    parser.add_argument("--shots", type=int, default=1500)
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if args.json is None:
        # No file supplied: round-trip the [[5,1,3]] code as a demonstration.
        path = Path(tempfile.gettempdir()) / "five_qubit.json"
        dump_code_json(five_qubit_code(), path)
        print(f"no --json given; wrote and reloaded the [[5,1,3]] code at {path}")
    else:
        path = Path(args.json)
    code = load_code_json(path)
    print(f"loaded {code!r}")

    partitions = partition_stabilizers(code)
    print(f"stabilizer partitions (Algorithm 1): {partitions}")

    noise = brisbane_noise()
    factory = decoder_factory(args.decoder)
    alpha = AlphaSyndrome(
        code=code,
        noise=noise,
        decoder_factory=factory,
        shots=max(100, args.shots // 5),
        mcts_config=MCTSConfig(iterations_per_step=args.iterations, seed=args.seed),
        seed=args.seed,
    )
    result = alpha.synthesize()

    print(f"\n{'schedule':<14} {'depth':>5} {'overall logical error':>22}")
    for label, schedule in (
        ("alphasyndrome", result.schedule),
        ("lowest_depth", lowest_depth_schedule(code)),
        ("trivial", trivial_schedule(code)),
    ):
        rates = estimate_logical_error_rates(
            code, schedule, noise, factory, shots=args.shots, seed=args.seed
        )
        print(f"{label:<14} {schedule.depth:>5} {rates.overall:>22.3e}")

    print("\nfinal schedule (tick -> checks):")
    for tick, checks in result.schedule.ticks().items():
        rendered = ", ".join(
            f"S{c.stabilizer}:{c.pauli}@q{c.data_qubit}" for c in checks
        )
        print(f"  tick {tick:>2}: {rendered}")


if __name__ == "__main__":
    main()
