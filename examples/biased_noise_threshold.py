"""Threshold study under composable biased noise channels.

Builds the threshold workload twice — once under uniform depolarizing
noise and once under Z-biased noise (``eta = 10``) — using the same suite
shape (`repro.experiments.threshold.threshold_rows`), then interpolates
each crossing with `repro.analysis.threshold.estimate_crossing`.  Biased
noise moves the crossing because the surface code's X and Z distances see
very different error diets.

The noise axis is just a spec-string template, so swapping scenarios is a
one-line change; try ``"dephasing:p={p}"`` or
``"drift:p0={p},slope=0.5"`` (with ``rounds > 1``) next.

Run with:

    python examples/biased_noise_threshold.py
"""

from __future__ import annotations

from repro.api import Budget
from repro.experiments import render_table, threshold_crossing
from repro.experiments.suite import SuiteConfig, SuiteRunner
from repro.experiments.threshold import threshold_rows

#: Shots per basis per point (bump for smoother curves).
SHOTS = 1_000
#: Physical rates swept; the crossings land inside this bracket.
ERROR_RATES = [8e-3, 3.2e-2, 6.4e-2]

SCENARIOS = [
    ("depolarizing", "scaled:p={p}"),
    ("biased eta=10", "biased:p={p},eta=10"),
]


def main() -> None:
    config = SuiteConfig(budget=Budget(shots=SHOTS), seed=0, quick=True)
    runner = SuiteRunner(config)
    for label, template in SCENARIOS:
        rows = runner.run_rows(
            threshold_rows(config, error_rates=ERROR_RATES, noise_template=template)
        )
        print(f"== {label} ==")
        print(render_table(rows))
        crossing = threshold_crossing(rows)
        if crossing is None:
            print("no crossing bracketed by this sweep\n")
        else:
            print(f"estimated threshold: p ~ {crossing:.2e}\n")


if __name__ == "__main__":
    main()
