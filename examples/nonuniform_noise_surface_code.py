"""Surface-code scheduling under a non-uniform error model (Figure 15).

Google's zig-zag schedule is designed for a uniform error model; when the
ancilla qubits have unequal error rates the best ordering changes.  This
example uses the registry's ``"nonuniform"`` noise spec (which draws a
per-ancilla profile for the code it is built against), synthesises a
schedule tailored to it with the ``"alphasyndrome"`` scheduler, and sweeps
the scheduler field to compare against Google's schedule and the
lowest-depth baseline under the same profile.

Run with::

    python examples/nonuniform_noise_surface_code.py [--distance 3] [--variance 0.6]
"""

from __future__ import annotations

import argparse

from repro.api import Budget, Pipeline, RunSpec
from repro.seeding import named_stream, stream_to_int


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distance", type=int, default=3)
    parser.add_argument("--variance", type=float, default=0.6)
    parser.add_argument("--shots", type=int, default=2000)
    parser.add_argument("--synthesis-shots", type=int, default=250)
    parser.add_argument("--iterations", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    spec = RunSpec(
        code=f"surface:d={args.distance}",
        noise=f"nonuniform:variance={args.variance},"
        f"seed={stream_to_int(named_stream(args.seed, 'noise'))}",
        decoder="mwpm",
        scheduler="alphasyndrome",
        seed=args.seed,
        budget=Budget(
            shots=args.shots,
            synthesis_shots=args.synthesis_shots,
            iterations_per_step=args.iterations,
        ),
    )
    pipeline = Pipeline(spec)

    code = pipeline.code
    ancillas = [code.num_qubits + s for s in range(code.num_stabilizers)]
    print(f"code: {code!r}")
    print("per-ancilla two-qubit error rates:")
    for ancilla in ancillas:
        print(f"  ancilla {ancilla}: {pipeline.noise.two_qubit_rate(ancilla, 0):.5f}")

    print("\nsynthesising noise-aware schedule ...")
    runs = {"alphasyndrome": pipeline}
    for scheduler in ("google", "lowest_depth"):
        runs[scheduler] = Pipeline(spec.replace(scheduler=scheduler))

    print(f"\n{'schedule':<14} {'depth':>5} {'err_X':>10} {'err_Z':>10} {'overall':>10}")
    for label, run in runs.items():
        rates = run.rates
        print(
            f"{label:<14} {run.schedule.depth:>5} {rates.error_x:>10.3e} "
            f"{rates.error_z:>10.3e} {rates.overall:>10.3e}"
        )


if __name__ == "__main__":
    main()
