"""Surface-code scheduling under a non-uniform error model (Figure 15).

Google's zig-zag schedule is designed for a uniform error model; when the
ancilla qubits have unequal error rates the best ordering changes.  This
example draws a per-ancilla noise profile, synthesises a schedule tailored
to it with AlphaSyndrome, and compares against Google's schedule and the
lowest-depth baseline under the same profile.

Run with::

    python examples/nonuniform_noise_surface_code.py [--distance 3] [--variance 0.6]
"""

from __future__ import annotations

import argparse

from repro.codes import rotated_surface_code
from repro.core import AlphaSyndrome, MCTSConfig
from repro.decoders import decoder_factory
from repro.noise import non_uniform_noise
from repro.scheduling import google_surface_schedule, lowest_depth_schedule
from repro.sim import estimate_logical_error_rates


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distance", type=int, default=3)
    parser.add_argument("--variance", type=float, default=0.6)
    parser.add_argument("--shots", type=int, default=2000)
    parser.add_argument("--synthesis-shots", type=int, default=250)
    parser.add_argument("--iterations", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    code = rotated_surface_code(args.distance)
    ancillas = [code.num_qubits + s for s in range(code.num_stabilizers)]
    noise = non_uniform_noise(ancillas, variance=args.variance, seed=args.seed + 11)
    factory = decoder_factory("mwpm")

    print(f"code: {code!r}")
    print("per-ancilla two-qubit error rates:")
    for ancilla in ancillas:
        print(f"  ancilla {ancilla}: {noise.two_qubit_rate(ancilla, 0):.5f}")

    print("\nsynthesising noise-aware schedule ...")
    alpha = AlphaSyndrome(
        code=code,
        noise=noise,
        decoder_factory=factory,
        shots=args.synthesis_shots,
        mcts_config=MCTSConfig(iterations_per_step=args.iterations, seed=args.seed),
        seed=args.seed,
    )
    result = alpha.synthesize()

    schedules = {
        "alphasyndrome": result.schedule,
        "google": google_surface_schedule(code),
        "lowest_depth": lowest_depth_schedule(code),
    }
    print(f"\n{'schedule':<14} {'depth':>5} {'err_X':>10} {'err_Z':>10} {'overall':>10}")
    for label, schedule in schedules.items():
        rates = estimate_logical_error_rates(
            code, schedule, noise, factory, shots=args.shots, seed=args.seed
        )
        print(
            f"{label:<14} {schedule.depth:>5} {rates.error_x:>10.3e} "
            f"{rates.error_z:>10.3e} {rates.overall:>10.3e}"
        )


if __name__ == "__main__":
    main()
