"""Adaptive precision-targeted noise sweep with a shared chunk cache.

Sweeps a surface code across physical error rates and estimates every
point to the *same relative precision* instead of the same shot count:
noisy points with plenty of logical errors stop after a few chunks, while
quiet near-threshold points keep sampling up to the ceiling.  All consumed
chunks land in a
content-addressed cache, so re-running the script performs zero new
sampling and tightening ``TARGET_RSE`` only samples the *additional*
chunks each point needs.

Run with:

    python examples/adaptive_sweep.py
"""

from __future__ import annotations

from repro.api import Budget, Pipeline, RunSpec

#: Stop each basis once its Wilson relative error reaches 20%.
TARGET_RSE = 0.2
#: Adaptive ceiling per basis (also fixes the deterministic chunk plan).
MAX_SHOTS = 20_000
#: Physical error rates to sweep (uniform depolarizing model).
ERROR_RATES = (0.002, 0.004, 0.008)

CACHE_DIR = "results/cache"


def main() -> None:
    base = RunSpec(
        code="surface:d=3",
        scheduler="lowest_depth",
        decoder="mwpm",
        seed=0,
        budget=Budget(target_rse=TARGET_RSE, max_shots=MAX_SHOTS),
    )
    print(f"target_rse={TARGET_RSE}  max_shots={MAX_SHOTS}  cache={CACHE_DIR}")
    for p in ERROR_RATES:
        pipeline = Pipeline(base.replace(noise=f"scaled:p={p}"), cache=CACHE_DIR)
        rates = pipeline.rates
        report = pipeline.adaptive_report
        print(
            f"p={p:<6} overall={rates.overall:.3e} "
            f"shots={rates.shots_by_basis} converged={rates.converged} "
            f"cache_hits={report['cache_hits']} fresh_chunks={report['fresh_chunks']}"
        )
    print(
        "Re-run this script: every point resumes from the cache "
        "(fresh_chunks=0).  Lower TARGET_RSE to refine the hard points only."
    )


if __name__ == "__main__":
    main()
