"""Decoder-aware compilation of a colour-code syndrome schedule.

Demonstrates the paper's cross-decoder observation (Section 5.5 / Table 4)
through ``repro.api``: compiling the hexagonal colour code's schedule
against BP-OSD versus the hypergraph union-find decoder yields different
schedules, and each performs best with the decoder it was compiled for.
Each compile is one :class:`~repro.api.RunSpec` with the
``"alphasyndrome"`` scheduler; cross-testing reuses the synthesised
schedule through the pipeline's staged artifacts.

Run with::

    python examples/color_code_compilation.py [--distance 3] [--shots 2000]
"""

from __future__ import annotations

import argparse

from repro.api import Budget, Pipeline, RunSpec
from repro.sim import estimate_logical_error_rates


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distance", type=int, default=3)
    parser.add_argument("--shots", type=int, default=2000)
    parser.add_argument("--synthesis-shots", type=int, default=250)
    parser.add_argument("--iterations", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    decoders = ("bposd", "unionfind")
    base = RunSpec(
        code=f"color:d={args.distance}",
        scheduler="alphasyndrome",
        seed=args.seed,
        budget=Budget(
            shots=args.shots,
            synthesis_shots=args.synthesis_shots,
            iterations_per_step=args.iterations,
        ),
    )

    pipelines = {}
    for decoder in decoders:
        print(f"compiling against {decoder} ...")
        pipelines[decoder] = Pipeline(base.replace(decoder=decoder))
        pipelines[decoder].schedule  # force the synthesis stage

    reference = pipelines[decoders[0]]
    print(f"code: {reference.code!r}")
    print(f"\n{'compiled for':<14} {'tested with':<12} {'overall logical error':>22}")
    for test_decoder in decoders:
        factory = Pipeline(base.replace(decoder=test_decoder)).decoder_factory
        for compile_decoder in decoders:
            rates = estimate_logical_error_rates(
                reference.code,
                pipelines[compile_decoder].schedule,
                reference.noise,
                factory,
                shots=args.shots,
                seed=args.seed,
            )
            print(f"{compile_decoder:<14} {test_decoder:<12} {rates.overall:>22.3e}")


if __name__ == "__main__":
    main()
