"""Decoder-aware compilation of a colour-code syndrome schedule.

Demonstrates the paper's cross-decoder observation (Section 5.5 / Table 4):
compiling the hexagonal colour code's schedule against BP-OSD versus the
hypergraph union-find decoder yields different schedules, and each performs
best with the decoder it was compiled for.

Run with::

    python examples/color_code_compilation.py [--distance 3] [--shots 2000]
"""

from __future__ import annotations

import argparse

from repro.codes import hexagonal_color_code
from repro.core import AlphaSyndrome, MCTSConfig
from repro.decoders import decoder_factory
from repro.noise import brisbane_noise
from repro.sim import estimate_logical_error_rates


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distance", type=int, default=3)
    parser.add_argument("--shots", type=int, default=2000)
    parser.add_argument("--synthesis-shots", type=int, default=250)
    parser.add_argument("--iterations", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    code = hexagonal_color_code(args.distance)
    noise = brisbane_noise()
    decoders = ("bposd", "unionfind")
    print(f"code: {code!r}")

    schedules = {}
    for decoder in decoders:
        print(f"compiling against {decoder} ...")
        alpha = AlphaSyndrome(
            code=code,
            noise=noise,
            decoder_factory=decoder_factory(decoder),
            shots=args.synthesis_shots,
            mcts_config=MCTSConfig(iterations_per_step=args.iterations, seed=args.seed),
            seed=args.seed,
        )
        schedules[decoder] = alpha.synthesize().schedule

    print(f"\n{'compiled for':<14} {'tested with':<12} {'overall logical error':>22}")
    for test_decoder in decoders:
        factory = decoder_factory(test_decoder)
        for compile_decoder in decoders:
            rates = estimate_logical_error_rates(
                code,
                schedules[compile_decoder],
                noise,
                factory,
                shots=args.shots,
                seed=args.seed,
            )
            print(f"{compile_decoder:<14} {test_decoder:<12} {rates.overall:>22.3e}")


if __name__ == "__main__":
    main()
