"""Quickstart: synthesise a syndrome-measurement schedule for one code.

Reproduces the paper's headline workflow end to end on the distance-3
rotated surface code through the ``repro.api`` pipeline: declare a
:class:`~repro.api.RunSpec`, let the ``"alphasyndrome"`` scheduler
synthesise a schedule, then sweep the scheduler field to compare against
the trivial, lowest-depth and Google hand-crafted baselines — each
comparison is one ``spec.replace(scheduler=...)`` away.

The equivalent shell one-liner is::

    repro synth --code surface:d=3 --decoder mwpm --shots 2000

Run with::

    python examples/quickstart.py [--shots 2000] [--iterations 8]
"""

from __future__ import annotations

import argparse

from repro.api import Pipeline, RunSpec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--code", default="surface:d=3", help="registry spec, e.g. surface:d=5")
    parser.add_argument("--decoder", default="mwpm")
    parser.add_argument("--shots", type=int, default=2000)
    parser.add_argument("--synthesis-shots", type=int, default=300)
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    spec = RunSpec(
        code=args.code,
        decoder=args.decoder,
        scheduler="alphasyndrome",
        seed=args.seed,
    )
    spec = spec.replace(
        budget=spec.budget.replace(
            shots=args.shots,
            synthesis_shots=args.synthesis_shots,
            iterations_per_step=args.iterations,
        )
    )

    print("synthesising schedule with AlphaSyndrome ...")
    pipeline = Pipeline(spec)
    synthesis = pipeline.synthesis
    print(f"code: {pipeline.code!r}, decoder: {spec.decoder}")
    print(
        f"  used {synthesis.evaluations} rollout evaluations, depth {pipeline.schedule.depth}"
    )

    schedulers = ["alphasyndrome", "trivial", "lowest_depth"]
    if pipeline.code.metadata.get("family") == "rotated_surface":
        schedulers.append("google")

    print(f"\n{'schedule':<14} {'depth':>5} {'err_X':>10} {'err_Z':>10} {'overall':>10}")
    for scheduler in schedulers:
        run = pipeline if scheduler == "alphasyndrome" else Pipeline(spec.replace(scheduler=scheduler))
        rates = run.rates
        print(
            f"{scheduler:<14} {run.schedule.depth:>5} {rates.error_x:>10.3e} "
            f"{rates.error_z:>10.3e} {rates.overall:>10.3e}"
        )


if __name__ == "__main__":
    main()
