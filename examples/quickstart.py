"""Quickstart: synthesise a syndrome-measurement schedule for one code.

Reproduces the paper's headline workflow end to end on the distance-3
rotated surface code: build the code, pick a decoder and a noise model,
synthesise a schedule with AlphaSyndrome, and compare its logical error rate
against the trivial, lowest-depth and Google hand-crafted schedules.

Run with::

    python examples/quickstart.py [--shots 2000] [--iterations 8]
"""

from __future__ import annotations

import argparse

from repro.codes import get_code
from repro.core import AlphaSyndrome, MCTSConfig
from repro.decoders import decoder_factory
from repro.noise import brisbane_noise
from repro.scheduling import google_surface_schedule, lowest_depth_schedule, trivial_schedule
from repro.sim import estimate_logical_error_rates


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--code", default="rotated_surface_d3")
    parser.add_argument("--decoder", default="mwpm")
    parser.add_argument("--shots", type=int, default=2000)
    parser.add_argument("--synthesis-shots", type=int, default=300)
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    code = get_code(args.code)
    noise = brisbane_noise()
    factory = decoder_factory(args.decoder)
    print(f"code: {code!r}, decoder: {args.decoder}")

    print("synthesising schedule with AlphaSyndrome ...")
    alpha = AlphaSyndrome(
        code=code,
        noise=noise,
        decoder_factory=factory,
        shots=args.synthesis_shots,
        mcts_config=MCTSConfig(iterations_per_step=args.iterations, seed=args.seed),
        seed=args.seed,
    )
    result = alpha.synthesize()
    print(f"  used {result.evaluations} rollout evaluations, depth {result.schedule.depth}")

    schedules = {
        "alphasyndrome": result.schedule,
        "trivial": trivial_schedule(code),
        "lowest_depth": lowest_depth_schedule(code),
    }
    if code.metadata.get("family") == "rotated_surface":
        schedules["google"] = google_surface_schedule(code)

    print(f"\n{'schedule':<14} {'depth':>5} {'err_X':>10} {'err_Z':>10} {'overall':>10}")
    for label, schedule in schedules.items():
        rates = estimate_logical_error_rates(
            code, schedule, noise, factory, shots=args.shots, seed=args.seed
        )
        print(
            f"{label:<14} {schedule.depth:>5} {rates.error_x:>10.3e} "
            f"{rates.error_z:>10.3e} {rates.overall:>10.3e}"
        )


if __name__ == "__main__":
    main()
