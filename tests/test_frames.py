"""The batched Pauli-frame sampler: realisation pins and agreement nets.

Four layers of guarantees:

* **Per-channel realisation pins** — tiny hand-built circuits where a
  noise instruction fires with probability one (or carries a single-mass
  channel), so the frame update is deterministic and can be asserted bit
  for bit, including through H/S/CPAULI/SWAP conjugation and resets.
* **Frame-vs-tableau equality** — injecting *identical explicit* Pauli
  errors (p=1 channels) must give the same detector/observable flips from
  :class:`FrameSampler` and the per-shot :class:`TableauSampler`.
* **Frame-vs-DEM statistical agreement** — on real noisy memory circuits
  the frame propagator and the DEM mechanism sampler estimate the same
  logical error rate within overlapping Wilson intervals at fixed seeds.
* **Engine integration** — fixed seeds give bit-identical batches, the
  chunked pool stays worker-count invariant under ``sampler="frames"``,
  and the spec serialisation keeps legacy payloads/cache addresses valid.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.stats import wilson_halfwidth
from repro.api import Budget, Pipeline, RunSpec, registries
from repro.api.cli import main
from repro.api.spec import canonical_spec
from repro.cache import chunk_address
from repro.circuits.circuit import Circuit, Instruction
from repro.sim.frames import FrameSampler, TableauSampler
from repro.sim.sampler import DemSampler


def _measured_circuit(instructions, *, num_qubits=1, basis="M"):
    """R all; <instructions>; measure all; one detector per measurement."""
    circuit = Circuit()
    qubits = tuple(range(num_qubits))
    circuit.append(Instruction("R", qubits))
    for instruction in instructions:
        circuit.append(instruction)
    circuit.append(Instruction(basis, qubits))
    for record in range(num_qubits):
        circuit.append(Instruction("DETECTOR", targets=(record,)))
    return circuit


def _detector_flips(circuit, shots=3, seed=0):
    """All shots' detector rows; asserts every shot agrees (deterministic)."""
    detectors = FrameSampler(circuit).sample(shots, seed=seed).detectors
    assert (detectors == detectors[0]).all(), "expected a deterministic frame"
    return detectors[0].tolist()


class TestChannelRealisations:
    """p=1 / single-mass channels give exactly the documented frame flips."""

    def test_x_error_flips_z_readout(self):
        circuit = _measured_circuit([Instruction("X_ERROR", (0,), probability=1.0)])
        assert _detector_flips(circuit) == [1]

    def test_z_error_invisible_in_z_readout(self):
        circuit = _measured_circuit([Instruction("Z_ERROR", (0,), probability=1.0)])
        assert _detector_flips(circuit) == [0]

    def test_z_error_flips_x_readout(self):
        circuit = _measured_circuit(
            [Instruction("Z_ERROR", (0,), probability=1.0)], basis="MX"
        )
        assert _detector_flips(circuit) == [1]

    def test_y_error_flips_both_readouts(self):
        for basis in ("M", "MX"):
            circuit = _measured_circuit(
                [Instruction("Y_ERROR", (0,), probability=1.0)], basis=basis
            )
            assert _detector_flips(circuit) == [1]

    def test_hadamard_conjugates_z_into_x(self):
        circuit = _measured_circuit(
            [Instruction("Z_ERROR", (0,), probability=1.0), Instruction("H", (0,))]
        )
        assert _detector_flips(circuit) == [1]

    def test_s_turns_x_into_y(self):
        # S X S^dag = Y: still measurement-flipping in Z, now also in X.
        circuit = _measured_circuit(
            [Instruction("X_ERROR", (0,), probability=1.0), Instruction("S", (0,))],
            basis="MX",
        )
        assert _detector_flips(circuit) == [1]

    def test_cnot_copies_x_onto_target(self):
        circuit = _measured_circuit(
            [
                Instruction("X_ERROR", (0,), probability=1.0),
                Instruction("CPAULI", (0, 1), pauli="X"),
            ],
            num_qubits=2,
        )
        assert _detector_flips(circuit) == [1, 1]

    def test_cz_kicks_z_onto_control(self):
        # X on target, then CZ: the control picks up a Z (visible under MX).
        circuit = _measured_circuit(
            [
                Instruction("X_ERROR", (1,), probability=1.0),
                Instruction("CPAULI", (0, 1), pauli="Z"),
            ],
            num_qubits=2,
            basis="MX",
        )
        assert _detector_flips(circuit) == [1, 0]

    def test_swap_moves_the_frame(self):
        circuit = _measured_circuit(
            [
                Instruction("X_ERROR", (0,), probability=1.0),
                Instruction("SWAP", (0, 1)),
            ],
            num_qubits=2,
        )
        assert _detector_flips(circuit) == [0, 1]

    def test_reset_clears_the_frame(self):
        circuit = _measured_circuit(
            [Instruction("X_ERROR", (0,), probability=1.0), Instruction("R", (0,))]
        )
        assert _detector_flips(circuit) == [0]

    @pytest.mark.parametrize(
        "probabilities,z_flips,x_flips",
        [((1.0, 0.0, 0.0), 1, 0), ((0.0, 1.0, 0.0), 1, 1), ((0.0, 0.0, 1.0), 0, 1)],
    )
    def test_pauli_channel_1_single_mass(self, probabilities, z_flips, x_flips):
        for basis, expected in (("M", z_flips), ("MX", x_flips)):
            circuit = _measured_circuit(
                [Instruction("PAULI_CHANNEL_1", (0,), probabilities=probabilities)],
                basis=basis,
            )
            assert _detector_flips(circuit) == [expected]

    @pytest.mark.parametrize(
        "mass_index,expected_z,expected_x",
        [
            (0, [0, 1], [0, 0]),   # (I, X)
            (4, [1, 1], [0, 0]),   # (X, X)
            (10, [1, 0], [1, 1]),  # (Y, Z)
        ],
    )
    def test_pauli_channel_2_single_mass(self, mass_index, expected_z, expected_x):
        probabilities = tuple(1.0 if i == mass_index else 0.0 for i in range(15))
        for basis, expected in (("M", expected_z), ("MX", expected_x)):
            circuit = _measured_circuit(
                [Instruction("PAULI_CHANNEL_2", (0, 1), probabilities=probabilities)],
                num_qubits=2,
                basis=basis,
            )
            assert _detector_flips(circuit) == expected

    def test_depolarize1_marginals(self):
        # p=1 depolarizing: X/Y/Z equiprobable, so the Z readout flips with
        # probability 2/3 (X or Y component).  Statistical pin at 8192 shots.
        circuit = _measured_circuit([Instruction("DEPOLARIZE1", (0,), probability=1.0)])
        detectors = FrameSampler(circuit).sample(8192, seed=3).detectors
        flips = int(detectors.sum())
        assert abs(flips / 8192 - 2 / 3) < 4 * wilson_halfwidth(flips, 8192)

    def test_depolarize2_marginals(self):
        # p=1 two-qubit depolarizing: each half flips the Z readout iff its
        # letter is X or Y — 8 of the 15 pairs per half.
        circuit = _measured_circuit(
            [Instruction("DEPOLARIZE2", (0, 1), probability=1.0)], num_qubits=2
        )
        detectors = FrameSampler(circuit).sample(8192, seed=4).detectors
        for column in range(2):
            flips = int(detectors[:, column].sum())
            assert abs(flips / 8192 - 8 / 15) < 4 * wilson_halfwidth(flips, 8192)

    def test_repeated_qubit_rejected(self):
        circuit = Circuit()
        circuit.append(Instruction("R", (0, 1)))
        circuit.instructions.append(Instruction("H", (0, 0)))  # bypass append checks
        with pytest.raises(ValueError, match="repeats a qubit"):
            FrameSampler(circuit)


def _inject(circuit: Circuit, insertions) -> Circuit:
    """Copy ``circuit`` with p=1 Pauli errors inserted at given positions."""
    instructions = list(circuit.instructions)
    for position, name, qubit in sorted(insertions, reverse=True):
        instructions.insert(position, Instruction(name, (qubit,), probability=1.0))
    return Circuit(instructions)


class TestFrameVersusTableau:
    """Identical explicit Pauli errors → identical flips from both engines."""

    @pytest.mark.parametrize(
        "insertions",
        [
            [(4, "X_ERROR", 0)],
            [(8, "Z_ERROR", 3)],
            [(4, "Y_ERROR", 5), (15, "X_ERROR", 2)],
            [(6, "X_ERROR", 1), (6, "Z_ERROR", 1), (20, "Y_ERROR", 7)],
        ],
    )
    def test_deterministic_injections_agree(self, insertions):
        pipeline = Pipeline(
            RunSpec(code="surface:d=3", noise="noiseless", budget=Budget(shots=1))
        )
        for basis in ("Z", "X"):
            noisy = _inject(pipeline.circuit[basis], insertions)
            frame_batch = FrameSampler(noisy).sample(5, seed=0)
            tableau_batch = TableauSampler(noisy).sample(1, seed=0)
            assert np.array_equal(frame_batch.detectors[0], tableau_batch.detectors[0])
            assert np.array_equal(
                frame_batch.observables[0], tableau_batch.observables[0]
            )
            # Deterministic noise: every frame shot is the same row.
            assert (frame_batch.detectors == frame_batch.detectors[0]).all()

    def test_tableau_modes_agree_batchwise(self):
        pipeline = Pipeline(
            RunSpec(code="surface:d=3", noise="brisbane", budget=Budget(shots=1))
        )
        circuit = pipeline.circuit["Z"]
        packed = TableauSampler(circuit, mode="packed").sample(6, seed=9)
        dense = TableauSampler(circuit, mode="dense").sample(6, seed=9)
        assert np.array_equal(packed.detectors, dense.detectors)
        assert np.array_equal(packed.observables, dense.observables)


class TestFrameVersusDem:
    def test_detection_rates_within_wilson(self):
        """Frames and the DEM sampler see the same circuit-level statistics."""
        pipeline = Pipeline(
            RunSpec(code="surface:d=3", noise="brisbane", rounds=2, budget=Budget(shots=1))
        )
        shots = 4096
        for basis in ("Z", "X"):
            circuit, dem = pipeline.circuit[basis], pipeline.dem[basis]
            frame_hits = int(FrameSampler(circuit, dem).sample(shots, seed=7).detectors.sum())
            dem_hits = int(DemSampler(circuit, dem).sample(shots, seed=7).detectors.sum())
            trials = shots * circuit.num_detectors
            tolerance = wilson_halfwidth(frame_hits, trials) + wilson_halfwidth(
                dem_hits, trials
            )
            assert abs(frame_hits - dem_hits) / trials <= tolerance

    def test_logical_error_rates_within_wilson(self):
        """End-to-end: ``sampler="frames"`` and the default DEM path estimate
        the same logical error rate within overlapping Wilson intervals."""
        spec = RunSpec(
            code="surface:d=3",
            noise="brisbane",
            decoder="lookup",
            scheduler="lowest_depth",
            seed=9,
            budget=Budget(shots=4096),
        )
        dem_rates = Pipeline(spec).rates
        frame_rates = Pipeline(spec.replace(sampler="frames")).rates
        for attribute in ("error_z", "error_x"):
            dem_rate = getattr(dem_rates, attribute)
            frame_rate = getattr(frame_rates, attribute)
            tolerance = wilson_halfwidth(
                int(dem_rate * 4096), 4096
            ) + wilson_halfwidth(int(frame_rate * 4096), 4096)
            assert abs(dem_rate - frame_rate) <= tolerance

    def test_fixed_seed_bit_identical(self):
        pipeline = Pipeline(
            RunSpec(code="surface:d=3", noise="brisbane", budget=Budget(shots=1))
        )
        sampler = FrameSampler(pipeline.circuit["Z"], pipeline.dem["Z"])
        first = sampler.sample(200, seed=42)
        second = sampler.sample(200, seed=42)
        assert np.array_equal(first.detectors, second.detectors)
        assert np.array_equal(first.observables, second.observables)
        assert np.array_equal(first.packed_detectors, second.packed_detectors)
        assert not np.array_equal(
            first.detectors, sampler.sample(200, seed=43).detectors
        )

    def test_packed_detectors_match_unpacked(self):
        from repro.sim.bitops import pack_rows

        pipeline = Pipeline(
            RunSpec(code="surface:d=3", noise="brisbane", budget=Budget(shots=1))
        )
        batch = FrameSampler(pipeline.circuit["Z"]).sample(130, seed=1)
        assert batch.detectors.shape[0] == 130
        assert np.array_equal(batch.packed_detectors, pack_rows(batch.detectors))
        assert batch.faults.shape == (130, 0)

    def test_zero_shots_batch_is_well_formed(self):
        pipeline = Pipeline(
            RunSpec(code="surface:d=3", noise="brisbane", budget=Budget(shots=1))
        )
        batch = FrameSampler(pipeline.circuit["Z"]).sample(0)
        assert batch.detectors.shape == (0, pipeline.circuit["Z"].num_detectors)
        assert batch.observables.shape == (0, 1)


class TestEngineIntegration:
    @pytest.mark.parametrize("sampler", ["frames", "tableau:dense"])
    def test_registry_builds_samplers(self, sampler):
        pipeline = Pipeline(
            RunSpec(code="surface:d=3", noise="noiseless", budget=Budget(shots=1))
        )
        factory = registries.samplers.build(sampler)
        built = factory(pipeline.circuit["Z"], pipeline.dem["Z"])
        expected = FrameSampler if sampler == "frames" else TableauSampler
        assert isinstance(built, expected)
        if sampler == "tableau:dense":
            assert built.mode == "dense"

    def test_dem_backend_spec(self):
        pipeline = Pipeline(
            RunSpec(code="surface:d=3", noise="brisbane", budget=Budget(shots=1))
        )
        factory = registries.samplers.build("dem:backend=dense")
        built = factory(pipeline.circuit["Z"], pipeline.dem["Z"])
        assert isinstance(built, DemSampler)
        assert built.backend == "dense"

    def test_default_spec_uses_direct_dem_path(self):
        pipeline = Pipeline(RunSpec(code="surface:d=3", budget=Budget(shots=1)))
        assert pipeline.samplers == {"Z": None, "X": None}

    def test_frames_pipeline_worker_count_invariant(self, monkeypatch):
        """The worker-invariance guarantee must hold for frame sampling too."""
        import repro.parallel

        monkeypatch.setattr(repro.parallel, "DEFAULT_CHUNK_SHOTS", 64)
        spec = RunSpec(
            code="surface:d=3",
            noise="brisbane",
            decoder="lookup",
            scheduler="lowest_depth",
            sampler="frames",
            seed=5,
            budget=Budget(shots=300),
        )
        serial = Pipeline(spec)
        pooled = Pipeline(spec.replace(workers=3))
        assert serial.rates == pooled.rates
        for basis in ("Z", "X"):
            assert np.array_equal(
                serial.syndromes[basis].detectors, pooled.syndromes[basis].detectors
            )
            assert np.array_equal(serial.predictions[basis], pooled.predictions[basis])

    def test_tableau_sampler_end_to_end(self):
        spec = RunSpec(
            code="repetition:d=3",
            noise="scaled:p=0.01",
            decoder="lookup",
            sampler="tableau",
            seed=1,
            budget=Budget(shots=24),
        )
        pipeline = Pipeline(spec)
        assert pipeline.syndromes["Z"].detectors.shape[0] == 24
        assert 0.0 <= pipeline.rates.overall <= 1.0


class TestSpecCompatibility:
    """``sampler`` must not disturb existing payloads, fingerprints or keys."""

    def test_to_dict_omits_default_sampler(self):
        payload = RunSpec().to_dict()
        assert "sampler" not in payload
        assert RunSpec.from_dict(payload).sampler == "dem"

    def test_to_dict_keeps_non_default_sampler(self):
        spec = RunSpec(sampler="frames")
        payload = spec.to_dict()
        assert payload["sampler"] == "frames"
        assert RunSpec.from_dict(payload) == spec

    def test_legacy_payload_round_trips(self):
        legacy = RunSpec(code="surface:d=5", decoder="mwpm").to_dict()
        legacy.pop("sampler", None)  # what an old results file contains
        spec = RunSpec.from_dict(legacy)
        assert spec.sampler == "dem"
        assert canonical_spec(legacy) == canonical_spec(spec.to_dict())

    def test_default_sampler_chunk_address_unchanged(self):
        """Old cache entries stay addressable: the default spec's address
        payload is byte-identical to what a pre-sampler build produced."""
        spec = RunSpec(code="surface:d=3", decoder="lookup", seed=3)
        address = chunk_address(spec, "Z", 0, 1024)
        assert "sampler" not in address["spec"]
        explicit_default = dataclasses.replace(spec, sampler="dem")
        assert chunk_address(explicit_default, "Z", 0, 1024) == address

    def test_non_default_sampler_keys_chunks_separately(self):
        spec = RunSpec(code="surface:d=3", decoder="lookup", seed=3)
        frames = spec.replace(sampler="frames")
        assert chunk_address(frames, "Z", 0, 1024) != chunk_address(spec, "Z", 0, 1024)
        assert chunk_address(frames, "Z", 0, 1024)["spec"]["sampler"] == "frames"


class TestCli:
    def test_list_samplers(self, capsys):
        assert main(["list", "samplers"]) == 0
        out = capsys.readouterr().out
        assert "dem" in out
        assert "frames" in out
        assert "tableau" in out

    def test_run_with_sampler_flag(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--code", "surface:d=3",
                    "--decoder", "lookup",
                    "--sampler", "frames",
                    "--shots", "64",
                    "--seed", "2",
                ]
            )
            == 0
        )
        assert "surface:d=3" in capsys.readouterr().out
