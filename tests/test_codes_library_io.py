"""Tests for the code registry and the artifact JSON serialisation."""

from __future__ import annotations

import pytest

from repro.codes import available_codes, get_code
from repro.io import code_from_dict, code_to_dict, dump_code_json, load_code_json
from repro.pauli import commutes


class TestRegistry:
    def test_available_codes_sorted_and_nonempty(self):
        names = available_codes()
        assert names == sorted(names)
        assert len(names) >= 25

    def test_every_registered_code_constructs(self):
        # Skip the largest entries to keep the test fast; they are covered by
        # the family-specific tests.  stimfile is argument-only (it imports an
        # external circuit file named in the spec) — covered by the interop tests.
        skip = {"rotated_surface_d9", "rotated_surface_d7", "hexagonal_color_d9", "stimfile"}
        for name in available_codes():
            if name in skip:
                continue
            code = get_code(name)
            assert code.num_qubits > 0
            assert code.num_logical_qubits >= 0

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="available"):
            get_code("not_a_code")

    def test_paper_table2_codes_present(self):
        names = set(available_codes())
        for required in (
            "hexagonal_color_d3",
            "hexagonal_color_d9",
            "square_octagonal_d3",
            "defect_surface_d5",
            "bb_72_12_6",
        ):
            assert required in names


class TestJsonRoundTrip:
    @pytest.mark.parametrize("name", ["steane", "rotated_surface_d3", "five_qubit", "toric_d3"])
    def test_round_trip_preserves_parameters(self, name):
        code = get_code(name)
        payload = code_to_dict(code)
        again = code_from_dict(payload)
        assert again.num_qubits == code.num_qubits
        assert again.num_logical_qubits == code.num_logical_qubits
        assert again.num_stabilizers == code.num_stabilizers

    def test_round_trip_preserves_logicals(self, steane):
        payload = code_to_dict(steane)
        again = code_from_dict(payload)
        for logical, original in zip(again.logical_xs, steane.logical_xs):
            assert logical.equal_up_to_sign(original)

    def test_file_round_trip(self, tmp_path, surface_d3):
        path = tmp_path / "surface.json"
        dump_code_json(surface_d3, path)
        loaded = load_code_json(path)
        assert loaded.num_qubits == 9
        assert loaded.num_logical_qubits == 1

    def test_inconsistent_k_rejected(self, steane):
        payload = code_to_dict(steane)
        payload["k"] = 3
        with pytest.raises(Exception):
            code_from_dict(payload)

    def test_missing_stabilizers_rejected(self):
        with pytest.raises(Exception):
            code_from_dict({"n": 4, "k": 1})

    def test_loaded_code_is_valid_stabilizer_group(self, five_qubit):
        again = code_from_dict(code_to_dict(five_qubit))
        for first in again.stabilizers:
            for second in again.stabilizers:
                assert commutes(first, second)
