"""Tests for the composable noise-channel subsystem (repro.noise.channels).

The heart of this file is the bit-identity battery: the legacy uniform
models must produce *bit-identical* detector error models through the new
channel path (pinned against digests captured before the refactor), and
the algebra's advertised reductions — ``eta=1`` == depolarizing, zero
drift == static, zero rates == noiseless — must hold at DEM level, not
just approximately.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.api.pipeline import Pipeline
from repro.api.registries import noise as noise_registry
from repro.circuits.circuit import Circuit, Instruction
from repro.circuits.memory import build_memory_experiment
from repro.noise import (
    ComposedNoiseModel,
    Dephasing,
    DriftingChannel,
    IdleBiasedPauli,
    IdleDepolarizing,
    MeasurementFlip,
    NoiseModel,
    NoiseModelBuilder,
    NoiseOp,
    NoiseSite,
    ResetFlip,
    TwoQubitBiasedPauli,
    TwoQubitDepolarizing,
    biased_pauli_rates,
    two_qubit_biased_rates,
)
from repro.sim.dem import build_detector_error_model
from repro.sim.tableau import simulate_circuit


def dem_digest(dem) -> str:
    """Canonical digest of a DEM's (probability, detectors, observables) list."""
    payload = [
        (m.probability, sorted(m.detectors), sorted(m.observables))
        for m in dem.mechanisms
    ]
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def pipeline_digests(code: str, noise: str, **kwargs) -> tuple[str, str]:
    pipeline = Pipeline(
        code=code, noise=noise, scheduler="lowest_depth", decoder="mwpm", seed=5, **kwargs
    )
    return dem_digest(pipeline.dem["Z"]), dem_digest(pipeline.dem["X"])


class TestLegacyBitIdentity:
    """Uniform legacy models through the channel path == pre-refactor DEMs.

    The digests below were captured from the repository *before* the
    channel refactor (builder emitting depolarize2/depolarize1/z_error
    directly from NoiseModel rates).  Any change to how legacy models
    translate into instructions shows up here as a digest mismatch.
    """

    PINNED = {
        ("surface:d=3", "brisbane"): (
            "ed877640115c6796ded0f0d737ff19aea17c088afe5fde004f8513f4a1156a68",
            "e725df9cd03e64074c28e854e86bf7ff0571b1e3052a10937172e71ecb6a38aa",
        ),
        ("surface:d=3", "scaled:p=0.003"): (
            "6728156c04115bc4227f9a484b95418e6cb3ac4316d39fe767b8d4e193f7ca63",
            "a3a4dd439c46089280366d2b3a87b2bad465f2cc4676b97a9b3c54454beb2fe0",
        ),
        (
            "surface:d=3",
            "depolarizing:two_qubit=0.004,idle=0.002,measurement=0.001,reset=0.0005",
        ): (
            "2d75cf5b4778433048d11a310ac96db4166db4934a8895aad1d9629ca5d4fcec",
            "14fbb1844cd9a69e4c222bca20984111410d6806899f61ef10ba321cf8ad1da0",
        ),
        ("surface:d=3", "nonuniform:variance=0.5,seed=7"): (
            "000e27449ac9275e945fd5dbed7dae2580033032c1e6cdb115f2cb94813eed71",
            "6b3f10212124bf503608edc92e1ff9fbd2267fc02ab53f5d0b7c118704712908",
        ),
        ("steane", "brisbane"): (
            "9a98a4ed7d845a6a16c9da5434a781f55f4d3b07b217b7eb2558effde5a13c7e",
            "771d574708753ccee2a1e25ac9e9cf329c30c0307ea5692c6da236f8ee15ce13",
        ),
    }

    @pytest.mark.parametrize("code,noise_spec", sorted(PINNED))
    def test_dem_digests_pinned(self, code, noise_spec):
        assert pipeline_digests(code, noise_spec) == self.PINNED[(code, noise_spec)]

    def test_rates_pinned(self):
        """End-to-end rates of a legacy model are unchanged by the refactor."""
        pipeline = Pipeline(
            code="surface:d=3",
            noise="brisbane",
            scheduler="lowest_depth",
            decoder="mwpm",
            shots=64,
            seed=5,
        )
        assert pipeline.rates.error_x == 0.015625
        assert pipeline.rates.error_z == 0.03125

    def test_legacy_model_routes_through_channels(self):
        """NoiseModel.channel_ops is the decomposition the builder consumes."""
        model = NoiseModel(
            two_qubit_error=0.01,
            idle_error=0.002,
            measurement_error=0.003,
            reset_error=0.004,
        )
        gate_ops = model.channel_ops(NoiseSite("gate", (7, 2), tick=1))
        assert [op.name for op in gate_ops] == ["DEPOLARIZE2"]
        assert gate_ops[0].probability == 0.01
        idle_ops = model.channel_ops(NoiseSite("idle", (3,), tick=2))
        assert [op.name for op in idle_ops] == ["DEPOLARIZE1"]
        measure_ops = model.channel_ops(NoiseSite("measure", (9,)))
        assert [(op.name, op.probability) for op in measure_ops] == [("Z_ERROR", 0.003)]
        reset_ops = model.channel_ops(NoiseSite("reset", (9, 10, 11)))
        assert [(op.name, op.qubits) for op in reset_ops] == [("Z_ERROR", (9, 10, 11))]

    def test_per_qubit_override_uses_pair_maximum(self):
        model = NoiseModel(two_qubit_error=0.01, per_qubit_two_qubit={5: 0.03})
        (op,) = model.channel_ops(NoiseSite("gate", (5, 0), tick=1))
        assert op.probability == 0.03
        (op,) = model.channel_ops(NoiseSite("gate", (0, 1), tick=1))
        assert op.probability == 0.01


class TestBiasConvention:
    def test_eta_one_is_exact_depolarizing_split(self):
        p = 0.003
        assert biased_pauli_rates(p, 1.0) == (p / 3.0, p / 3.0, p / 3.0)
        assert two_qubit_biased_rates(p, 1.0) == tuple([p / 15.0] * 15)

    def test_rates_sum_to_total(self):
        for eta in (0.0, 0.5, 1.0, 10.0, 1e6):
            assert sum(biased_pauli_rates(0.01, eta)) == pytest.approx(0.01)
            assert sum(two_qubit_biased_rates(0.01, eta)) == pytest.approx(0.01)

    def test_large_eta_approaches_pure_dephasing(self):
        px, py, pz = biased_pauli_rates(0.01, 1e9)
        assert pz == pytest.approx(0.01, rel=1e-6)
        assert px < 1e-10 and py < 1e-10

    def test_negative_eta_rejected(self):
        with pytest.raises(ValueError):
            biased_pauli_rates(0.01, -1.0)
        with pytest.raises(ValueError):
            two_qubit_biased_rates(0.01, -0.5)

    def test_eta_one_dem_bit_identical_to_depolarizing(self):
        """`biased:eta=1` and `scaled` produce bit-identical DEMs."""
        assert pipeline_digests("surface:d=3", "biased:p=0.003,eta=1") == pipeline_digests(
            "surface:d=3", "scaled:p=0.003"
        )

    def test_bias_skews_logical_error_asymmetry(self):
        """High-eta noise produces a different DEM than depolarizing."""
        assert pipeline_digests("surface:d=3", "biased:p=0.003,eta=20") != pipeline_digests(
            "surface:d=3", "scaled:p=0.003"
        )


class TestDrift:
    def test_zero_slope_bit_identical_to_static(self):
        assert pipeline_digests("surface:d=3", "drift:p0=0.003,slope=0") == pipeline_digests(
            "surface:d=3", "scaled:p=0.003"
        )

    def test_zero_slope_multi_round_bit_identical_to_static(self):
        """The guarantee holds per round, not just for single-round circuits."""
        assert pipeline_digests(
            "surface:d=3", "drift:p0=0.003,slope=0", rounds=3
        ) == pipeline_digests("surface:d=3", "scaled:p=0.003", rounds=3)

    def test_drift_changes_later_rounds(self):
        static = pipeline_digests("surface:d=3", "scaled:p=0.003", rounds=3)
        drifting = pipeline_digests("surface:d=3", "drift:p0=0.003,slope=0.5", rounds=3)
        assert static != drifting

    def test_single_round_drift_is_static(self):
        """With one noisy round there is no time axis; drift cannot act."""
        assert pipeline_digests(
            "surface:d=3", "drift:p0=0.003,slope=0.5"
        ) == pipeline_digests("surface:d=3", "scaled:p=0.003")

    def test_round_unit_scales_rates_linearly(self):
        channel = DriftingChannel(IdleDepolarizing(0.01), slope=0.5)
        (op0,) = channel.ops(NoiseSite("idle", (0,), tick=1, round_index=0))
        (op2,) = channel.ops(NoiseSite("idle", (0,), tick=1, round_index=2))
        assert op0.probability == 0.01
        assert op2.probability == pytest.approx(0.02)

    def test_tick_unit_uses_tick_coordinate(self):
        channel = DriftingChannel(IdleDepolarizing(0.01), slope=1.0, unit="tick")
        (op,) = channel.ops(NoiseSite("idle", (0,), tick=3, round_index=0))
        assert op.probability == pytest.approx(0.04)

    def test_negative_slope_clamps_at_zero(self):
        channel = DriftingChannel(IdleDepolarizing(0.01), slope=-1.0)
        (op,) = channel.ops(NoiseSite("idle", (0,), tick=1, round_index=5))
        assert op.probability == 0.0

    def test_invalid_unit_rejected(self):
        with pytest.raises(ValueError):
            DriftingChannel(IdleDepolarizing(0.01), slope=0.1, unit="shots")


class TestComposition:
    def test_zero_rate_channels_compose_to_noiseless(self):
        model = (
            NoiseModelBuilder()
            .gate_biased(0.0, eta=5.0)
            .idle_depolarizing(0.0)
            .dephasing(0.0)
            .measurement_flip(0.0)
            .reset_flip(0.0)
            .build()
        )
        assert model.is_noiseless()
        # And the DEM agrees: no mechanisms at all, matching "noiseless".
        zero_digests = _composed_digests(model)
        noiseless_digests = pipeline_digests("surface:d=3", "noiseless")
        assert zero_digests == noiseless_digests

    def test_composition_is_concatenation_in_order(self):
        model = ComposedNoiseModel(
            (Dephasing(0.001), TwoQubitDepolarizing(0.002))
        )
        ops = model.channel_ops(NoiseSite("gate", (0, 1), tick=1))
        assert [op.name for op in ops] == ["Z_ERROR", "DEPOLARIZE2"]

    def test_builder_drift_wraps_only_prior_channels(self):
        model = (
            NoiseModelBuilder()
            .gate_depolarizing(0.01)
            .drift(slope=1.0)
            .measurement_flip(0.005)
            .build()
        )
        drifted, flat = model.channels
        assert isinstance(drifted, DriftingChannel)
        assert isinstance(flat, MeasurementFlip)

    def test_scaled_scales_every_channel(self):
        model = ComposedNoiseModel(
            (TwoQubitBiasedPauli(0.01, 10.0), IdleBiasedPauli(0.004, 10.0), ResetFlip(0.002))
        )
        scaled = model.scaled(0.5)
        (gate_op,) = scaled.channel_ops(NoiseSite("gate", (0, 1), tick=1))
        assert sum(gate_op.probabilities) == pytest.approx(0.005)
        (reset_op,) = scaled.channel_ops(NoiseSite("reset", (2,)))
        assert reset_op.probability == pytest.approx(0.001)

    def test_noise_op_scaled_clamps_and_renormalises(self):
        assert NoiseOp("Z_ERROR", (0,), probability=0.6).scaled(2.0).probability == 1.0
        op = NoiseOp("PAULI_CHANNEL_1", (0,), probabilities=(0.4, 0.4, 0.1)).scaled(2.0)
        assert sum(op.probabilities) == pytest.approx(1.0)

    def test_every_channel_scales_and_reports_noiselessness(self):
        """scaled(0) yields a noiseless channel for every concrete type."""
        channels = [
            TwoQubitDepolarizing(0.01, {3: 0.02}),
            IdleDepolarizing(0.01, {3: 0.02}),
            TwoQubitBiasedPauli(0.01, 5.0, {3: 0.02}),
            IdleBiasedPauli(0.01, 5.0, {3: 0.02}),
            Dephasing(0.01),
            MeasurementFlip(0.01, {3: 0.02}),
            ResetFlip(0.01),
            DriftingChannel(IdleDepolarizing(0.01), slope=0.5),
        ]
        for channel in channels:
            assert not channel.is_noiseless(), channel
            halved = channel.scaled(0.5)
            assert type(halved) is type(channel)
            assert channel.scaled(0.0).is_noiseless(), channel

    def test_builder_covers_every_channel_kind(self):
        model = (
            NoiseModelBuilder("full")
            .gate_depolarizing(0.01, per_qubit={1: 0.02})
            .idle_depolarizing(0.005)
            .gate_biased(0.01, eta=3.0)
            .idle_biased(0.005, eta=3.0, per_qubit={2: 0.01})
            .dephasing(0.001, gates=False)
            .measurement_flip(0.002, per_qubit={9: 0.004})
            .reset_flip(0.003)
            .build()
        )
        assert len(model.channels) == 7
        assert model.with_channels(ResetFlip(0.1)).channels[-1] == ResetFlip(0.1)
        gate_ops = model.channel_ops(NoiseSite("gate", (0, 1), tick=1))
        assert [op.name for op in gate_ops] == ["DEPOLARIZE2", "PAULI_CHANNEL_2"]
        idle_ops = model.channel_ops(NoiseSite("idle", (2,), tick=1))
        assert [op.name for op in idle_ops] == ["DEPOLARIZE1", "PAULI_CHANNEL_1", "Z_ERROR"]
        # per-qubit override on the biased idle channel resolves for qubit 2
        assert sum(idle_ops[1].probabilities) == pytest.approx(0.01)

    def test_channels_pickle(self):
        """Models must survive the process-pool boundary."""
        import pickle

        model = (
            NoiseModelBuilder("demo").gate_biased(0.01, eta=4.0).drift(slope=0.1).build()
        )
        assert pickle.loads(pickle.dumps(model)) == model


def _composed_digests(model) -> tuple[str, str]:
    from repro.api.registries import codes
    from repro.scheduling.baselines import lowest_depth_schedule

    code = codes.build("surface:d=3")
    schedule = lowest_depth_schedule(code)
    digests = []
    for basis in ("Z", "X"):
        experiment = build_memory_experiment(code, schedule, model, basis=basis)
        digests.append(dem_digest(build_detector_error_model(experiment.circuit)))
    return tuple(digests)


class TestPauliChannelInstructions:
    def test_pauli_channel_1_validation(self):
        circuit = Circuit()
        with pytest.raises(ValueError):
            circuit.append(Instruction("PAULI_CHANNEL_1", (0,), probabilities=(0.1, 0.2)))
        with pytest.raises(ValueError):
            circuit.append(
                Instruction("PAULI_CHANNEL_1", (0,), probabilities=(0.5, 0.4, 0.3))
            )
        with pytest.raises(ValueError):
            circuit.append(
                Instruction("PAULI_CHANNEL_2", (0, 1), probabilities=(0.1,) * 14)
            )

    def test_zero_probability_ops_are_skipped(self):
        circuit = Circuit()
        circuit.pauli_channel_1((0.0, 0.0, 0.0), 0)
        circuit.pauli_channel_2((0.0,) * 15, 0, 1)
        circuit.append_noise_op(NoiseOp("DEPOLARIZE1", (0,), probability=0.0))
        assert len(circuit) == 0

    def test_dem_decomposition_matches_depolarize(self):
        """PAULI_CHANNEL mechanisms == DEPOLARIZE mechanisms at uniform shares."""
        p = 0.15
        one = Circuit()
        one.reset(0)
        one.pauli_channel_1((p / 3, p / 3, p / 3), 0)
        one.detector(one.measure(0))
        other = Circuit()
        other.reset(0)
        other.depolarize1(p, 0)
        other.detector(other.measure(0))
        assert dem_digest(build_detector_error_model(one)) == dem_digest(
            build_detector_error_model(other)
        )

    def test_tableau_executes_pauli_channels(self):
        """The reference simulator accepts the new channels (statistically sane)."""
        flips = 0
        shots = 400
        for seed in range(shots):
            circuit = Circuit()
            circuit.reset(0)
            circuit.pauli_channel_1((0.5, 0.0, 0.0), 0)  # X with p=0.5
            circuit.measure(0)
            measurements, _, _ = simulate_circuit(circuit, seed=seed)
            flips += measurements[0]
        assert 0.35 < flips / shots < 0.65

    def test_tableau_pauli_channel_2_matches_pair_order(self):
        """Index 15 of PAULI_CHANNEL_2 is Z⊗Z (last in canonical order)."""
        circuit = Circuit()
        circuit.reset(0, 1)
        circuit.h(0, 1)
        probabilities = [0.0] * 15
        probabilities[14] = 1.0  # always fire Z⊗Z
        circuit.pauli_channel_2(tuple(probabilities), 0, 1)
        circuit.h(0, 1)
        circuit.measure(0, 1)
        measurements, _, _ = simulate_circuit(circuit, seed=0)
        assert measurements == [1, 1]


class TestRegistrySpecs:
    def test_new_specs_registered(self):
        for name in ("biased", "dephasing", "drift"):
            assert name in noise_registry

    def test_biased_spec_builds_composed_model(self):
        model = noise_registry.build("biased:p=0.002,eta=5,measurement=0.001")
        assert isinstance(model, ComposedNoiseModel)
        assert not model.is_noiseless()
        assert any(isinstance(c, MeasurementFlip) for c in model.channels)

    def test_signature_rendering_for_discovery(self):
        entry = noise_registry.entry("biased")
        assert entry.signature.startswith("p=0.001,eta=10.0")
        assert entry.spec_syntax.startswith("biased:p=")
        # Parameterless entries render as their bare name.
        assert noise_registry.entry("brisbane").spec_syntax == "brisbane"


class TestRoundsAxis:
    def test_rounds_validation(self):
        from repro.api.spec import RunSpec

        with pytest.raises(ValueError):
            RunSpec(rounds=0)
        assert RunSpec(rounds=3).rounds == 3
        assert RunSpec.from_dict(RunSpec(rounds=2).to_dict()).rounds == 2

    def test_pipeline_rounds_grow_detector_volume(self):
        one = Pipeline(code="surface:d=3", noise="brisbane", decoder="mwpm", seed=0)
        three = Pipeline(
            code="surface:d=3", noise="brisbane", decoder="mwpm", seed=0, rounds=3
        )
        assert three.dem["Z"].num_detectors > one.dem["Z"].num_detectors

    def test_cli_rounds_flag_and_grid_axis(self, tmp_path, capsys):
        from repro.api.cli import main

        out = tmp_path / "sweep.jsonl"
        assert (
            main(
                [
                    "sweep",
                    "--code",
                    "steane",
                    "--decoder",
                    "lookup",
                    "--scheduler",
                    "lowest_depth",
                    "--shots",
                    "32",
                    "--grid",
                    "rounds=1,2",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert [row["spec"]["rounds"] for row in rows] == [1, 2]
