"""Smoke tests for the example scripts.

The examples are user-facing entry points; these tests check that every
example compiles, exposes a ``main`` function, and documents how to run it,
without paying the cost of executing full synthesis runs in the test suite.
The examples themselves are exercised end-to-end by the benchmark harness'
experiment drivers, which share the same code paths.
"""

from __future__ import annotations

import ast
import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_at_least_three_examples_exist(self):
        assert len(EXAMPLE_FILES) >= 3
        assert (EXAMPLES_DIR / "quickstart.py").exists()

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_example_parses_and_documents_usage(self, path):
        tree = ast.parse(path.read_text())
        docstring = ast.get_docstring(tree)
        assert docstring, f"{path.name} is missing a module docstring"
        assert "python examples/" in docstring

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_example_defines_main_guard(self, path):
        source = path.read_text()
        assert "def main(" in source
        assert '__name__ == "__main__"' in source

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_example_imports_only_public_api(self, path):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    # Examples must not reach into private modules.
                    assert not any(part.startswith("_") for part in node.module.split("."))

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
    def test_example_importable(self, path, monkeypatch):
        """Importing the module must not execute the experiment (main guard)."""
        module = _load_module(path)
        assert hasattr(module, "main")
