"""Unit and property tests for Pauli-string algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pauli import PauliString, commutes


def pauli_strings(num_qubits: int = 5):
    return st.text(alphabet="IXYZ", min_size=num_qubits, max_size=num_qubits).map(
        PauliString.from_string
    )


class TestConstruction:
    def test_from_string(self):
        pauli = PauliString.from_string("XZIY")
        assert pauli.pauli_at(0) == "X"
        assert pauli.pauli_at(1) == "Z"
        assert pauli.pauli_at(2) == "I"
        assert pauli.pauli_at(3) == "Y"
        assert pauli.weight == 3
        assert pauli.support == [0, 1, 3]

    def test_from_string_with_sign(self):
        assert PauliString.from_string("-XX").sign == -1
        assert PauliString.from_string("+ZZ").sign == 1

    def test_from_sparse(self):
        pauli = PauliString.from_sparse(5, {0: "X", 4: "Z"})
        assert str(pauli) == "+XIIIZ"

    def test_from_sparse_out_of_range(self):
        with pytest.raises(ValueError):
            PauliString.from_sparse(3, {5: "X"})

    def test_invalid_character(self):
        with pytest.raises(ValueError):
            PauliString.from_string("XQ")

    def test_identity(self):
        identity = PauliString.identity(4)
        assert identity.is_identity()
        assert identity.weight == 0

    def test_symplectic_round_trip(self):
        pauli = PauliString.from_string("XYZI")
        again = PauliString.from_symplectic(pauli.to_symplectic())
        assert again.equal_up_to_sign(pauli)

    def test_mismatched_xs_zs(self):
        with pytest.raises(ValueError):
            PauliString(xs=np.zeros(3, dtype=np.uint8), zs=np.zeros(4, dtype=np.uint8))


class TestCommutation:
    def test_xx_and_zz_commute(self):
        assert commutes(PauliString.from_string("XX"), PauliString.from_string("ZZ"))

    def test_x_and_z_anticommute(self):
        assert not commutes(PauliString.from_string("X"), PauliString.from_string("Z"))

    def test_surface_code_plaquette_pair(self):
        # Two plaquettes sharing two qubits commute.
        first = PauliString.from_string("XXXXII")
        second = PauliString.from_string("IIZZZZ")
        assert commutes(first, second)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            commutes(PauliString.from_string("X"), PauliString.from_string("XX"))

    @given(pauli_strings(), pauli_strings())
    @settings(max_examples=80, deadline=None)
    def test_commutation_is_symmetric(self, first, second):
        assert commutes(first, second) == commutes(second, first)

    @given(pauli_strings())
    @settings(max_examples=40, deadline=None)
    def test_everything_commutes_with_itself(self, pauli):
        assert commutes(pauli, pauli)

    @given(pauli_strings())
    @settings(max_examples=40, deadline=None)
    def test_identity_commutes_with_everything(self, pauli):
        assert commutes(PauliString.identity(pauli.num_qubits), pauli)


class TestMultiplication:
    def test_x_times_x_is_identity(self):
        product = PauliString.from_string("X") * PauliString.from_string("X")
        assert product.is_identity()

    def test_support_is_symmetric_difference(self):
        first = PauliString.from_string("XXI")
        second = PauliString.from_string("IXX")
        product = first * second
        assert product.support == [0, 2]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PauliString.from_string("X") * PauliString.from_string("XX")

    @given(pauli_strings(), pauli_strings())
    @settings(max_examples=80, deadline=None)
    def test_product_bits_are_xor(self, first, second):
        product = first * second
        assert np.array_equal(product.xs, first.xs ^ second.xs)
        assert np.array_equal(product.zs, first.zs ^ second.zs)

    @given(pauli_strings())
    @settings(max_examples=40, deadline=None)
    def test_self_product_is_identity(self, pauli):
        assert (pauli * pauli).is_identity()

    @given(pauli_strings(), pauli_strings())
    @settings(max_examples=60, deadline=None)
    def test_commuting_products_share_bits_regardless_of_order(self, first, second):
        forward = first * second
        backward = second * first
        assert forward.equal_up_to_sign(backward)
        if commutes(first, second):
            assert forward.sign == backward.sign


class TestHashingAndEquality:
    def test_equal_strings_hash_equal(self):
        assert hash(PauliString.from_string("XZ")) == hash(PauliString.from_string("XZ"))

    def test_sign_matters_for_equality(self):
        assert PauliString.from_string("-XZ") != PauliString.from_string("XZ")
        assert PauliString.from_string("-XZ").equal_up_to_sign(PauliString.from_string("XZ"))

    def test_copy_is_independent(self):
        original = PauliString.from_string("XZ")
        clone = original.copy()
        clone.xs[0] = 0
        assert original.pauli_at(0) == "X"

    def test_repr_round_trip_text(self):
        pauli = PauliString.from_string("XIZY")
        assert "XIZY" in repr(pauli)
