"""Tests for the generic Registry, spec parsing and the concrete registries."""

from __future__ import annotations

import pytest

from repro.api import codes, decoders, noise, schedulers
from repro.api.registry import Registry, parse_spec
from repro.codes.surface import rotated_surface_code
from repro.decoders import BPOSDDecoder, LookupDecoder, MWPMDecoder, UnionFindDecoder


class TestParseSpec:
    def test_bare_name(self):
        assert parse_spec("surface") == ("surface", [], {})

    def test_keyword_arguments(self):
        assert parse_spec("surface:d=5") == ("surface", [], {"d": 5})

    def test_positional_arguments(self):
        assert parse_spec("surface:5") == ("surface", [5], {})

    def test_mixed_and_coerced(self):
        name, positional, keyword = parse_spec("thing:3,rate=0.5,label=abc,flag=true,x=none")
        assert name == "thing"
        assert positional == [3]
        assert keyword == {"rate": 0.5, "label": "abc", "flag": True, "x": None}

    def test_whitespace_tolerated(self):
        assert parse_spec(" surface : d=5 , rows=2 ") == ("surface", [], {"d": 5, "rows": 2})


class TestRegistry:
    def _fresh(self) -> Registry:
        registry = Registry("widget")

        @registry.register("alpha", aliases=("a",), help="first")
        def _alpha(size: int = 1):
            return ("alpha", size)

        return registry

    def test_register_and_build(self):
        registry = self._fresh()
        assert registry.build("alpha") == ("alpha", 1)
        assert registry.build("alpha:size=3") == ("alpha", 3)
        assert registry.build("alpha:7") == ("alpha", 7)

    def test_alias_resolves(self):
        registry = self._fresh()
        assert registry.build("a:size=2") == ("alpha", 2)
        assert "a" in registry
        assert registry.available() == ["alpha"]
        assert registry.available(include_aliases=True) == ["a", "alpha"]

    def test_duplicate_name_rejected(self):
        registry = self._fresh()
        with pytest.raises(ValueError, match="duplicate"):
            registry.add("alpha", lambda: None)
        with pytest.raises(ValueError, match="duplicate"):
            registry.add("a", lambda: None)

    def test_unknown_name_raises_with_available(self):
        registry = self._fresh()
        with pytest.raises(KeyError, match="available"):
            registry.build("missing")

    def test_contextual_extras_filtered_by_signature(self):
        registry = self._fresh()

        @registry.register("context_free")
        def _context_free():
            return "bare"

        @registry.register("context_aware")
        def _context_aware(code=None):
            return ("aware", code)

        # Builders that cannot accept the context silently ignore it ...
        assert registry.build("context_free", code="CODE") == "bare"
        # ... and builders that can, receive it.
        assert registry.build("context_aware", code="CODE") == ("aware", "CODE")

    def test_spec_arguments_beat_contextual_extras(self):
        registry = self._fresh()

        @registry.register("seeded")
        def _seeded(seed=0):
            return seed

        assert registry.build("seeded:seed=9", seed=1) == 9

    def test_describe_rows(self):
        registry = self._fresh()
        rows = registry.describe()
        assert rows == [("alpha", "a", "first")]


class TestCodeRegistry:
    def test_parametric_spec_matches_direct_construction(self):
        built = codes.build("surface:d=5")
        direct = rotated_surface_code(5)
        assert built.num_qubits == direct.num_qubits
        assert built.num_stabilizers == direct.num_stabilizers

    def test_parametric_and_legacy_name_agree(self):
        assert codes.build("surface:d=5").num_qubits == codes.build("rotated_surface_d5").num_qubits

    def test_legacy_names_still_registered(self):
        for name in ("rotated_surface_d3", "hexagonal_color_d5", "bb_72_12_6", "steane"):
            assert name in codes

    def test_alias(self):
        assert codes.build("rotated_surface:d=3").num_qubits == 9

    def test_at_least_as_many_names_as_seed(self):
        assert len(codes) >= 25


class TestDecoderRegistry:
    def test_all_four_decoders_available(self):
        assert decoders.available() == ["bposd", "lookup", "mwpm", "unionfind"]

    @pytest.mark.parametrize(
        "name, cls",
        [
            ("mwpm", MWPMDecoder),
            ("matching", MWPMDecoder),
            ("unionfind", UnionFindDecoder),
            ("union_find", UnionFindDecoder),
            ("bposd", BPOSDDecoder),
            ("lookup", LookupDecoder),
        ],
    )
    def test_factory_builds_expected_class(self, name, cls, steane, brisbane):
        from repro.circuits import build_memory_experiment
        from repro.scheduling import lowest_depth_schedule
        from repro.sim import build_detector_error_model

        experiment = build_memory_experiment(
            steane, lowest_depth_schedule(steane), brisbane, basis="Z"
        )
        dem = build_detector_error_model(experiment.circuit)
        assert isinstance(decoders.build(name)(dem), cls)

    def test_spec_arguments_bind_constructor_kwargs(self, steane, brisbane):
        from repro.circuits import build_memory_experiment
        from repro.scheduling import lowest_depth_schedule
        from repro.sim import build_detector_error_model

        experiment = build_memory_experiment(
            steane, lowest_depth_schedule(steane), brisbane, basis="Z"
        )
        dem = build_detector_error_model(experiment.circuit)
        decoder = decoders.build("lookup:max_order=1")(dem)
        assert decoder.max_order == 1


class TestNoiseRegistry:
    def test_brisbane_default(self):
        model = noise.build("brisbane")
        assert model.two_qubit_error == pytest.approx(0.0074)

    def test_scaled_spec(self):
        model = noise.build("scaled:p=0.001")
        assert model.two_qubit_error == pytest.approx(0.001)
        assert model.idle_error == pytest.approx(0.001)

    def test_nonuniform_requires_code(self, surface_d3):
        with pytest.raises(ValueError, match="code"):
            noise.build("nonuniform")
        model = noise.build("nonuniform:variance=0.4,seed=3", code=surface_d3)
        assert len(model.per_qubit_two_qubit) == surface_d3.num_stabilizers


class TestSchedulerRegistry:
    def test_baselines_registered(self):
        for name in ("trivial", "lowest_depth", "google", "alphasyndrome"):
            assert name in schedulers

    def test_baseline_build(self, surface_d3):
        schedule = schedulers.build("lowest_depth", code=surface_d3)
        schedule.validate()
        assert schedule.depth > 0


class TestDeprecationShims:
    def test_get_code_warns_and_matches_registry(self):
        from repro.codes import get_code

        with pytest.warns(DeprecationWarning):
            legacy = get_code("steane")
        fresh = codes.build("steane")
        assert legacy.num_qubits == fresh.num_qubits
        assert legacy.num_stabilizers == fresh.num_stabilizers

    def test_get_code_unknown_name_message_unchanged(self):
        from repro.codes import get_code

        with pytest.warns(DeprecationWarning), pytest.raises(KeyError, match="available"):
            get_code("not_a_code")

    def test_available_codes_warns_and_matches_registry(self):
        from repro.codes import available_codes

        with pytest.warns(DeprecationWarning):
            names = available_codes()
        assert names == codes.available()

    def test_code_builders_dict_still_importable(self):
        with pytest.warns(DeprecationWarning):
            from repro.codes.library import CODE_BUILDERS
        assert "steane" in CODE_BUILDERS
        assert CODE_BUILDERS["steane"]().num_qubits == 7

    def test_decoder_factory_warns_and_builds_identical_decoder(self, steane, brisbane):
        from repro.circuits import build_memory_experiment
        from repro.decoders import decoder_factory
        from repro.scheduling import lowest_depth_schedule
        from repro.sim import build_detector_error_model

        experiment = build_memory_experiment(
            steane, lowest_depth_schedule(steane), brisbane, basis="Z"
        )
        dem = build_detector_error_model(experiment.circuit)
        with pytest.warns(DeprecationWarning):
            factory = decoder_factory("mwpm")
        assert isinstance(factory(dem), MWPMDecoder)

    def test_decoder_factory_unknown_name(self):
        from repro.decoders import decoder_factory

        with pytest.warns(DeprecationWarning), pytest.raises(KeyError, match="available"):
            decoder_factory("not_a_decoder")
