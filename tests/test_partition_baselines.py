"""Tests for stabilizer partitioning (Algorithm 1) and the baseline schedulers."""

from __future__ import annotations

import random

import pytest

from repro.codes import get_code
from repro.scheduling import (
    checks_of_code,
    compatible_stabilizers,
    lowest_depth_schedule,
    partition_stabilizers,
    schedule_from_orders,
    trivial_schedule,
    validate_partition,
)
from repro.scheduling.partition import partition_stabilizers_algorithm1


class TestCompatibility:
    def test_same_type_css_stabilizers_compatible(self, surface_d3):
        x_indices = [
            i
            for i, s in enumerate(surface_d3.stabilizers)
            if {surface_d3.stabilizers[i].pauli_at(q) for q in s.support} == {"X"}
        ]
        assert compatible_stabilizers(surface_d3, x_indices[0], x_indices[1])

    def test_overlapping_x_and_z_incompatible(self, surface_d3):
        checks = surface_d3.checks()
        for first in range(surface_d3.num_stabilizers):
            for second in range(first + 1, surface_d3.num_stabilizers):
                shared = set(q for q, _ in checks[first]) & set(q for q, _ in checks[second])
                letters_first = dict(checks[first])
                letters_second = dict(checks[second])
                if shared and any(letters_first[q] != letters_second[q] for q in shared):
                    assert not compatible_stabilizers(surface_d3, first, second)
                    return
        pytest.fail("expected at least one incompatible pair in the surface code")

    def test_disjoint_stabilizers_compatible(self, five_qubit):
        # Stabilizers with no shared support are always compatible.
        from repro.codes import repetition_code

        code = repetition_code(5)
        assert compatible_stabilizers(code, 0, 3)


class TestPartition:
    @pytest.mark.parametrize(
        "code_name,expected",
        [
            ("rotated_surface_d3", 2),
            ("hexagonal_color_d5", 2),
            ("bb_72_12_6", 2),
            ("five_qubit", 4),
        ],
    )
    def test_partition_counts(self, code_name, expected):
        code = get_code(code_name)
        partitions = partition_stabilizers(code)
        validate_partition(code, partitions)
        assert len(partitions) == expected

    def test_css_partition_separates_types(self, surface_d3):
        partitions = partition_stabilizers(surface_d3)
        for partition in partitions:
            types = set()
            for index in partition:
                stab = surface_d3.stabilizers[index]
                types.update(stab.pauli_at(q) for q in stab.support)
            assert types in ({"X"}, {"Z"})

    def test_algorithm1_covers_all_stabilizers(self, color_d5):
        partitions = partition_stabilizers_algorithm1(color_d5, rng=random.Random(5))
        validate_partition(color_d5, partitions)

    def test_validate_partition_rejects_bad_grouping(self, surface_d3):
        with pytest.raises(ValueError):
            validate_partition(surface_d3, [list(range(surface_d3.num_stabilizers))])

    def test_validate_partition_rejects_missing_stabilizer(self, steane):
        with pytest.raises(ValueError, match="cover"):
            validate_partition(steane, [[0]])


class TestTrivialScheduler:
    def test_complete_and_valid(self, color_d5):
        schedule = trivial_schedule(color_d5)
        schedule.validate()
        assert schedule.is_complete()

    def test_deterministic(self, surface_d3):
        first = trivial_schedule(surface_d3)
        second = trivial_schedule(surface_d3)
        assert first.assignment == second.assignment

    def test_respects_index_order_within_stabilizer(self, steane):
        schedule = trivial_schedule(steane)
        for stabilizer in range(steane.num_stabilizers):
            qubits = [q for q, _ in steane.checks()[stabilizer]]
            ticks = [schedule.tick_of(stabilizer, q) for q in sorted(qubits)]
            assert ticks == sorted(ticks)


class TestLowestDepthScheduler:
    @pytest.mark.parametrize(
        "code_name", ["steane", "rotated_surface_d3", "hexagonal_color_d5", "bb_72_12_6"]
    )
    def test_achieves_partitionwise_optimum(self, code_name):
        """Depth equals the sum over partitions of the max qubit degree (König)."""
        code = get_code(code_name)
        schedule = lowest_depth_schedule(code)
        schedule.validate()
        partitions = partition_stabilizers(code)
        expected = 0
        for partition in partitions:
            data_degree: dict[int, int] = {}
            ancilla_degree: dict[int, int] = {}
            for stabilizer in partition:
                for qubit, _ in code.checks()[stabilizer]:
                    data_degree[qubit] = data_degree.get(qubit, 0) + 1
                    ancilla_degree[stabilizer] = ancilla_degree.get(stabilizer, 0) + 1
            expected += max(max(data_degree.values()), max(ancilla_degree.values()))
        assert schedule.depth == expected

    def test_never_deeper_than_trivial(self, color_d5):
        assert lowest_depth_schedule(color_d5).depth <= trivial_schedule(color_d5).depth

    def test_all_checks_scheduled_once(self, surface_d5):
        schedule = lowest_depth_schedule(surface_d5)
        assert schedule.num_assigned == len(checks_of_code(surface_d5))


class TestScheduleFromOrders:
    def test_preserves_requested_order(self, steane):
        orders = {
            s: [q for q, _ in sorted(steane.checks()[s], key=lambda item: -item[0])]
            for s in range(steane.num_stabilizers)
        }
        schedule = schedule_from_orders(steane, orders)
        schedule.validate()
        for stabilizer, order in orders.items():
            ticks = [schedule.tick_of(stabilizer, q) for q in order]
            assert ticks == sorted(ticks)

    def test_missing_stabilizer_raises(self, steane):
        with pytest.raises(KeyError):
            schedule_from_orders(steane, {0: [q for q, _ in steane.checks()[0]]})
