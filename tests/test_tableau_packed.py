"""Conformance of the bit-packed tableau backend against the dense reference.

Two layers of pinning:

* **Kernel properties** — hypothesis tests of the new packed row-operation
  kernels (``rowsum_g_exponents``, ``get_bit_column``, ``xor_bit_column``)
  against a scalar reimplementation of the Aaronson–Gottesman ``g``
  function, at widths straddling the word boundary (1/63/64/65/127).
* **Full-simulator conformance** — the packed :class:`TableauSimulator` and
  the dense :class:`DenseTableauSimulator` must be *bit-identical* on whole
  circuits: same measurement record, same detector/observable values, same
  final tableau, for the same seed.  This holds because both backends share
  one RNG-consumption skeleton; these tests are the regression net pinning
  that contract, including on random Clifford+noise circuits and on
  circuits wider than one 64-bit word.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.pipeline import Pipeline
from repro.api.spec import Budget, RunSpec
from repro.circuits.circuit import Circuit, Instruction
from repro.sim.bitops import (
    get_bit_column,
    pack_rows,
    rowsum_g_exponents,
    xor_bit_column,
)
from repro.sim.tableau import DenseTableauSimulator, TableauSimulator, simulate_circuit

#: Widths straddling the uint64 word boundary (the bitops suite convention).
WIDTHS = [1, 63, 64, 65, 127]


def _g_reference(x1: int, z1: int, x2: int, z2: int) -> int:
    """Scalar Aaronson–Gottesman phase function (the pre-packing reference)."""
    if x1 == 0 and z1 == 0:
        return 0
    if x1 == 1 and z1 == 1:
        return z2 - x2
    if x1 == 1 and z1 == 0:
        return z2 * (2 * x2 - 1)
    return x2 * (1 - 2 * z2)


def _random_bits(rng, shape):
    return (rng.random(shape) < 0.5).astype(np.uint8)


class TestRowsumKernel:
    @settings(max_examples=25, deadline=None)
    @given(
        width=st.sampled_from(WIDTHS),
        rows=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_matches_scalar_g_sum(self, width, rows, seed):
        rng = np.random.default_rng(seed)
        source_x = _random_bits(rng, (1, width))
        source_z = _random_bits(rng, (1, width))
        target_x = _random_bits(rng, (rows, width))
        target_z = _random_bits(rng, (rows, width))
        expected = np.array(
            [
                sum(
                    _g_reference(
                        int(source_x[0, q]),
                        int(source_z[0, q]),
                        int(target_x[r, q]),
                        int(target_z[r, q]),
                    )
                    for q in range(width)
                )
                for r in range(rows)
            ],
            dtype=np.int64,
        )
        got = rowsum_g_exponents(
            pack_rows(source_x)[0],
            pack_rows(source_z)[0],
            pack_rows(target_x),
            pack_rows(target_z),
        )
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("width", WIDTHS)
    def test_extremes(self, width):
        """All-Y source against all-X / all-Z targets hits the +/-1 branches."""
        ones = np.ones((1, width), dtype=np.uint8)
        zeros = np.zeros((1, width), dtype=np.uint8)
        y_x, y_z = pack_rows(ones), pack_rows(ones)
        # g(Y, X) = -1 per qubit; g(Y, Z) = +1 per qubit.
        assert rowsum_g_exponents(y_x[0], y_z[0], pack_rows(ones), pack_rows(zeros)) == -width
        assert rowsum_g_exponents(y_x[0], y_z[0], pack_rows(zeros), pack_rows(ones)) == width
        # g(anything, I) = 0 and g(I, anything) = 0.
        assert rowsum_g_exponents(y_x[0], y_z[0], pack_rows(zeros), pack_rows(zeros)) == 0
        i_x, i_z = pack_rows(zeros), pack_rows(zeros)
        assert rowsum_g_exponents(i_x[0], i_z[0], pack_rows(ones), pack_rows(ones)) == 0


class TestBitColumns:
    @settings(max_examples=25, deadline=None)
    @given(
        width=st.sampled_from(WIDTHS),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_get_and_xor_roundtrip(self, width, seed):
        rng = np.random.default_rng(seed)
        bits = _random_bits(rng, (7, width))
        packed = pack_rows(bits)
        column = int(rng.integers(0, width))
        assert np.array_equal(get_bit_column(packed, column), bits[:, column])
        values = _random_bits(rng, 7)
        xor_bit_column(packed, column, values)
        bits[:, column] ^= values
        assert np.array_equal(get_bit_column(packed, column), bits[:, column])
        # Other columns untouched.
        for other in {0, width - 1, column} - {column}:
            assert np.array_equal(get_bit_column(packed, other), bits[:, other])


def _random_circuit(num_qubits: int, seed: int, *, with_noise: bool) -> Circuit:
    """A random Clifford(+noise) circuit ending in a full measurement."""
    rng = np.random.default_rng(seed)
    circuit = Circuit()
    circuit.append(Instruction("R", tuple(range(num_qubits))))
    gate_pool = ["H", "S", "X", "Y", "Z", "CPAULI", "SWAP", "M", "MX", "R", "RX"]
    if with_noise:
        gate_pool += ["X_ERROR", "Z_ERROR", "Y_ERROR", "DEPOLARIZE1", "DEPOLARIZE2"]
    for _ in range(60):
        name = gate_pool[rng.integers(0, len(gate_pool))]
        qubit = int(rng.integers(0, num_qubits))
        if name == "CPAULI" and num_qubits >= 2:
            other = int(rng.integers(0, num_qubits - 1))
            other += other >= qubit
            pauli = "XYZ"[rng.integers(0, 3)]
            circuit.append(Instruction("CPAULI", (qubit, other), pauli=pauli))
        elif name in ("SWAP", "DEPOLARIZE2") and num_qubits >= 2:
            other = int(rng.integers(0, num_qubits - 1))
            other += other >= qubit
            extra = {"probability": 0.3} if name == "DEPOLARIZE2" else {}
            circuit.append(Instruction(name, (qubit, other), **extra))
        elif name in ("X_ERROR", "Z_ERROR", "Y_ERROR", "DEPOLARIZE1"):
            circuit.append(Instruction(name, (qubit,), probability=0.4))
        elif name in ("H", "S", "X", "Y", "Z", "M", "MX", "R", "RX"):
            circuit.append(Instruction(name, (qubit,)))
    circuit.append(Instruction("M", tuple(range(num_qubits))))
    return circuit


class TestPackedDenseConformance:
    @pytest.mark.parametrize("num_qubits", [1, 2, 5, 63, 65])
    @pytest.mark.parametrize("with_noise", [False, True])
    def test_random_circuits_bit_identical(self, num_qubits, with_noise):
        for seed in range(3):
            circuit = _random_circuit(num_qubits, seed, with_noise=with_noise)
            packed = simulate_circuit(circuit, seed=seed + 100, mode="packed")
            dense = simulate_circuit(circuit, seed=seed + 100, mode="dense")
            assert packed == dense

    def test_final_tableau_state_matches(self):
        circuit = _random_circuit(65, 9, with_noise=True)
        packed = TableauSimulator(65, seed=4)
        dense = DenseTableauSimulator(65, seed=4)
        packed.run(circuit)
        dense.run(circuit)
        assert packed.measurement_record == dense.measurement_record
        assert np.array_equal(packed.x_bits, dense.x_bits)
        assert np.array_equal(packed.z_bits, dense.z_bits)
        assert np.array_equal(packed.signs, dense.signs)

    @pytest.mark.parametrize(
        "code,noise,rounds",
        [
            ("surface:d=3", "brisbane", 1),
            ("surface:d=3", "biased:p=0.01,eta=10", 2),
            ("color", "scaled:p=0.005", 1),
        ],
    )
    def test_experiment_circuits_bit_identical(self, code, noise, rounds):
        """The conformance corpus: real memory-experiment circuits."""
        pipeline = Pipeline(
            RunSpec(
                code=code,
                noise=noise,
                scheduler="lowest_depth",
                decoder="lookup",
                rounds=rounds,
                budget=Budget(shots=1),
            )
        )
        for basis in ("Z", "X"):
            circuit = pipeline.circuit[basis]
            for seed in (0, 1, 2):
                assert simulate_circuit(circuit, seed=seed, mode="packed") == simulate_circuit(
                    circuit, seed=seed, mode="dense"
                )

    def test_wide_circuit_crosses_word_boundary(self):
        """d=7 surface (97 qubits) exercises multi-word rows end to end."""
        pipeline = Pipeline(RunSpec(code="surface:d=7", noise="noiseless", budget=Budget(shots=1)))
        circuit = pipeline.circuit["Z"]
        packed = simulate_circuit(circuit, seed=11, mode="packed")
        dense = simulate_circuit(circuit, seed=11, mode="dense")
        assert packed == dense
        # Noiseless detectors are deterministic zeros in both backends.
        assert not any(packed[1])

    def test_unknown_mode_rejected(self):
        circuit = Circuit()
        with pytest.raises(ValueError, match="unknown tableau mode"):
            simulate_circuit(circuit, mode="sparse")

    def test_forced_measurement_consumes_no_rng(self):
        """``forced`` outcomes skip the RNG draw identically in both backends."""
        for cls in (TableauSimulator, DenseTableauSimulator):
            simulator = cls(1, seed=0)
            simulator.hadamard(0)
            assert simulator.measure_z(0, forced=1) == 1
            # The next random draw is the stream's first: pin it across backends.
            follow_up = cls(1, seed=0)
            follow_up.hadamard(0)
            follow_up.measure_z(0, forced=0)
            assert simulator.rng.integers(0, 2) == follow_up.rng.integers(0, 2)
