"""Tests for the ``python -m repro.experiments`` command-line driver."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.__main__ import main


class TestCLI:
    def test_figure7_writes_text_and_json(self, tmp_path, capsys):
        exit_code = main(
            [
                "figure7",
                "--shots",
                "60",
                "--synthesis-shots",
                "40",
                "--iterations",
                "1",
                "--max-evaluations",
                "2",
                "--out",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "figure7" in captured
        assert (tmp_path / "figure7.txt").exists()
        rows = json.loads((tmp_path / "figure7.json").read_text())
        assert {row["schedule"] for row in rows} == {
            "clockwise",
            "anticlockwise",
            "google",
            "trivial",
        }

    def test_unknown_asset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["figure99", "--out", str(tmp_path)])

    def test_all_assets_registered_as_choices(self):
        from repro.experiments import EXPERIMENTS

        # One entry per paper asset plus the threshold scenario suite.
        assert len(EXPERIMENTS) == 9

    def test_output_directory_created(self, tmp_path):
        target = Path(tmp_path) / "nested" / "results"
        exit_code = main(
            [
                "figure7",
                "--shots",
                "40",
                "--iterations",
                "1",
                "--out",
                str(target),
            ]
        )
        assert exit_code == 0
        assert target.exists()
