"""Integration tests for `repro serve`: real workers, real HTTP.

The acceptance contract of the service:

* a served job's RunResult payload is **bit-identical** to the offline
  `repro.api.Pipeline` for every server worker count;
* concurrent submissions of one canonical spec coalesce into exactly one
  computation (pinned via the fabric counters);
* a worker SIGKILLed mid-job is recovered by the lease machinery and the
  job still completes with the identical result;
* adaptive (target_rse) jobs stop at the same prefix as offline;
* served chunks replay from the shared content-addressed cache.

Each test boots its own in-process server (`serve_in_thread`) on an
ephemeral port with spawn-context worker processes, so the module is
slower than the unit layer; budgets are sized to keep it tolerable.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.api.pipeline import Pipeline
from repro.api.spec import Budget, RunSpec
from repro.cache import ResultCache
from repro.serve import ServeClient, ServeConfig, serve_in_thread

#: Multi-chunk spec (3 chunks per basis) that stays laptop-fast.
SPEC = RunSpec(code="steane", decoder="lookup", budget=Budget(shots=3000), seed=7)

ADAPTIVE_SPEC = SPEC.replace(
    budget=Budget(shots=1000, target_rse=0.35, max_shots=16384)
)


@pytest.fixture(scope="module")
def offline_result():
    return Pipeline(SPEC).run().to_dict()


def fast_config(**overrides):
    defaults = dict(port=0, workers=2, poll_interval=0.05, lease_timeout=15.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_served_result_bit_identical_to_offline(workers, offline_result):
    with serve_in_thread(fast_config(workers=workers)) as server:
        client = ServeClient(server.url)
        result = client.run(SPEC, timeout=180.0)
    assert result == offline_result


def test_concurrent_identical_submissions_run_one_computation(offline_result):
    # throttle widens the window in which the second submission arrives
    # while the first is still running.
    with serve_in_thread(fast_config(throttle=0.1)) as server:
        client = ServeClient(server.url)
        results, errors = [], []

        def submit_and_wait():
            try:
                results.append(client.run(SPEC, timeout=180.0))
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        threads = [threading.Thread(target=submit_and_wait) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180.0)
        stats = client.health()["stats"]
    assert not errors
    # Both clients got the full (identical, offline-equal) result...
    assert results == [offline_result, offline_result]
    # ...from exactly one computation: one job, six chunks (3 per basis),
    # nothing executed twice.
    assert stats["jobs_submitted"] == 1
    assert stats["jobs_coalesced"] == 1
    assert stats["jobs_completed"] == 1
    assert stats["chunks_executed"] == 6


def test_killed_worker_recovered_by_lease_timeout(offline_result):
    config = fast_config(workers=2, lease_timeout=1.5, throttle=0.4)
    with serve_in_thread(config) as server:
        client = ServeClient(server.url)
        job_id = client.submit(SPEC)["job"]["id"]
        # Wait until a worker actually holds work, then kill it dead.
        victim = None
        deadline = time.monotonic() + 30.0
        while victim is None and time.monotonic() < deadline:
            for worker in client.health()["workers"]:
                if worker["alive"] and worker["outstanding"] > 0:
                    victim = worker
                    break
            time.sleep(0.05)
        assert victim is not None, "no worker ever held a lease"
        os.kill(victim["pid"], signal.SIGKILL)
        result = client.result(job_id, timeout=180.0)
        health = client.health()
    assert result == offline_result
    assert health["workers_respawned"] >= 1
    assert health["stats"]["leases_expired"] >= 1


def test_adaptive_job_matches_offline_early_stop():
    offline = Pipeline(ADAPTIVE_SPEC).run().to_dict()
    with serve_in_thread(fast_config()) as server:
        result = ServeClient(server.url).run(ADAPTIVE_SPEC, timeout=180.0)
    # Cache-hit counters legitimately differ between a cacheless server and
    # an offline run; everything statistical must match bit for bit.
    for payload in (offline, result):
        payload["adaptive"].pop("cache_hits")
        payload["adaptive"].pop("fresh_chunks")
        for basis in payload["adaptive"]["bases"].values():
            basis.pop("cache_hits")
            basis.pop("fresh_chunks")
    assert result == offline
    assert result["adaptive"]["converged"] is True
    assert result["shots"] < ADAPTIVE_SPEC.budget.plan_shots


def test_served_chunks_replay_from_shared_cache(tmp_path, offline_result):
    cache_dir = str(tmp_path / "cache")
    # A first server publishes the job's chunks into the shared cache...
    with serve_in_thread(fast_config(cache_dir=cache_dir)) as server:
        client = ServeClient(server.url)
        first = client.run(SPEC, timeout=180.0)
        first_stats = client.health()["stats"]
    assert first == offline_result
    assert first_stats["chunks_executed"] == 6
    # ...so a fresh server (a restart) replays them all and samples nothing.
    with serve_in_thread(fast_config(cache_dir=cache_dir)) as server:
        client = ServeClient(server.url)
        result = client.run(SPEC, timeout=180.0)
        stats = client.health()["stats"]
    assert result == offline_result
    assert stats["chunks_executed"] == 0
    assert stats["chunks_cached"] == 6
    # The published summaries live in the same content-addressed store the
    # offline adaptive engine reads.
    assert len(ResultCache(cache_dir).entries()) == 6


def test_failed_job_reports_error():
    with serve_in_thread(fast_config(workers=1)) as server:
        client = ServeClient(server.url)
        bad = SPEC.replace(decoder="lookup:radius=oops")
        job = client.submit(bad)["job"]
        deadline = time.monotonic() + 60.0
        state = job["state"]
        while state != "failed" and time.monotonic() < deadline:
            state = client.job(job["id"])["state"]
            time.sleep(0.05)
        assert state == "failed"
        assert client.job(job["id"])["error"]
        # The fleet survives a failed job and still serves good specs.
        assert client.run(SPEC, timeout=180.0)["shots"] == 3000


def test_events_stream_progress_then_done(offline_result):
    with serve_in_thread(fast_config()) as server:
        client = ServeClient(server.url)
        job_id = client.submit(SPEC)["job"]["id"]
        events = list(client.events(job_id))
    kinds = [event["event"] for event in events]
    assert kinds[0] == "job"
    assert kinds[-1] == "done"
    assert "progress" in kinds
    assert events[-1]["result"] == offline_result
    # Per-basis progress reports a monotonically advancing chunk frontier.
    frontier = {}
    for event in events:
        if event["event"] != "progress":
            continue
        basis = event["basis"]
        assert event["chunks_done"] >= frontier.get(basis, 0)
        frontier[basis] = event["chunks_done"]
    assert frontier == {"Z": 3, "X": 3}


def _start_remote_worker(server_url, **overrides):
    from repro.serve.remote import RemoteWorker

    defaults = dict(poll_interval=0.05, max_idle=120.0)
    defaults.update(overrides)
    worker = RemoteWorker(server_url, **defaults)
    thread = threading.Thread(target=worker.run_forever, daemon=True)
    thread.start()
    return worker, thread


def test_remote_only_fleet_bit_identical_to_offline(offline_result):
    # workers=0: every chunk is executed by the HTTP-leasing remote worker.
    with serve_in_thread(fast_config(workers=0)) as server:
        client = ServeClient(server.url)
        worker, thread = _start_remote_worker(server.url)
        try:
            result = client.run(SPEC, timeout=180.0)
            health = client.health()
        finally:
            worker.stop()
            thread.join(timeout=30.0)
    assert result == offline_result
    assert worker.chunks_executed == 6
    assert health["stats"]["chunks_executed"] == 6
    assert [w["id"] for w in health["remote_workers"]] == [worker.worker_id]


def test_mixed_local_and_remote_fleet_bit_identical(offline_result):
    # One local worker process plus two HTTP remotes share one job; the
    # throttle keeps chunks slow enough that the fleet genuinely splits
    # the work, and the result must still be bit-identical.
    with serve_in_thread(fast_config(workers=1, throttle=0.1, lease_chunks=1)) as server:
        client = ServeClient(server.url)
        remotes = [_start_remote_worker(server.url, throttle=0.1) for _ in range(2)]
        try:
            result = client.run(SPEC, timeout=180.0)
            stats = client.health()["stats"]
        finally:
            for worker, _ in remotes:
                worker.stop()
            for _, thread in remotes:
                thread.join(timeout=30.0)
    assert result == offline_result
    remote_chunks = sum(worker.chunks_executed for worker, _ in remotes)
    assert stats["chunks_executed"] == 6
    assert 0 < remote_chunks <= 6, "remote workers never joined the fleet"


def test_server_restart_resumes_job_from_journal_and_cache(tmp_path, offline_result):
    cache_dir = str(tmp_path / "cache")
    config = dict(cache_dir=cache_dir, journal="auto", throttle=0.3, workers=1)
    # First server: make some progress, then go down mid-job.
    with serve_in_thread(fast_config(**config)) as server:
        client = ServeClient(server.url)
        job_id = client.submit(SPEC)["job"]["id"]
        deadline = time.monotonic() + 60.0
        published = 0
        while published < 2 and time.monotonic() < deadline:
            published = client.health()["stats"]["chunks_executed"]
            time.sleep(0.05)
        assert published >= 2, "server made no progress before the restart"
    # Second server on the same journal and cache: the job is restored
    # under its original id and completes without re-executing anything
    # already published.
    with serve_in_thread(fast_config(**config)) as server:
        client = ServeClient(server.url)
        assert client.health()["jobs_restored"] == 1
        assert client.job(job_id)["id"] == job_id  # identity survived
        result = client.result(job_id, timeout=180.0)
        stats = client.health()["stats"]
    assert result == offline_result
    assert stats["chunks_cached"] >= published
    assert stats["chunks_executed"] + stats["chunks_cached"] == 6
    # Third server: the job is now a restored memo — served instantly,
    # zero chunks executed or replayed.
    with serve_in_thread(fast_config(**config)) as server:
        client = ServeClient(server.url)
        assert client.result(job_id, timeout=30.0) == offline_result
        final = client.health()["stats"]
    assert final["chunks_executed"] == 0 and final["chunks_cached"] == 0


def test_memo_eviction_surfaces_in_healthz():
    config = fast_config(workers=1, memo_ttl=0.3, poll_interval=0.05)
    with serve_in_thread(config) as server:
        client = ServeClient(server.url)
        job_id = client.submit(SPEC)["job"]["id"]
        client.result(job_id, timeout=180.0)
        assert client.health()["memo"]["retained"] == 1
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            memo = client.health()["memo"]
            if memo["retained"] == 0 and memo["evicted"] == 1:
                break
            time.sleep(0.05)
        memo = client.health()["memo"]
        assert memo == {"retained": 0, "ttl": 0.3, "cap": 1024, "evicted": 1}
        # The evicted job is gone from the table; a resubmission runs fresh
        # and still returns the identical payload.
        assert all(job["id"] != job_id for job in client.jobs())
        rerun = client.run(SPEC, timeout=180.0)
        assert client.health()["stats"]["jobs_coalesced"] == 0
    assert rerun["shots"] == 3000
