"""Tests for the Schedule data structure and its validity conditions."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import rotated_surface_code, steane_code
from repro.scheduling import (
    PauliCheck,
    Schedule,
    ScheduleError,
    checks_of_code,
    partition_stabilizers,
    random_order_schedule,
)


class TestPauliCheck:
    def test_invalid_letter_rejected(self):
        with pytest.raises(ScheduleError):
            PauliCheck(0, 1, "Q")

    def test_checks_of_code_counts_weights(self, steane):
        checks = checks_of_code(steane)
        assert len(checks) == sum(s.weight for s in steane.stabilizers)


class TestAssignment:
    def test_assign_and_depth(self, steane):
        schedule = Schedule(steane)
        check = checks_of_code(steane)[0]
        schedule.assign(check, 3)
        assert schedule.depth == 3
        assert schedule.tick_of(check.stabilizer, check.data_qubit) == 3

    def test_double_assignment_rejected(self, steane):
        schedule = Schedule(steane)
        check = checks_of_code(steane)[0]
        schedule.assign(check, 1)
        with pytest.raises(ScheduleError):
            schedule.assign(check, 2)

    def test_data_conflict_rejected(self, steane):
        schedule = Schedule(steane)
        checks = checks_of_code(steane)
        target = checks[0]
        other = next(
            c
            for c in checks
            if c.data_qubit == target.data_qubit and c.stabilizer != target.stabilizer
        )
        schedule.assign(target, 1)
        with pytest.raises(ScheduleError):
            schedule.assign(other, 1)

    def test_ancilla_conflict_rejected(self, steane):
        schedule = Schedule(steane)
        checks = [c for c in checks_of_code(steane) if c.stabilizer == 0]
        schedule.assign(checks[0], 1)
        with pytest.raises(ScheduleError):
            schedule.assign(checks[1], 1)

    def test_tick_must_be_positive(self, steane):
        schedule = Schedule(steane)
        with pytest.raises(ScheduleError):
            schedule.assign(checks_of_code(steane)[0], 0)

    def test_earliest_valid_tick_advances(self, steane):
        schedule = Schedule(steane)
        checks = [c for c in checks_of_code(steane) if c.stabilizer == 0]
        assert schedule.earliest_valid_tick(checks[0]) == 1
        schedule.assign(checks[0], 1)
        assert schedule.earliest_valid_tick(checks[1]) == 2

    def test_ancilla_indexing(self, steane):
        schedule = Schedule(steane)
        assert schedule.ancilla_of(0) == steane.num_qubits
        assert schedule.ancilla_of(5) == steane.num_qubits + 5


class TestValidation:
    def test_incomplete_schedule_rejected_when_required(self, steane):
        schedule = Schedule(steane)
        with pytest.raises(ScheduleError, match="incomplete"):
            schedule.validate()
        schedule.validate(require_complete=False)

    def test_commutation_parity_violation_detected(self):
        """Interleaving anticommuting checks with odd crossing parity is invalid."""
        from repro.codes import CSSCode
        import numpy as np

        # Two stabilizers XX and ZZ on the same two qubits ([[4,2,2]]-like toy).
        code = CSSCode(
            np.array([[1, 1, 0, 0]], dtype=np.uint8),
            np.array([[1, 1, 0, 0]], dtype=np.uint8),
        )
        schedule = Schedule(code)
        schedule.assignment[PauliCheck(0, 0, "X")] = 1
        schedule.assignment[PauliCheck(1, 0, "Z")] = 2
        schedule.assignment[PauliCheck(1, 1, "Z")] = 3
        schedule.assignment[PauliCheck(0, 1, "X")] = 4
        with pytest.raises(ScheduleError, match="parity"):
            schedule.validate()

    def test_sequential_blocks_pass_parity(self):
        from repro.codes import CSSCode
        import numpy as np

        code = CSSCode(
            np.array([[1, 1, 0, 0]], dtype=np.uint8),
            np.array([[1, 1, 0, 0]], dtype=np.uint8),
        )
        schedule = Schedule(code)
        schedule.assignment[PauliCheck(0, 0, "X")] = 1
        schedule.assignment[PauliCheck(0, 1, "X")] = 2
        schedule.assignment[PauliCheck(1, 0, "Z")] = 3
        schedule.assignment[PauliCheck(1, 1, "Z")] = 4
        schedule.validate()

    def test_shifted_and_merged(self, steane):
        schedule = random_order_schedule(steane, rng=random.Random(3))
        shifted = schedule.shifted(5)
        assert shifted.depth == schedule.depth + 5
        assert shifted.num_assigned == schedule.num_assigned

    def test_copy_is_independent(self, steane):
        schedule = random_order_schedule(steane, rng=random.Random(4))
        clone = schedule.copy()
        clone.assignment.clear()
        assert schedule.is_complete()


class TestRandomSchedulesProperty:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_order_schedules_are_valid(self, seed):
        code = steane_code()
        schedule = random_order_schedule(code, rng=random.Random(seed))
        schedule.validate()
        assert schedule.is_complete()
        # Depth can never beat the largest stabilizer weight.
        assert schedule.depth >= max(s.weight for s in code.stabilizers)

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_random_schedules_on_surface_code(self, seed):
        code = rotated_surface_code(3)
        schedule = random_order_schedule(code, rng=random.Random(seed))
        schedule.validate()
        partitions = partition_stabilizers(code)
        # Within the partitioned framework the depth is at least the sum of
        # the per-partition maximum stabilizer weights.
        minimum = sum(
            max(code.stabilizers[s].weight for s in partition) for partition in partitions
        )
        assert schedule.depth >= minimum
