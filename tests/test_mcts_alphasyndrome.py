"""Tests for the MCTS scheduler and the AlphaSyndrome synthesis pipeline."""

from __future__ import annotations

import pytest

from repro.codes import repetition_code
from repro.core import (
    AlphaSyndrome,
    MCTSConfig,
    MCTSNode,
    PartitionMCTS,
    ScheduleEvaluator,
    synthesize_schedule,
)
from repro.noise import NoiseModel, brisbane_noise
from repro.scheduling import Schedule, checks_of_code, lowest_depth_schedule


class TestMCTSNode:
    def test_root_properties(self, steane):
        checks = tuple(checks_of_code(steane))
        node = MCTSNode(Schedule(steane), checks)
        assert not node.is_terminal
        assert not node.is_fully_expanded
        assert node.expectation == 0.0

    def test_child_for_move_assigns_earliest_tick(self, steane):
        checks = tuple(checks_of_code(steane))
        node = MCTSNode(Schedule(steane), checks)
        child = node.child_for_move(checks[0])
        assert child.schedule.num_assigned == 1
        assert len(child.remaining) == len(checks) - 1
        assert child.parent is node

    def test_uct_prefers_unvisited(self, steane):
        checks = tuple(checks_of_code(steane))
        node = MCTSNode(Schedule(steane), checks)
        node.visits = 4
        child_a = node.child_for_move(checks[0])
        child_a.visits = 2
        child_a.total_score = 4.0
        child_b = node.child_for_move(checks[1])
        node.children = [child_a, child_b]
        assert child_b.uct(1.4) > child_a.uct(1.4)

    def test_terminal_when_no_remaining(self, steane):
        node = MCTSNode(Schedule(steane), ())
        assert node.is_terminal


class TestPartitionMCTS:
    def _evaluator(self, code, shots=60):
        from repro.decoders import decoder_factory

        return ScheduleEvaluator(
            code=code,
            noise=brisbane_noise(),
            decoder_factory=decoder_factory("lookup"),
            shots=shots,
            seed=0,
        )

    def test_search_produces_complete_valid_schedule(self):
        code = repetition_code(4)
        evaluator = self._evaluator(code)
        checks = tuple(checks_of_code(code))
        search = PartitionMCTS(
            evaluator=evaluator,
            checks=checks,
            compose=lambda schedule: schedule,
            config=MCTSConfig(iterations_per_step=2, seed=1, max_total_evaluations=8),
        )
        schedule, moves = search.search()
        schedule.validate()
        assert schedule.is_complete()
        assert len(moves) == len(checks)
        assert search.evaluations_used <= 8 + len(checks)

    def test_subtree_reuse_reduces_evaluations(self):
        code = repetition_code(4)
        checks = tuple(checks_of_code(code))

        def run(reuse: bool) -> int:
            evaluator = self._evaluator(code)
            search = PartitionMCTS(
                evaluator=evaluator,
                checks=checks,
                compose=lambda schedule: schedule,
                config=MCTSConfig(iterations_per_step=4, seed=2, reuse_subtree=reuse),
            )
            search.search()
            return search.evaluations_used

        assert run(True) <= run(False)


class TestAlphaSyndrome:
    @pytest.fixture(scope="class")
    def synthesis_result(self):
        from repro.codes import steane_code
        from repro.decoders import decoder_factory

        alpha = AlphaSyndrome(
            code=steane_code(),
            noise=brisbane_noise(),
            decoder_factory=decoder_factory("lookup"),
            shots=80,
            mcts_config=MCTSConfig(iterations_per_step=2, seed=0, max_total_evaluations=6),
            seed=0,
        )
        return alpha.synthesize()

    def test_schedule_is_complete_and_valid(self, synthesis_result, steane):
        synthesis_result.schedule.validate()
        assert synthesis_result.schedule.is_complete()
        assert synthesis_result.schedule.num_assigned == len(checks_of_code(steane))

    def test_partitions_cover_all_stabilizers(self, synthesis_result, steane):
        covered = sorted(s for partition in synthesis_result.partitions for s in partition)
        assert covered == list(range(steane.num_stabilizers))

    def test_rates_and_baseline_reported(self, synthesis_result):
        assert 0.0 <= synthesis_result.rates.overall <= 1.0
        assert 0.0 <= synthesis_result.baseline_rates.overall <= 1.0
        assert isinstance(synthesis_result.overall_reduction, float)

    def test_evaluations_counted(self, synthesis_result):
        assert synthesis_result.evaluations > 0

    def test_convenience_wrapper(self):
        from repro.codes import repetition_code
        from repro.decoders import decoder_factory

        result = synthesize_schedule(
            repetition_code(3),
            NoiseModel(two_qubit_error=0.01, idle_error=0.005),
            decoder_factory("lookup"),
            shots=60,
            iterations_per_step=2,
            seed=1,
        )
        result.schedule.validate()
        assert result.schedule.depth >= 2

    def test_synthesized_schedule_not_worse_than_baseline_with_common_seed(self):
        """With a shared evaluation seed the search can only keep candidates
        that score at least as well as what it has seen, so the synthesized
        schedule should not be dramatically worse than the lowest-depth
        baseline under the same evaluator."""
        from repro.codes import steane_code
        from repro.decoders import decoder_factory

        code = steane_code()
        alpha = AlphaSyndrome(
            code=code,
            noise=brisbane_noise(),
            decoder_factory=decoder_factory("lookup"),
            shots=150,
            mcts_config=MCTSConfig(iterations_per_step=3, seed=3, max_total_evaluations=12),
            seed=3,
        )
        result = alpha.synthesize()
        baseline = result.baseline_rates.overall
        assert result.rates.overall <= baseline + 0.1


class TestBatchedRollouts:
    def _search(self, code, *, rollout_batch, max_total_evaluations=10):
        from repro.decoders import decoder_factory

        evaluator = ScheduleEvaluator(
            code=code,
            noise=brisbane_noise(),
            decoder_factory=decoder_factory("lookup"),
            shots=50,
            seed=0,
        )
        checks = tuple(checks_of_code(code))
        search = PartitionMCTS(
            evaluator=evaluator,
            checks=checks,
            compose=lambda schedule: schedule,
            config=MCTSConfig(
                iterations_per_step=3,
                seed=1,
                max_total_evaluations=max_total_evaluations,
                rollout_batch=rollout_batch,
            ),
        )
        return search, search.search()

    def test_batched_search_completes_and_respects_budget(self):
        code = repetition_code(4)
        search, (schedule, moves) = self._search(code, rollout_batch=4)
        schedule.validate()
        assert schedule.is_complete()
        assert search.evaluations_used <= 10

    def test_batched_search_is_deterministic(self):
        code = repetition_code(4)
        _, (first, _) = self._search(code, rollout_batch=3)
        _, (second, _) = self._search(code, rollout_batch=3)
        assert first.assignment == second.assignment

    def test_iterations_counted_per_rollout_not_per_batch(self):
        code = repetition_code(3)
        serial_search, _ = self._search(code, rollout_batch=1, max_total_evaluations=None)
        batched_search, _ = self._search(code, rollout_batch=2, max_total_evaluations=None)
        # Each step runs the same total iteration budget regardless of batching.
        assert batched_search.evaluations_used == serial_search.evaluations_used

    def test_alphasyndrome_workers_never_changes_the_search(self, steane):
        """workers pools the evaluator but must NOT touch rollout_batch —
        synthesis output is bit-identical for every worker count; batching
        is an explicit search hyper-parameter."""
        from repro.decoders import decoder_factory

        alpha = AlphaSyndrome(
            code=steane,
            noise=brisbane_noise(),
            decoder_factory=decoder_factory("lookup"),
            shots=40,
            mcts_config=MCTSConfig(iterations_per_step=1, seed=0, max_total_evaluations=2),
            workers=2,
        )
        assert alpha.mcts_config.rollout_batch == 1
        assert alpha.evaluator.workers == 2
        alpha.evaluator.close()

    def test_synthesis_worker_count_invariant(self, steane):
        """Regression: same seed -> identical synthesized schedule and rates
        for workers=1 and workers=2."""
        from repro.decoders import decoder_factory

        def synthesize(workers):
            alpha = AlphaSyndrome(
                code=steane,
                noise=brisbane_noise(),
                decoder_factory=decoder_factory("lookup"),
                shots=40,
                mcts_config=MCTSConfig(
                    iterations_per_step=1, seed=0, max_total_evaluations=4
                ),
                seed=0,
                workers=workers,
            )
            return alpha.synthesize()

        serial = synthesize(1)
        pooled = synthesize(2)
        assert serial.schedule.assignment == pooled.schedule.assignment
        assert serial.rates == pooled.rates
        assert serial.evaluations == pooled.evaluations
