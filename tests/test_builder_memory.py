"""Tests for the syndrome-round and memory-experiment circuit builders."""

from __future__ import annotations

import pytest

from repro.circuits import (
    Circuit,
    ancilla_qubits,
    append_logical_measurement,
    append_syndrome_round,
    build_memory_experiment,
)
from repro.noise import NoiseModel, brisbane_noise
from repro.scheduling import lowest_depth_schedule, trivial_schedule
from repro.sim import simulate_circuit


class TestSyndromeRound:
    def test_one_measurement_per_stabilizer(self, steane):
        circuit = Circuit()
        schedule = lowest_depth_schedule(steane)
        record = append_syndrome_round(circuit, steane, schedule, noise=None)
        assert len(record.measurements) == steane.num_stabilizers
        assert circuit.num_measurements == steane.num_stabilizers

    def test_gate_count_matches_total_checks(self, steane):
        circuit = Circuit()
        schedule = lowest_depth_schedule(steane)
        append_syndrome_round(circuit, steane, schedule, noise=None)
        cpaulis = [inst for inst in circuit.instructions if inst.name == "CPAULI"]
        assert len(cpaulis) == sum(s.weight for s in steane.stabilizers)

    def test_noiseless_round_has_no_noise_channels(self, steane):
        circuit = Circuit()
        append_syndrome_round(circuit, steane, lowest_depth_schedule(steane), noise=None)
        assert all(not inst.is_noise() for inst in circuit.instructions)

    def test_noisy_round_attaches_two_qubit_noise_to_every_check(self, steane, brisbane):
        circuit = Circuit()
        append_syndrome_round(circuit, steane, lowest_depth_schedule(steane), noise=brisbane)
        cpaulis = sum(1 for inst in circuit.instructions if inst.name == "CPAULI")
        depolarize2 = sum(1 for inst in circuit.instructions if inst.name == "DEPOLARIZE2")
        assert depolarize2 == cpaulis

    def test_idle_noise_present_when_enabled(self, steane, brisbane):
        circuit = Circuit()
        append_syndrome_round(circuit, steane, lowest_depth_schedule(steane), noise=brisbane)
        assert any(inst.name == "DEPOLARIZE1" for inst in circuit.instructions)

    def test_idle_noise_absent_when_disabled(self, steane):
        noise = NoiseModel(two_qubit_error=0.01, idle_error=0.0)
        circuit = Circuit()
        append_syndrome_round(circuit, steane, lowest_depth_schedule(steane), noise=noise)
        assert not any(inst.name == "DEPOLARIZE1" for inst in circuit.instructions)

    def test_tick_count_equals_depth(self, steane):
        circuit = Circuit()
        schedule = lowest_depth_schedule(steane)
        append_syndrome_round(circuit, steane, schedule, noise=None)
        assert circuit.num_ticks == schedule.depth

    def test_measures_the_intended_stabilizer_values(self, steane):
        """Measuring a state twice yields identical syndrome outcomes."""
        circuit = Circuit()
        circuit.reset(*range(steane.num_qubits))
        schedule = lowest_depth_schedule(steane)
        first = append_syndrome_round(circuit, steane, schedule, noise=None)
        second = append_syndrome_round(circuit, steane, schedule, noise=None)
        for seed in range(3):
            measurements, _, _ = simulate_circuit(circuit, seed=seed)
            for stabilizer in first.measurements:
                assert (
                    measurements[first.measurements[stabilizer]]
                    == measurements[second.measurements[stabilizer]]
                )

    def test_ancilla_indices_do_not_clash_with_data(self, steane):
        assert min(ancilla_qubits(steane)) == steane.num_qubits


class TestLogicalMeasurement:
    def test_repeated_logical_measurement_is_deterministic(self, steane):
        circuit = Circuit()
        circuit.reset(*range(steane.num_qubits))
        ancilla = steane.num_qubits + steane.num_stabilizers
        first = append_logical_measurement(circuit, steane, steane.logical_xs[0], ancilla)
        second = append_logical_measurement(circuit, steane, steane.logical_xs[0], ancilla + 1)
        for seed in range(3):
            measurements, _, _ = simulate_circuit(circuit, seed=seed)
            assert measurements[first] == measurements[second]

    def test_logical_z_on_zero_state_reads_plus_one(self, surface_d3):
        circuit = Circuit()
        circuit.reset(*range(surface_d3.num_qubits))
        ancilla = surface_d3.num_qubits + surface_d3.num_stabilizers
        index = append_logical_measurement(circuit, surface_d3, surface_d3.logical_zs[0], ancilla)
        measurements, _, _ = simulate_circuit(circuit, seed=0)
        assert measurements[index] == 0


class TestMemoryExperiment:
    @pytest.mark.parametrize("basis", ["Z", "X"])
    def test_detector_and_observable_counts(self, steane, brisbane, basis):
        schedule = lowest_depth_schedule(steane)
        experiment = build_memory_experiment(steane, schedule, brisbane, basis=basis)
        assert experiment.circuit.num_detectors == 2 * steane.num_stabilizers
        assert experiment.circuit.num_observables == steane.num_logical_qubits

    def test_detectors_deterministic_without_noise(self, steane, surface_d3, brisbane):
        for code in (steane, surface_d3):
            schedule = trivial_schedule(code)
            experiment = build_memory_experiment(code, schedule, brisbane, basis="Z")
            noiseless = experiment.circuit.without_noise()
            for seed in range(3):
                _, detectors, observables = simulate_circuit(noiseless, seed=seed)
                assert all(value == 0 for value in detectors)
                assert all(value == 0 for value in observables.values())

    def test_detectors_deterministic_for_non_css_code(self, five_qubit, brisbane):
        schedule = trivial_schedule(five_qubit)
        experiment = build_memory_experiment(five_qubit, schedule, brisbane, basis="X")
        noiseless = experiment.circuit.without_noise()
        _, detectors, observables = simulate_circuit(noiseless, seed=1)
        assert all(value == 0 for value in detectors)
        assert all(value == 0 for value in observables.values())

    def test_multi_logical_codes_get_one_observable_each(self, toric_d3, brisbane):
        schedule = lowest_depth_schedule(toric_d3)
        experiment = build_memory_experiment(toric_d3, schedule, brisbane, basis="Z")
        assert experiment.circuit.num_observables == 2

    def test_multiple_noisy_rounds(self, steane, brisbane):
        schedule = lowest_depth_schedule(steane)
        experiment = build_memory_experiment(
            steane, schedule, brisbane, basis="Z", noisy_rounds=3
        )
        assert experiment.circuit.num_detectors == 4 * steane.num_stabilizers

    def test_invalid_arguments(self, steane, brisbane):
        schedule = lowest_depth_schedule(steane)
        with pytest.raises(ValueError):
            build_memory_experiment(steane, schedule, brisbane, basis="Y")
        with pytest.raises(ValueError):
            build_memory_experiment(steane, schedule, brisbane, noisy_rounds=0)

    def test_noise_only_in_noisy_rounds(self, steane, brisbane):
        schedule = lowest_depth_schedule(steane)
        experiment = build_memory_experiment(steane, schedule, brisbane, basis="Z")
        noise_channels = [inst for inst in experiment.circuit.instructions if inst.is_noise()]
        # One DEPOLARIZE2 per check plus idle channels — but only one round's worth.
        assert len(noise_channels) > 0
        cpaulis = sum(
            1 for inst in experiment.circuit.instructions if inst.name == "CPAULI"
        )
        depolarize2 = sum(
            1 for inst in experiment.circuit.instructions if inst.name == "DEPOLARIZE2"
        )
        total_checks = sum(s.weight for s in steane.stabilizers)
        logical_weight = 2 * sum(p.weight for p in steane.logical_zs)
        assert cpaulis == 3 * total_checks + logical_weight
        assert depolarize2 == total_checks
